"""Cross-module property tests on core invariants (hypothesis).

These pin down the algebraic facts the whole stack relies on:
tiling partitions exactly, BN matching preserves decisions for random
parameters, cost accounting is monotone in the obvious knobs, and the
executor's ideal mode is invariant to the deployment crossbar size.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bn_matching import match_batch_norm, software_reference_output
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel, CrossbarCost, LayerWorkload
from repro.hardware.scheduler import BankScheduler


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=0, max_value=10_000),
)
def test_tiling_partitions_weights_exactly(in_features, out_features, cs, seed):
    """Property: reassembling the tile grid recovers the weight matrix,
    and the ideal output equals the un-tiled sign decision."""
    rng = np.random.default_rng(seed)
    weights = np.where(rng.random((in_features, out_features)) < 0.5, 1.0, -1.0)
    config = HardwareConfig(crossbar_size=cs, window_bits=2)
    layer = TiledLinearLayer(config, weights, seed=seed)
    reassembled = np.concatenate(
        [np.concatenate([t.weights for t in row], axis=1) for row in layer.tiles],
        axis=0,
    )
    np.testing.assert_array_equal(reassembled, weights)

    activations = np.where(rng.random((3, in_features)) < 0.5, 1.0, -1.0)
    expected = np.where(activations @ weights >= 0, 1.0, -1.0)
    np.testing.assert_array_equal(layer.ideal_output(activations), expected)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bn_matching_decision_equivalence(seed):
    """Property: the folded threshold reproduces sign(BN(alpha x)) for
    arbitrary (sign-mixed) BN parameters."""
    rng = np.random.default_rng(seed)
    n = 6
    gamma = rng.uniform(0.2, 2.0, n) * rng.choice([-1.0, 1.0], n)
    beta = rng.normal(size=n)
    mean = rng.normal(size=n) * 2
    var = rng.uniform(0.05, 3.0, n)
    alpha = rng.uniform(0.2, 2.0, n) * rng.choice([-1.0, 1.0], n)
    result = match_batch_norm(
        gamma=gamma, beta=beta, mean=mean, var=var, alpha=alpha,
        eps=1e-5, unit_current_ua=1.0,
    )
    xconv = rng.integers(-15, 16, size=(40, n)).astype(float)
    std = np.sqrt(var + 1e-5)
    bn_out = gamma * (xconv * alpha - mean) / std + beta
    reference = np.where(bn_out >= 0, 1.0, -1.0)
    folded = software_reference_output(xconv, result)
    np.testing.assert_array_equal(folded, reference)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=144))
def test_crossbar_cost_decomposition(size):
    """Property: JJ(n) = 12 n^2 + 48 n for every size (Table 1 law)."""
    cost = CrossbarCost(size)
    assert cost.jj_count == 12 * size * size + 48 * size
    assert cost.energy_per_cycle_j == pytest.approx(cost.jj_count * 5e-21)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=64),
)
def test_cost_model_window_monotonicity(window_a_exp, seed):
    """Property: doubling the window never increases TOPS/W."""
    rng = np.random.default_rng(seed)
    workloads = [
        LayerWorkload(
            int(rng.integers(8, 300)),
            int(rng.integers(4, 100)),
            positions=int(rng.integers(1, 64)),
        )
        for _ in range(3)
    ]
    window = 2**window_a_exp
    short = AcceleratorCostModel(
        HardwareConfig(crossbar_size=36, window_bits=window), workloads
    )
    long = AcceleratorCostModel(
        HardwareConfig(crossbar_size=36, window_bits=2 * window), workloads
    )
    assert (
        long.energy_efficiency_tops_per_w()
        <= short.energy_efficiency_tops_per_w() + 1e-9
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_scheduler_bank_monotonicity(seed):
    """Property: adding banks never increases cycles per image."""
    rng = np.random.default_rng(seed)
    workloads = [
        LayerWorkload(
            int(rng.integers(16, 300)),
            int(rng.integers(4, 100)),
            positions=int(rng.integers(1, 32)),
        )
        for _ in range(2)
    ]
    config = HardwareConfig(crossbar_size=36, window_bits=8)
    base = BankScheduler(config, 64)
    needed = base.minimum_banks(workloads)
    cycles = [
        BankScheduler(config, banks).schedule(workloads).cycles_per_image
        for banks in (needed, needed * 2, needed * 4)
    ]
    assert cycles[0] >= cycles[1] >= cycles[2]


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from([8, 16, 36, 72, 144]),
    st.integers(min_value=0, max_value=100),
)
def test_ideal_execution_invariant_to_crossbar_size(deploy_cs, seed):
    """Property: the noise-free decision does not depend on how the
    matrix is tiled — retiling at any Cs gives identical outputs."""
    rng = np.random.default_rng(seed)
    weights = np.where(rng.random((50, 20)) < 0.5, 1.0, -1.0)
    thresholds = rng.normal(size=20) * 2.0
    reference_cfg = HardwareConfig(crossbar_size=16, window_bits=1)
    deploy_cfg = HardwareConfig(crossbar_size=deploy_cs, window_bits=1)
    a = np.where(rng.random((8, 50)) < 0.5, 1.0, -1.0)

    ref_layer = TiledLinearLayer(
        reference_cfg,
        weights,
        threshold_ua=thresholds * reference_cfg.unit_current_ua,
        seed=0,
    )
    deploy_layer = TiledLinearLayer(
        deploy_cfg,
        weights,
        threshold_ua=thresholds * deploy_cfg.unit_current_ua,
        seed=0,
    )
    np.testing.assert_array_equal(
        ref_layer.ideal_output(a), deploy_layer.ideal_output(a)
    )
