"""Network serving tier end to end: framed requests over real sockets
into the asyncio server, through the daemon's dual-consumer pipeline,
and back — bit-identical to in-process serial Sessions with the same
seeds. Plus the policing paths (rate limit, quota, queue-full) and the
malformed-input guarantee: a hostile byte stream gets an error frame
and a closed connection, never a crashed server.

Run via ``make check-runtime`` (bounded workers + a hard timeout).
"""

import asyncio
import socket
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.api import Engine, ServingDaemon, Session
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import CompiledNetwork, HeadStage, LinearStage, SignStage
from repro.net import (
    AsyncNetworkClient,
    FrameDecoder,
    NetworkClient,
    RemoteError,
    ServerThread,
    StreamPartial,
    StreamProgress,
    protocol,
)
from repro.net.loadgen import percentile, run_load_point
from repro.utils.rng import new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture(scope="module")
def small_engine():
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def request_data():
    rng = new_rng(99)
    images = rng.standard_normal((48, 64))
    labels = rng.integers(0, 10, size=48)
    return images, labels


@contextmanager
def serving_stack(engine, *, daemon_kwargs=None, **server_kwargs):
    """A daemon + background asyncio server; yields (host, port, thread)."""
    kwargs = {"seed": 0, "coalesce_window_s": 0.01}
    kwargs.update(daemon_kwargs or {})
    daemon = ServingDaemon(engine, **kwargs)
    thread = ServerThread(daemon, **server_kwargs)
    try:
        host, port = thread.start()
        yield host, port, thread
    finally:
        thread.close()
        daemon.close(drain=True)


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _recv_outcome(client):
    """A response frame, or the RemoteError a shed request raised."""
    try:
        return client.recv()
    except RemoteError as exc:
        return exc


class TestWireBitIdentity:
    """Acceptance: responses over the wire are bit-identical to serial
    in-process Session runs with the same explicit seeds."""

    def test_single_request_matches_serial_session(
        self, small_engine, request_data
    ):
        images, labels = request_data
        want = Session(small_engine, seed=7).run(images[:16], labels=labels[:16])
        with serving_stack(small_engine) as (host, port, _):
            with NetworkClient(host, port) as client:
                got = client.infer(images[:16], labels[:16], seed=7)
        np.testing.assert_array_equal(got.logits, want.logits)
        assert got.accuracy == want.accuracy
        assert got.summary["total_windows"] == want.total_windows

    def test_concurrent_clients_all_bit_identical(
        self, small_engine, request_data
    ):
        """Multiple clients, coalesced waves, explicit per-request
        seeds: every wire response replays serially."""
        images, _ = request_data
        pool = [images[:8], images[8:24], images[24:48]]
        with serving_stack(small_engine) as (host, port, _):
            point, records = run_load_point(
                host,
                port,
                clients=3,
                n_requests=9,
                pool=pool,
                seed_base=500,
            )
        assert point.completed == 9
        assert point.failed == 0
        for record in records:
            want = Session(small_engine, seed=record.seed).run(
                pool[record.pool_index]
            )
            np.testing.assert_array_equal(record.logits, want.logits)

    def test_async_client_multiplexes_one_connection(
        self, small_engine, request_data
    ):
        images, _ = request_data
        batches = [images[:8], images[8:16], images[16:32], images[32:48]]
        reference = [
            Session(small_engine, seed=100 + i).run(b)
            for i, b in enumerate(batches)
        ]

        async def drive(host, port):
            client = await AsyncNetworkClient.connect(host, port)
            try:
                return await asyncio.gather(
                    *(
                        client.infer(batch, seed=100 + i)
                        for i, batch in enumerate(batches)
                    )
                )
            finally:
                await client.aclose()

        with serving_stack(small_engine) as (host, port, _):
            results = asyncio.run(drive(host, port))
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)

    def test_pipelined_sync_client_matches_by_request_id(
        self, small_engine, request_data
    ):
        images, _ = request_data
        with serving_stack(small_engine) as (host, port, _):
            with NetworkClient(host, port) as client:
                ids = [client.send(images[:8], seed=s) for s in (11, 12, 13)]
                by_id = {}
                for _ in ids:
                    result = client.recv()
                    by_id[result.request_id] = result
        assert sorted(by_id) == sorted(ids)
        for request_id, seed in zip(ids, (11, 12, 13)):
            want = Session(small_engine, seed=seed).run(images[:8])
            np.testing.assert_array_equal(by_id[request_id].logits, want.logits)

    def test_ping_round_trips(self, small_engine):
        with serving_stack(small_engine) as (host, port, _):
            with NetworkClient(host, port) as client:
                assert client.ping() < 5.0


class TestStreamingDelivery:
    """Opt-in PROGRESS/PARTIAL delivery: reassembled streams are
    bit-identical to the plain response (streaming changes delivery,
    never results), slices are contiguous, and plain requests on the
    same connection never see the new kinds."""

    def test_streamed_response_reassembles_bit_identical(
        self, small_engine, request_data
    ):
        images, labels = request_data
        want = Session(small_engine, seed=7).run(images[:16], labels=labels[:16])
        events = []
        with serving_stack(small_engine, stream_chunk_rows=5) as (host, port, _):
            with NetworkClient(host, port) as client:
                got = client.infer_streamed(
                    images[:16], labels[:16], seed=7, on_event=events.append
                )
        np.testing.assert_array_equal(got.logits, want.logits)
        assert got.accuracy == want.accuracy
        # The last slice (offset 15) becomes the final RemoteResult, so
        # on_event observes the three non-final slices.
        partials = [e for e in events if isinstance(e, StreamPartial)]
        assert len(partials) == 3, "16 rows / chunk 5 -> 4 slices, 3 intermediate"
        assert [p.offset for p in partials] == [0, 5, 10]
        assert [p.seq for p in partials] == [0, 1, 2]
        assert all(not p.last for p in partials)
        progress = [e for e in events if isinstance(e, StreamProgress)]
        assert {p.stage for p in progress} <= {"queued", "planned", "executing"}
        assert any(p.stage == "queued" for p in progress)

    def test_streamed_and_plain_interleave_on_one_connection(
        self, small_engine, request_data
    ):
        """A pipelined plain request and a stream share the connection:
        the stream consumer re-buffers the plain response for recv(),
        and both results are bit-identical to serial sessions."""
        images, _ = request_data
        plain_want = Session(small_engine, seed=21).run(images[:8])
        stream_want = Session(small_engine, seed=22).run(images[8:24])
        with serving_stack(small_engine, stream_chunk_rows=4) as (host, port, _):
            with NetworkClient(host, port) as client:
                plain_id = client.send(images[:8], seed=21)
                streamed = client.infer_streamed(images[8:24], seed=22)
                plain = client.recv()
        assert plain.request_id == plain_id
        np.testing.assert_array_equal(plain.logits, plain_want.logits)
        np.testing.assert_array_equal(streamed.logits, stream_want.logits)

    def test_stream_survives_foreign_frame_in_its_own_recv_batch(self):
        """Regression: a foreign (plain) response landing alone in one
        recv batch, with the stream's frames still in transit, must not
        livelock ``infer_stream`` — the foreign frame is deferred while
        the socket is drained, then handed back to ``recv()``.

        Uses a scripted socket so the batch boundaries are exact; over
        a real socket the interleave test above only hits this split
        nondeterministically."""

        class ScriptedSocket:
            def __init__(self, chunks):
                self._chunks = list(chunks)

            def sendall(self, data):
                pass

            def recv(self, _n):
                assert self._chunks, "client recv'd past the scripted frames"
                return self._chunks.pop(0)

            def shutdown(self, *args):
                pass

            def close(self):
                pass

        plain_logits = np.arange(6, dtype=np.float64).reshape(2, 3)
        stream_logits = np.arange(12, dtype=np.float64).reshape(4, 3)
        # The client sends the plain request (id 1) then the streamed
        # one (id 2); the wire answers with id 1's response ALONE in the
        # first batch, id 2's frames only in later batches.
        chunks = [
            protocol.encode_response(1, plain_logits, {"accuracy": 0.5}),
            protocol.encode_progress(2, "queued", {"rows": 4})
            + protocol.encode_partial(2, stream_logits[:2], offset=0, seq=0),
            protocol.encode_partial(
                2, stream_logits[2:], offset=2, seq=1, last=True, summary={}
            ),
        ]
        client = NetworkClient.__new__(NetworkClient)
        client._sock = ScriptedSocket(chunks)
        client._decoder = FrameDecoder()
        client._ready = []
        client._next_id = 1
        client._closed = False

        outcome = {}

        # Issue the plain request first so it owns id 1, matching the
        # scripted wire; then stream as id 2.
        def scenario():
            try:
                plain_id = client.send(np.zeros((2, 3)), seed=21)
                events = []
                outcome["streamed"] = client.infer_streamed(
                    np.zeros((4, 3)), seed=22, on_event=events.append
                )
                outcome["events"] = events
                outcome["plain_id"] = plain_id
                outcome["plain"] = client.recv()
            except BaseException as exc:  # surfaced after the join
                outcome["error"] = exc

        worker = threading.Thread(target=scenario, daemon=True)
        worker.start()
        worker.join(timeout=10.0)
        assert not worker.is_alive(), (
            "infer_stream livelocked on a foreign frame in its own "
            "recv batch"
        )
        if "error" in outcome:
            raise outcome["error"]
        np.testing.assert_array_equal(
            outcome["streamed"].logits, stream_logits
        )
        assert [e.stage for e in outcome["events"] if isinstance(e, StreamProgress)] == ["queued"]
        plain = outcome["plain"]
        assert plain.request_id == outcome["plain_id"]
        np.testing.assert_array_equal(plain.logits, plain_logits)

    def test_async_concurrent_streams_multiplex_one_connection(
        self, small_engine, request_data
    ):
        images, _ = request_data
        batches = [images[:16], images[16:32], images[32:48]]
        reference = [
            Session(small_engine, seed=300 + i).run(b)
            for i, b in enumerate(batches)
        ]

        async def drive(host, port):
            client = await AsyncNetworkClient.connect(host, port)
            try:
                return await asyncio.gather(
                    client.infer_streamed(batches[0], seed=300),
                    client.infer_streamed(batches[1], seed=301),
                    client.infer(batches[2], seed=302),  # plain, same conn
                )
            finally:
                await client.aclose()

        with serving_stack(small_engine, stream_chunk_rows=4) as (host, port, _):
            results = asyncio.run(drive(host, port))
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)

    def test_server_counts_streamed_delivery(self, small_engine, request_data):
        images, _ = request_data
        with serving_stack(small_engine, stream_chunk_rows=4) as (
            host,
            port,
            thread,
        ):
            with NetworkClient(host, port) as client:
                client.infer_streamed(images[:8], seed=1)
                client.infer(images[:8], seed=2)
            stats = thread.server.stats
        assert stats.streamed_responses == 1
        assert stats.partials_sent == 2, "8 rows / chunk 4 -> 2 slices"
        assert stats.progress_sent >= 1
        assert stats.responses >= 1, "the plain request stays plain"

    def test_streaming_through_router_stays_bit_identical(
        self, small_engine, request_data
    ):
        """The server over a 2-replica DaemonRouter: streamed and plain
        responses both replay serially — topology is invisible on the
        wire."""
        from repro.net import DaemonRouter

        images, _ = request_data
        router = DaemonRouter.build(
            [small_engine, small_engine],
            seed=0,
            coalesce_window_s=0.01,
            probe_interval_s=0.05,
        )
        thread = ServerThread(router, stream_chunk_rows=8)
        try:
            host, port = thread.start()
            with NetworkClient(host, port) as client:
                for seed in (40, 41, 42, 43):
                    want = Session(small_engine, seed=seed).run(images[:24])
                    streamed = client.infer_streamed(images[:24], seed=seed)
                    plain = client.infer(images[:24], seed=seed)
                    np.testing.assert_array_equal(streamed.logits, want.logits)
                    np.testing.assert_array_equal(plain.logits, want.logits)
            assert router.stats.routed >= 8
        finally:
            thread.close()
            router.close(drain=True)


class TestAdmissionPolicing:
    def test_rate_limit_returns_retryable_error(self, small_engine, request_data):
        images, _ = request_data
        with serving_stack(
            small_engine, rate_limit_rps=0.01, rate_burst=1
        ) as (host, port, thread):
            with NetworkClient(host, port) as client:
                first = client.infer(images[:8], seed=1)
                assert first.logits.shape == (8, 10)
                with pytest.raises(RemoteError) as info:
                    client.infer(images[:8], seed=2)
            assert info.value.code == "rate-limited"
            assert info.value.retryable is True
            assert thread.server.stats.rejected_rate_limited == 1

    def test_quota_caps_inflight_per_connection(self, small_engine, request_data):
        images, _ = request_data
        with serving_stack(
            small_engine, max_inflight_per_client=1
        ) as (host, port, thread):
            with NetworkClient(host, port) as client:
                with small_engine._exec_lock:  # stall execution
                    first_id = client.send(images[:8], seed=1)
                    client.send(images[:8], seed=2)
                    # the quota rejection arrives while the first
                    # request is still stalled in the pipeline
                    with pytest.raises(RemoteError) as info:
                        client.recv()
                    assert info.value.code == "quota-exceeded"
                    assert info.value.retryable is True
                answer = client.recv()
            assert answer.request_id == first_id
            assert thread.server.stats.rejected_quota == 1

    def test_queue_full_sheds_and_survivors_stay_bit_identical(
        self, small_engine, request_data
    ):
        """A saturated daemon sheds with retryable queue-full error
        frames; every accepted request still resolves bit-identically
        once the pipeline drains."""
        images, _ = request_data
        daemon_kwargs = {
            "max_queue": 1,
            "coalesce_window_s": 0.0,
            "max_wave_images": 1,
        }
        n = 12
        with serving_stack(
            small_engine, daemon_kwargs=daemon_kwargs
        ) as (host, port, thread):
            with NetworkClient(host, port) as client:
                with small_engine._exec_lock:  # stall the executor
                    for seed in range(n):
                        client.send(images[:8], seed=seed)
                    # wait until the server has answered the shed ones
                    _wait_for(
                        lambda: thread.server.stats.rejected_queue_full
                        + thread.server.stats.responses
                        + daemon_inflight(thread) >= n
                    )
                outcomes = [_recv_outcome(client) for _ in range(n)]
        shed = [o for o in outcomes if isinstance(o, RemoteError)]
        served = [o for o in outcomes if not isinstance(o, RemoteError)]
        assert shed, "the bounded queue must shed under a stalled executor"
        assert all(e.code == "queue-full" and e.retryable for e in shed)
        assert len(served) + len(shed) == n
        for result in served:
            seed = result.request_id - 1  # ids are 1-based in send order
            want = Session(small_engine, seed=seed).run(images[:8])
            np.testing.assert_array_equal(result.logits, want.logits)

    def test_bad_request_is_fatal_not_retryable(self, small_engine):
        with serving_stack(small_engine) as (host, port, _):
            with NetworkClient(host, port) as client:
                with pytest.raises(RemoteError) as info:
                    client.infer(np.zeros((4, 9)), seed=1)  # wrong fan-in
        assert info.value.retryable is False


def daemon_inflight(thread) -> int:
    return thread.server.daemon.stats.in_flight


class TestMalformedInputOverTheWire:
    """Fuzz the live server: every hostile stream gets an error frame
    (where a frame can still be written) and a closed connection — and
    the server keeps serving well-formed clients afterwards."""

    def _raw(self, host, port, blob, timeout=10.0):
        """Send raw bytes; return every byte the server answers."""
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(blob)
            sock.shutdown(socket.SHUT_WR)
            answer = b""
            while True:
                data = sock.recv(65536)
                if not data:
                    return answer
                answer += data

    @pytest.mark.parametrize(
        "blob",
        [
            b"\xde\xad\xbe\xef" * 8,  # garbage magic
            protocol.HEADER.pack(b"RB", 99, 1, 0, 1),  # bad version
            protocol.HEADER.pack(b"RB", 1, 77, 0, 1),  # unknown kind
            protocol.HEADER.pack(b"RB", 1, 1, 2**31, 1),  # oversize prefix
            protocol.HEADER.pack(b"RB", 1, 1, 24, 5) + b"x" * 24,  # junk payload
        ],
        ids=["garbage", "bad-version", "bad-kind", "oversize", "junk-payload"],
    )
    def test_hostile_stream_gets_error_frame_and_close(
        self, small_engine, blob, request_data
    ):
        images, _ = request_data
        with serving_stack(small_engine) as (host, port, thread):
            answer = self._raw(host, port, blob)
            frames = FrameDecoder().feed(answer)
            assert len(frames) == 1
            assert isinstance(frames[0], protocol.ErrorFrame)
            assert frames[0].code == "protocol-error"
            assert thread.server.stats.protocol_errors == 1
            # the server is still alive and still correct
            with NetworkClient(host, port) as client:
                want = Session(small_engine, seed=3).run(images[:8])
                got = client.infer(images[:8], seed=3)
            np.testing.assert_array_equal(got.logits, want.logits)

    def test_truncated_frame_then_disconnect_is_harmless(
        self, small_engine, request_data
    ):
        images, _ = request_data
        with serving_stack(small_engine) as (host, port, thread):
            blob = protocol.encode_request(1, images[:8])[:-7]
            assert self._raw(host, port, blob) == b""
            assert thread.server.stats.protocol_errors == 0
            with NetworkClient(host, port) as client:
                assert client.infer(images[:8], seed=1).logits.shape == (8, 10)

    def test_random_fuzz_never_kills_the_server(self, small_engine, request_data):
        images, _ = request_data
        rng = np.random.default_rng(777)
        with serving_stack(small_engine) as (host, port, _):
            for _ in range(10):
                blob = (
                    rng.integers(0, 256, size=int(rng.integers(1, 400)))
                    .astype(np.uint8)
                    .tobytes()
                )
                self._raw(host, port, blob)
            with NetworkClient(host, port) as client:
                want = Session(small_engine, seed=21).run(images[:8])
                np.testing.assert_array_equal(
                    client.infer(images[:8], seed=21).logits, want.logits
                )


class TestDisconnectContainment:
    def test_client_disconnect_mid_request_spares_others(
        self, small_engine, request_data
    ):
        """A client that vanishes with a request in flight abandons only
        its own response: the daemon finishes the work, the server drops
        the orphaned write-back, and a concurrent client's response is
        bit-identical to serial."""
        images, _ = request_data
        want = Session(small_engine, seed=33).run(images[:16])
        with serving_stack(small_engine) as (host, port, thread):
            with small_engine._exec_lock:  # hold responses back
                victim = NetworkClient(host, port)
                victim.send(images[16:32], seed=34)
                _wait_for(lambda: thread.server.stats.requests >= 1)
                victim.close()  # gone before its answer exists
                survivor = NetworkClient(host, port)
                survivor.send(images[:16], seed=33)
            try:
                got = survivor.recv()
            finally:
                survivor.close()
            assert _wait_for(
                lambda: thread.server.stats.disconnected_inflight == 1
            )
        np.testing.assert_array_equal(got.logits, want.logits)

    def test_server_stats_snapshot_counts(self, small_engine, request_data):
        images, _ = request_data
        with serving_stack(small_engine) as (host, port, thread):
            with NetworkClient(host, port) as client:
                client.infer(images[:8], seed=1)
                client.infer(images[8:16], seed=2)
            stats = thread.server.stats
        assert stats.connections == 1
        assert stats.requests == 2
        assert stats.responses == 2
        assert stats.errors_sent == 0
        assert stats.as_dict()["responses"] == 2


class TestLoadGenerator:
    def test_percentile_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 50) == 0.2
        assert percentile(values, 100) == 0.4
        assert percentile([], 99) == 0.0

    def test_load_point_row_schema_is_fully_populated(
        self, small_engine, request_data
    ):
        images, _ = request_data
        with serving_stack(small_engine) as (host, port, _):
            point, _ = run_load_point(
                host, port, clients=2, n_requests=4, pool=[images[:8]]
            )
        row = point.as_row()
        expected = {
            "label", "clients", "offered_rps", "n_requests", "completed",
            "rejected", "failed", "streamed", "total_images", "wall_time_s",
            "achieved_rps", "images_per_s", "latency_mean_ms",
            "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
            "latency_max_ms",
        }
        assert set(row) == expected
        assert row["completed"] == 4
        assert row["rejected"] == 0 and row["failed"] == 0
        assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0.0
