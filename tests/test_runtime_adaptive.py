"""Adaptive scheduler + cost model: break-even boundaries, forced-mode
override, bit-identity to serial on every chooser outcome, daemon wave
decisions, and the pool-worker environment-cap validation."""

import json

import numpy as np
import pytest

from repro.api import (
    AdaptiveScheduler,
    CostCoefficients,
    CostModel,
    Engine,
    ServingDaemon,
    Session,
)
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import (
    CompiledNetwork,
    HeadStage,
    LinearStage,
    SignStage,
)
from repro.runtime import compile_plan, plan_shards
from repro.runtime.costmodel import (
    calibrate,
    candidate_modes,
    load_cost_model,
)
from repro.runtime.scheduler import _worker_cap
from repro.utils.rng import new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture(scope="module")
def tiled_engine():
    """Crossbar engine whose linear stage spans 4x3 tiles (64->48 on
    Cs=16), plus a 48->10 stage — real shard *and* tile fan-out."""
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def request_images():
    return new_rng(99).standard_normal((40, 64))


def _plan_for(engine, n, micro_batch=8, seed=0, input_shape=(64,)):
    return compile_plan(
        engine.network,
        plan_shards(n, micro_batch, rng=new_rng(seed)),
        input_shape=input_shape,
    )


# ----------------------------------------------------------------------
# Cost coefficients: persistence + validation.
# ----------------------------------------------------------------------
class TestCostCoefficients:
    def test_json_round_trip(self, tmp_path):
        coeffs = CostCoefficients(
            window_cost_s=1e-7, break_even_windows=123.0, source="calibrated"
        )
        path = tmp_path / "coeffs.json"
        coeffs.save(path)
        loaded = CostCoefficients.load(path)
        assert loaded == coeffs
        payload = json.loads(path.read_text())
        assert payload["source"] == "calibrated"

    def test_unknown_keys_ignored_on_load(self, tmp_path):
        path = tmp_path / "coeffs.json"
        path.write_text(json.dumps({"window_cost_s": 1e-6, "bogus": 1}))
        assert CostCoefficients.load(path).window_cost_s == 1e-6

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CostCoefficients(window_cost_s=0.0)
        with pytest.raises(ValueError):
            CostCoefficients(shard_dispatch_s=-1.0)
        with pytest.raises(ValueError):
            CostCoefficients(break_even_windows=float("nan"))

    def test_load_cost_model_env(self, tmp_path, monkeypatch):
        path = tmp_path / "c.json"
        CostCoefficients(break_even_windows=77.0).save(path)
        monkeypatch.setenv("REPRO_COST_COEFFICIENTS", str(path))
        assert load_cost_model().coefficients.break_even_windows == 77.0
        monkeypatch.delenv("REPRO_COST_COEFFICIENTS")
        assert load_cost_model().coefficients == CostCoefficients()
        with pytest.raises(TypeError):
            load_cost_model(object())


# ----------------------------------------------------------------------
# The chooser: candidates, break-even boundaries, forcing.
# ----------------------------------------------------------------------
class TestChooser:
    def test_candidate_modes_respect_contracts(self, tiled_engine):
        seeded = _plan_for(tiled_engine, 40)
        assert candidate_modes(seeded, backend_name="stochastic") == [
            "serial",
            "shard-parallel",
        ]
        # tile fan-out only for per-tile-generator backends
        assert candidate_modes(seeded, backend_name="stochastic-packed") == [
            "serial",
            "shard-parallel",
            "tile-parallel",
        ]
        # deterministic strategies never tile-split
        assert candidate_modes(
            seeded, backend_name="stochastic-packed", deterministic=True
        ) == ["serial", "shard-parallel"]
        # seedless shards cannot ship to the pool
        unseeded = compile_plan(
            tiled_engine.network, plan_shards(40, 8), input_shape=(64,)
        )
        assert candidate_modes(unseeded, backend_name="stochastic") == ["serial"]
        # unregistered names cannot be resolved by workers
        assert candidate_modes(seeded, backend_name="no-such-backend") == ["serial"]
        # single-shard plans have no shard axis
        single = _plan_for(tiled_engine, 8)
        assert candidate_modes(single, backend_name="stochastic") == ["serial"]

    def test_break_even_boundary(self, tiled_engine):
        """Plans just below the threshold stay serial even when the
        model predicts a fan-out win; just above, the prediction rules."""
        plan = _plan_for(tiled_engine, 40)  # 5 shards
        assert plan.total_cost > 0
        # Zero fan-out overhead => shard-parallel always predicted
        # cheaper; only the break-even gate keeps serial.
        below = CostModel(
            CostCoefficients(
                break_even_windows=plan.total_cost + 1.0,
                shard_dispatch_s=0.0,
                pool_warmup_s=0.0,
            )
        )
        choice = below.choose(
            plan, workers=2, modes=("serial", "shard-parallel")
        )
        assert choice.mode == "serial"
        assert "break-even" in choice.reason
        above = CostModel(
            CostCoefficients(
                break_even_windows=plan.total_cost,  # plan cost not < threshold
                shard_dispatch_s=0.0,
                pool_warmup_s=0.0,
            )
        )
        choice = above.choose(
            plan, workers=2, modes=("serial", "shard-parallel")
        )
        assert choice.mode == "shard-parallel"

    def test_overhead_comparison_prefers_serial(self, tiled_engine):
        """Above break-even, enormous dispatch overhead still keeps the
        plan serial — the comparison, not just the gate, protects."""
        plan = _plan_for(tiled_engine, 40)
        model = CostModel(
            CostCoefficients(
                break_even_windows=1.0,
                shard_dispatch_s=10.0,
                pool_warmup_s=10.0,
                tile_dispatch_s=10.0,
            )
        )
        choice = model.choose(
            plan,
            workers=2,
            modes=("serial", "shard-parallel", "tile-parallel"),
        )
        assert choice.mode == "serial"

    def test_predictions_cover_candidates(self, tiled_engine):
        plan = _plan_for(tiled_engine, 40)
        model = CostModel()
        choice = model.choose(
            plan, workers=2, modes=("serial", "shard-parallel", "tile-parallel")
        )
        assert set(choice.predictions) == {
            "serial",
            "shard-parallel",
            "tile-parallel",
        }
        assert all(p > 0 for p in choice.predictions.values())
        assert [d.stage for d in choice.stages] == [0, 1, 2]
        with pytest.raises(ValueError):
            model.predict(plan, "warp-drive")
        with pytest.raises(ValueError):
            model.choose(plan, modes=("shard-parallel",))

    def test_forced_mode_must_be_available(self, tiled_engine):
        plan = _plan_for(tiled_engine, 8)  # single shard: serial only
        model = CostModel()
        with pytest.raises(ValueError, match="not available"):
            model.choose(plan, modes=("serial",), force="shard-parallel")


# ----------------------------------------------------------------------
# Adaptive execution through the Session: bit-identity on every outcome.
# ----------------------------------------------------------------------
class TestAdaptiveSession:
    def test_small_plan_runs_serial_and_matches(self, tiled_engine, request_images):
        serial = tiled_engine.session(seed=7).run(request_images)
        with tiled_engine.session(seed=7, scheduler="adaptive") as session:
            adaptive = session.run(request_images)
        np.testing.assert_array_equal(adaptive.logits, serial.logits)
        assert adaptive.decisions is not None
        assert {d.mode for d in adaptive.decisions} == {"serial"}
        assert adaptive.total_windows == serial.total_windows

    def test_large_plan_fans_out_and_matches(self, tiled_engine, request_images):
        serial = tiled_engine.session(seed=7).run(request_images)
        model = CostModel(
            CostCoefficients(
                break_even_windows=1.0, shard_dispatch_s=0.0, pool_warmup_s=0.0
            )
        )
        with AdaptiveScheduler(workers=2, cost_model=model) as scheduler:
            with tiled_engine.session(seed=7, scheduler=scheduler) as session:
                fanned = session.run(request_images)
        np.testing.assert_array_equal(fanned.logits, serial.logits)
        assert {d.mode for d in fanned.decisions} == {"shard-parallel"}
        # predicted vs measured are both populated for executed stages
        for decision in fanned.decisions:
            assert decision.predicted_s >= 0
            assert decision.measured_s is not None

    def test_tile_outcome_matches_serial_packed(self, tiled_engine, request_images):
        serial = tiled_engine.session(
            seed=3, backend="stochastic-packed", micro_batch=None
        ).run(request_images)
        # Single shard: the shard axis is unavailable, tile fan-out wins
        # once past break-even.
        model = CostModel(
            CostCoefficients(
                break_even_windows=1.0,
                tile_dispatch_s=1e-9,
                stage_overhead_s=1e-9,
            )
        )
        with AdaptiveScheduler(workers=2, cost_model=model) as scheduler:
            with tiled_engine.session(
                seed=3,
                backend="stochastic-packed",
                micro_batch=None,
                scheduler=scheduler,
            ) as session:
                tiled = session.run(request_images)
        np.testing.assert_array_equal(tiled.logits, serial.logits)
        modes = {d.mode for d in tiled.decisions}
        assert "tile-parallel" in modes
        # single-tile / zero-cost stages inside a tiled plan stay serial
        assert tiled.decisions[0].mode == "serial"

    def test_forced_mode_override_env(
        self, tiled_engine, request_images, monkeypatch
    ):
        serial = tiled_engine.session(seed=5).run(request_images)
        # Force fan-out on a plan the break-even gate would keep serial.
        monkeypatch.setenv("REPRO_FORCE_SCHEDULER", "shard-parallel")
        with AdaptiveScheduler(workers=2) as scheduler:
            with tiled_engine.session(seed=5, scheduler=scheduler) as session:
                forced = session.run(request_images)
        np.testing.assert_array_equal(forced.logits, serial.logits)
        assert {d.mode for d in forced.decisions} == {"shard-parallel"}

    def test_forced_mode_invalid_or_unavailable(
        self, tiled_engine, request_images, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FORCE_SCHEDULER", "warp-drive")
        with AdaptiveScheduler(workers=2) as scheduler:
            with tiled_engine.session(seed=5, scheduler=scheduler) as session:
                with pytest.raises(ValueError, match="REPRO_FORCE_SCHEDULER"):
                    session.run(request_images)
        # tile fan-out is not a candidate for the fused-table backend
        monkeypatch.setenv("REPRO_FORCE_SCHEDULER", "tile-parallel")
        with AdaptiveScheduler(workers=2) as scheduler:
            with tiled_engine.session(seed=5, scheduler=scheduler) as session:
                with pytest.raises(ValueError, match="not available"):
                    session.run(request_images)

    def test_unseeded_session_plans_with_entropy(self, tiled_engine, request_images):
        """requires_seeds: an unseeded adaptive session gets real shard
        seeds (fresh entropy), so a pool choice stays correct."""
        with tiled_engine.session(scheduler="adaptive") as session:
            result = session.run(request_images)
            assert result.logits.shape == (40, 10)
            assert result.decisions is not None

    def test_fixed_scheduler_results_carry_no_decisions(
        self, tiled_engine, request_images
    ):
        result = tiled_engine.session(seed=1).run(request_images)
        assert result.decisions is None

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveScheduler(workers=0)


# ----------------------------------------------------------------------
# Calibration.
# ----------------------------------------------------------------------
class TestCalibration:
    def test_calibrate_fits_and_round_trips(self, tiled_engine, request_images, tmp_path):
        model = calibrate(
            tiled_engine,
            request_images,
            repeats=1,
            workers=2,
            probe_pool=False,
            probe_tiles=False,
        )
        coeffs = model.coefficients
        assert coeffs.source == "calibrated"
        assert coeffs.window_cost_s > 0
        assert coeffs.break_even_windows > 0
        path = tmp_path / "calibrated.json"
        coeffs.save(path)
        assert CostCoefficients.load(path) == coeffs
        # A calibrated model drives the adaptive scheduler end to end.
        with AdaptiveScheduler(workers=2, cost_model=model) as scheduler:
            with tiled_engine.session(seed=2, scheduler=scheduler) as session:
                result = session.run(request_images)
        serial = tiled_engine.session(seed=2).run(request_images)
        np.testing.assert_array_equal(result.logits, serial.logits)


# ----------------------------------------------------------------------
# Daemon waves through the chooser.
# ----------------------------------------------------------------------
class TestDaemonAdaptive:
    def test_coalescing_flips_serial_to_shard_parallel(self, tiled_engine, request_images):
        """A singleton request stays below break-even (serial); a
        coalesced wave's merged plan crosses it and fans out."""
        images = request_images
        single_windows = 8 * 12  # 8 rows x (4 row-tiles x 3 col-tiles)
        model = CostModel(
            CostCoefficients(
                break_even_windows=2.5 * single_windows,
                shard_dispatch_s=0.0,
                pool_warmup_s=0.0,
            )
        )
        with AdaptiveScheduler(workers=2, cost_model=model) as scheduler:
            with ServingDaemon(
                tiled_engine,
                backend="stochastic",
                seed=11,
                seed_per_request=True,
                micro_batch=4,
                coalesce_window_s=0.25,
                scheduler=scheduler,
            ) as daemon:
                single = daemon.submit(images[:8]).result(timeout=60)
                stats = daemon.stats
                assert stats.mode_waves == {"serial": 1}
                assert [d["mode"] for d in stats.decisions] == [
                    "serial",
                    "serial",
                    "serial",
                ]
                requests = [images[i * 8 : (i + 1) * 8] for i in range(5)]
                results = daemon.run_many(requests)
                stats = daemon.stats
                assert stats.mode_waves.get("shard-parallel", 0) >= 1

        # Bit-identity: replay the per-request child-seeded sessions.
        gen = new_rng(11)
        child_seeds = [int(gen.integers(0, 2**63 - 1)) for _ in range(6)]
        reference = Session(tiled_engine, seed=child_seeds[0], micro_batch=4).run(
            images[:8]
        )
        np.testing.assert_array_equal(single.logits, reference.logits)
        for index, result in enumerate(results):
            reference = Session(
                tiled_engine, seed=child_seeds[index + 1], micro_batch=4
            ).run(images[index * 8 : (index + 1) * 8])
            np.testing.assert_array_equal(result.logits, reference.logits)

    def test_daemon_scheduler_needs_layer_level_backend(self, tiled_engine):
        with pytest.raises(ValueError, match="layer-level"):
            ServingDaemon(
                tiled_engine, backend="stochastic-parallel", scheduler="adaptive"
            ).close()

    def test_daemon_pool_scheduler_adopts_daemon_backend(
        self, tiled_engine, request_images
    ):
        """A daemon-built pool scheduler must execute the daemon's
        backend, not the scheduler default — waves silently running a
        different backend would break the bit-identity contract."""
        reference = tiled_engine.session(backend="ideal").run(request_images)
        with ServingDaemon(
            tiled_engine,
            backend="ideal",
            scheduler="shard-parallel",
            coalesce_window_s=0.0,
        ) as daemon:
            result = daemon.submit(request_images).result(timeout=60)
        assert result.backend == "ideal"
        np.testing.assert_array_equal(result.logits, reference.logits)

    def test_daemon_rejects_conflicting_pool_scheduler(self, tiled_engine):
        from repro.runtime import ShardParallelScheduler

        with ShardParallelScheduler(workers=2, inner="stochastic") as scheduler:
            with pytest.raises(ValueError, match="conflicts"):
                ServingDaemon(
                    tiled_engine, backend="ideal", scheduler=scheduler
                ).close()
            # without an explicit backend= the scheduler's inner wins
            # and the daemon relabels itself accordingly
            with ServingDaemon(tiled_engine, scheduler=scheduler) as daemon:
                assert daemon.backend == "stochastic"

    def test_daemon_stats_decisions_default_none(self, tiled_engine, request_images):
        with ServingDaemon(tiled_engine, seed=0, coalesce_window_s=0.0) as daemon:
            daemon.submit(request_images[:8]).result(timeout=60)
            stats = daemon.stats
        assert stats.decisions is None
        assert stats.mode_waves == {}


# ----------------------------------------------------------------------
# Environment-cap validation (the check-runtime knob).
# ----------------------------------------------------------------------
class TestWorkerCapValidation:
    def test_valid_cap_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_POOL_WORKERS", "2")
        assert _worker_cap(8) == 2
        assert _worker_cap(1) == 1

    def test_unset_or_blank_is_ignored(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_POOL_WORKERS", raising=False)
        assert _worker_cap(8) == 8
        monkeypatch.setenv("REPRO_MAX_POOL_WORKERS", "  ")
        assert _worker_cap(8) == 8

    @pytest.mark.parametrize("bad", ["zero", "2.5", "-1", "0"])
    def test_garbage_or_non_positive_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_MAX_POOL_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_MAX_POOL_WORKERS"):
            _worker_cap(8)

    def test_scheduler_construction_surfaces_cap_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_POOL_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_MAX_POOL_WORKERS"):
            AdaptiveScheduler(workers=4)
