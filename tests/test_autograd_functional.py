"""Tests for conv/pool/loss functionals, including exact gradient checks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.autograd.functional import col2im, im2col

from tests.helpers import numeric_gradient


def _reference_conv2d(x, w, b=None, stride=1, padding=0):
    """Naive direct convolution for cross-checking im2col."""
    n, c_in, h, wd = x.shape
    c_out, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    h_out = (x.shape[2] - k) // stride + 1
    w_out = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, c_out, h_out, w_out))
    for i in range(h_out):
        for j in range(w_out):
            patch = x[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            out[:, :, i, j] = np.einsum("nckl,ockl->no", patch, w)
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestIm2col:
    def test_roundtrip_adjointness(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the transpose property."""
        x = rng.normal(size=(2, 3, 5, 5))
        cols, _ = im2col(x, kernel=3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_output_geometry(self):
        x = np.zeros((1, 1, 6, 6))
        cols, (h, w) = im2col(x, kernel=3, stride=2, padding=0)
        assert (h, w) == (2, 2)
        assert cols.shape == (1, 9, 4)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_direct_convolution(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = _reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, _reference_conv2d(x, w), rtol=1e-10)

    def test_gradients_numeric(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def f():
            out = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data), padding=1)
            return float((out.data ** 2).sum())

        out = F.conv2d(x, w, b, padding=1)
        (out * out).sum().backward()
        np.testing.assert_allclose(x.grad, numeric_gradient(x, f), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(w.grad, numeric_gradient(w, f), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(b.grad, numeric_gradient(b, f), rtol=1e-4, atol=1e-6)

    def test_stride_gradients_numeric(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 1, 3, 3)), requires_grad=True)

        def f():
            out = F.conv2d(Tensor(x.data), Tensor(w.data), stride=2)
            return float((out.data ** 2).sum())

        out = F.conv2d(x, w, stride=2)
        (out * out).sum().backward()
        np.testing.assert_allclose(x.grad, numeric_gradient(x, f), rtol=1e-4, atol=1e-6)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_maxpool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[0, 0, i, j] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avgpool_gradient_uniform(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_maxpool_gradient_numeric(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)

        def f():
            return float((F.max_pool2d(Tensor(x.data), 2).data ** 2).sum())

        out = F.max_pool2d(x, 2)
        (out * out).sum().backward()
        np.testing.assert_allclose(x.grad, numeric_gradient(x, f), rtol=1e-5, atol=1e-7)


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_classes(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.arange(4))
        assert loss.item() == pytest.approx(np.log(10))

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        targets = np.array([0, 1, 2, 3, 0])
        F.cross_entropy(logits, targets).backward()
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        expected = probs.copy()
        expected[np.arange(5), targets] -= 1.0
        np.testing.assert_allclose(logits.grad, expected / 5.0, rtol=1e-10)

    def test_numeric_gradient(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])

        def f():
            return float(F.cross_entropy(Tensor(logits.data), targets).data)

        F.cross_entropy(logits, targets).backward()
        np.testing.assert_allclose(
            logits.grad, numeric_gradient(logits, f), rtol=1e-5, atol=1e-8
        )

    def test_extreme_logits_stable(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]))
        loss = F.cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())


class TestSoftmaxAccuracy:
    def test_softmax_rows_sum_to_one(self, rng):
        s = F.softmax(Tensor(rng.normal(size=(4, 6))))
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), rtol=1e-12)

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]))
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
