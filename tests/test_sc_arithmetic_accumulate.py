"""Tests for SC arithmetic and the SC-based accumulation module."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc.accumulate import ScAccumulationModule
from repro.sc.arithmetic import sc_multiply_bipolar, sc_multiply_unipolar, sc_scaled_add
from repro.sc.encoding import bipolar_decode, bipolar_encode, unipolar_encode


class TestScMultiply:
    def test_unipolar_product_statistics(self):
        x = unipolar_encode(0.6, 30000, seed=0)
        y = unipolar_encode(0.5, 30000, seed=1)
        product = sc_multiply_unipolar(x, y)
        assert product.mean() == pytest.approx(0.3, abs=0.02)

    def test_bipolar_product_statistics(self):
        x = bipolar_encode(0.8, 30000, seed=0)
        y = bipolar_encode(-0.5, 30000, seed=1)
        product = bipolar_decode(sc_multiply_bipolar(x, y))
        assert product == pytest.approx(-0.4, abs=0.03)

    def test_bipolar_xnor_is_exact_on_signs(self):
        """XNOR of +-1 SNs with p in {0,1} is exact multiplication."""
        x = bipolar_encode(1.0, 16, seed=0)
        y = bipolar_encode(-1.0, 16, seed=1)
        assert bipolar_decode(sc_multiply_bipolar(x, y)) == pytest.approx(-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sc_multiply_unipolar(np.zeros(4, np.int8), np.zeros(5, np.int8))

    def test_scaled_add_statistics(self):
        streams = [unipolar_encode(v, 30000, seed=i) for i, v in enumerate((0.2, 0.4, 0.9))]
        out = sc_scaled_add(streams, seed=7)
        assert out.mean() == pytest.approx(0.5, abs=0.02)

    def test_scaled_add_empty_rejected(self):
        with pytest.raises(ValueError):
            sc_scaled_add([])


class TestScAccumulationModule:
    def test_reference_default_is_unbiased_midpoint(self):
        module = ScAccumulationModule(n_crossbars=4, window_bits=8)
        assert module.reference == pytest.approx(16.0)

    def test_count_window_exact(self):
        module = ScAccumulationModule(n_crossbars=2, window_bits=3)
        streams = np.array(
            [
                [[1.0], [-1.0], [1.0]],
                [[1.0], [1.0], [-1.0]],
            ]
        )  # (K=2, L=3, 1)
        assert module.count_window(streams)[0] == 4

    def test_accumulate_sign_decision(self):
        module = ScAccumulationModule(n_crossbars=2, window_bits=2)
        all_ones = np.ones((2, 2, 1))
        all_minus = -np.ones((2, 2, 1))
        assert module.accumulate(all_ones)[0] == 1.0
        assert module.accumulate(all_minus)[0] == -1.0

    def test_tie_resolves_positive(self):
        """count == reference -> +1 (comparator is >=)."""
        module = ScAccumulationModule(n_crossbars=2, window_bits=1)
        half = np.array([[[1.0]], [[-1.0]]])  # one of two bits set
        assert module.accumulate(half)[0] == 1.0

    def test_recovers_true_sign_with_long_window(self):
        """With partial sums deep in the gray zone, majority counting
        converges to the sign of the *sum* of expectations."""
        rng = np.random.default_rng(0)
        probabilities = np.array([0.6, 0.45, 0.55, 0.48])  # sum E = +0.16
        module = ScAccumulationModule(n_crossbars=4, window_bits=512)
        streams = np.where(
            rng.random((4, 512, 1)) < probabilities[:, None, None], 1.0, -1.0
        )
        assert module.accumulate(streams)[0] == 1.0

    def test_expected_value(self):
        module = ScAccumulationModule(n_crossbars=2, window_bits=10)
        expected = module.expected_value(np.array([[0.5], [0.7]]))
        assert expected[0] == pytest.approx(12.0)

    def test_shape_validation(self):
        module = ScAccumulationModule(n_crossbars=2, window_bits=4)
        with pytest.raises(ValueError):
            module.count_window(np.zeros((3, 4, 1)))
        with pytest.raises(ValueError):
            module.count_window(np.zeros((2, 5, 1)))
        with pytest.raises(ValueError):
            module.expected_value(np.zeros((3, 1)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ScAccumulationModule(n_crossbars=0, window_bits=4)
        with pytest.raises(ValueError):
            ScAccumulationModule(n_crossbars=1, window_bits=0)

    def test_approximate_counting_reduces_counts(self, rng):
        exact = ScAccumulationModule(n_crossbars=8, window_bits=4)
        approx = ScAccumulationModule(
            n_crossbars=8, window_bits=4, approximate_layers=1
        )
        streams = np.where(rng.random((8, 4, 10)) < 0.8, 1.0, -1.0)
        assert np.all(
            approx.count_window(streams) <= exact.count_window(streams)
        )


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=8),
)
def test_count_window_bounds(n_crossbars, window_bits):
    """Property: total count lies in [0, K * L] for any +-1 streams."""
    rng = np.random.default_rng(n_crossbars * 31 + window_bits)
    module = ScAccumulationModule(n_crossbars, window_bits)
    streams = np.where(rng.random((n_crossbars, window_bits, 3)) < 0.5, 1.0, -1.0)
    counts = module.count_window(streams)
    assert np.all(counts >= 0)
    assert np.all(counts <= n_crossbars * window_bits)
