"""Tests for the pure-SC (SC-AQFP) baseline engine."""

import numpy as np
import pytest

from repro.baselines.sc_aqfp import ScMlp, sc_aqfp_length_sweep


@pytest.fixture(scope="module")
def sc_setup(request):
    from repro.core.trainer import Trainer, TrainingConfig
    from repro.data.loaders import DataLoader
    from repro.data.synthetic import make_mnist_like
    from repro.hardware.config import HardwareConfig
    from repro.models.mlp import Mlp

    data = make_mnist_like(n_samples=800, seed=0)
    train, test = data.split(0.8, seed=1)
    model = Mlp(in_features=144, hidden=(32,), hardware=HardwareConfig(), seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=8, warmup_epochs=2))
    trainer.fit(DataLoader(train, 64, seed=2))
    model.eval()
    return model, test


class TestScMlp:
    def test_logits_shape(self, sc_setup):
        model, test = sc_setup
        engine = ScMlp(model, stream_length=16, seed=0)
        logits = engine.logits(test.images[:8])
        assert logits.shape == (8, 10)

    def test_long_streams_beat_short_streams(self, sc_setup):
        """The SC scaling law: accuracy grows with stream length."""
        model, test = sc_setup
        images, labels = test.images[:120], test.labels[:120]
        short = ScMlp(model, stream_length=2, seed=0).accuracy(images, labels)
        long = ScMlp(model, stream_length=256, seed=0).accuracy(images, labels)
        assert long > short + 0.05

    def test_accuracy_above_chance_at_moderate_length(self, sc_setup):
        model, test = sc_setup
        engine = ScMlp(model, stream_length=64, seed=0)
        assert engine.accuracy(test.images[:120], test.labels[:120]) > 0.4

    def test_dot_estimate_unbiased(self, sc_setup):
        """The SC dot product is an unbiased estimator."""
        model, _ = sc_setup
        engine = ScMlp(model, stream_length=64, seed=0)
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, size=(1, 144))
        w = engine.layers[0]["weights"]
        estimates = [
            ScMlp(model, stream_length=64, seed=s)._encode_dot(a, w)
            for s in range(30)
        ]
        mean_estimate = np.mean(estimates, axis=0)
        exact = a @ w.T
        np.testing.assert_allclose(mean_estimate, exact, atol=1.2)

    def test_estimator_variance_shrinks_with_length(self, sc_setup):
        model, _ = sc_setup
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, size=(1, 144))
        w = ScMlp(model, 4, seed=0).layers[0]["weights"]

        def spread(length):
            vals = [
                float(ScMlp(model, length, seed=s)._encode_dot(a, w)[0, 0])
                for s in range(25)
            ]
            return np.std(vals)

        assert spread(256) < spread(4) / 3

    def test_invalid_length(self, sc_setup):
        model, _ = sc_setup
        with pytest.raises(ValueError):
            ScMlp(model, stream_length=0)

    def test_sweep_structure(self, sc_setup):
        model, test = sc_setup
        sweep = sc_aqfp_length_sweep(
            model, test.images[:60], test.labels[:60], lengths=(4, 64)
        )
        assert [r["stream_length"] for r in sweep] == [4, 64]
        assert all(0 <= r["accuracy"] <= 1 for r in sweep)
