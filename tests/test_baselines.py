"""Tests for baseline specs and the cryogenic scaling laws."""

import math

import pytest

from repro.baselines.cryo import (
    CRYO_COOLING_OVERHEAD_77K,
    CRYO_EFFICIENCY_GAIN_77K,
    aqfp_efficiency_vs_frequency,
    cmos_efficiency_vs_frequency,
    cryo_cmos_efficiency,
    frequency_sweep,
)
from repro.baselines.specs import (
    CIFAR10_BASELINES,
    MNIST_BASELINES,
    PAPER_SUPERBNN_CIFAR10,
    get_baseline,
)


class TestBaselineSpecs:
    def test_paper_table2_numbers_present(self):
        imb = get_baseline("IMB", "cifar10")
        assert imb.accuracy == pytest.approx(87.7)
        assert imb.tops_per_w == pytest.approx(82.6)
        assert imb.power_mw == pytest.approx(12.5)

    def test_paper_table3_numbers_present(self):
        ersfq = get_baseline("ERSFQ", "mnist")
        assert ersfq.tops_per_w == pytest.approx(1.5e4)
        assert ersfq.tops_per_w_cooled == pytest.approx(50.0)

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            get_baseline("TPUv9", "cifar10")

    def test_lookup_case_insensitive(self):
        assert get_baseline("imb", "cifar10").name == "IMB"

    def test_all_specs_have_sane_accuracy(self):
        for spec in CIFAR10_BASELINES + MNIST_BASELINES:
            assert 50.0 < spec.accuracy < 100.0

    def test_paper_rows_cooling_consistent(self):
        """The paper's own rows divide by exactly 400x cooling."""
        for row in PAPER_SUPERBNN_CIFAR10:
            ratio = row["tops_per_w"] / row["tops_per_w_cooled"]
            assert ratio == pytest.approx(400.0, rel=0.02)


class TestCryoScaling:
    def test_efficiency_gain(self):
        assert cryo_cmos_efficiency(100.0) == pytest.approx(150.0)

    def test_cooling_overhead(self):
        cooled = cryo_cmos_efficiency(100.0, with_cooling=True)
        assert cooled == pytest.approx(150.0 / (1 + CRYO_COOLING_OVERHEAD_77K))

    def test_paper_constants(self):
        assert CRYO_EFFICIENCY_GAIN_77K == pytest.approx(1.5)
        assert CRYO_COOLING_OVERHEAD_77K == pytest.approx(9.65)

    def test_validation(self):
        with pytest.raises(ValueError):
            cryo_cmos_efficiency(0.0)


class TestAqfpFrequencyScaling:
    def test_adiabatic_improves_at_low_frequency(self):
        """Paper Sec. 6.5: lower frequency -> higher efficiency."""
        low = aqfp_efficiency_vs_frequency(1e5, 0.1e9)
        high = aqfp_efficiency_vs_frequency(1e5, 10e9)
        assert low > high

    def test_reference_point_identity(self):
        assert aqfp_efficiency_vs_frequency(1e5, 5e9) == pytest.approx(1e5)

    def test_cooling_uses_400x(self):
        ratio = aqfp_efficiency_vs_frequency(1e5, 1e9) / aqfp_efficiency_vs_frequency(
            1e5, 1e9, with_cooling=True
        )
        assert ratio == pytest.approx(400.0)

    def test_cmos_flat_near_design_point(self):
        base = cmos_efficiency_vs_frequency(617.0, 622e6, 622e6)
        doubled = cmos_efficiency_vs_frequency(617.0, 1244e6, 622e6)
        assert doubled / base < 1.1

    def test_cmos_leakage_penalty_at_low_clock(self):
        slow = cmos_efficiency_vs_frequency(617.0, 10e6, 622e6)
        design = cmos_efficiency_vs_frequency(617.0, 622e6, 622e6)
        assert slow < design

    def test_validation(self):
        with pytest.raises(ValueError):
            aqfp_efficiency_vs_frequency(-1.0, 1e9)
        with pytest.raises(ValueError):
            cmos_efficiency_vs_frequency(10.0, 0.0, 1e9)


class TestFrequencySweep:
    def test_row_structure(self):
        rows = frequency_sweep(1e5, frequencies_ghz=(1.0, 5.0))
        assert len(rows) == 2
        row = rows[0]
        assert {"frequency_ghz", "aqfp", "aqfp_cooled"} <= set(row)
        assert any(k.startswith("cryo_") for k in row)

    def test_fig12_gap_shape(self):
        """AQFP should sit ~4 orders above Cryo-CMOS device-only and
        2-3 orders above it with cooling (paper Sec. 6.5)."""
        rows = frequency_sweep(4e5, frequencies_ghz=(1.0,))
        row = rows[0]
        best_cryo = max(
            v
            for k, v in row.items()
            if k.startswith("cryo_") and not k.endswith("_cooled")
        )
        best_cryo_cooled = max(
            v for k, v in row.items() if k.startswith("cryo_") and k.endswith("_cooled")
        )
        device_gap = math.log10(row["aqfp"] / best_cryo)
        cooled_gap = math.log10(row["aqfp_cooled"] / best_cryo_cooled)
        assert 2.5 < device_gap < 5.5
        assert 1.5 < cooled_gap < 4.0
