"""Tests for the AME (Eq. 18) and hardware co-optimization."""

import numpy as np
import pytest

from repro.core.coopt import (
    average_mismatch_error,
    optimize_hardware_config,
    saturation_length,
    sweep_bitstream_lengths,
)
from repro.device.attenuation import AttenuationModel


class TestAverageMismatchError:
    def test_positive(self):
        assert average_mismatch_error(16, 2.4) > 0

    def test_small_gray_zone_near_hard_sign_error(self):
        """As dVin -> 0 the device is a hard sign: y = Cs * sign(x), so
        the mismatch approaches E[(x - Cs*sign(x))^2] / Cs — large."""
        tight = average_mismatch_error(16, 0.01)
        near_optimal = average_mismatch_error(16, 200.0)
        assert tight > near_optimal

    def test_huge_gray_zone_also_bad(self):
        """As dVin -> inf, y -> 0 and the mismatch approaches E[x^2]/Cs;
        the optimum lies between the extremes (Sec. 5.4 tradeoff)."""
        huge = average_mismatch_error(16, 1e6)
        near_optimal = average_mismatch_error(16, 200.0)
        assert huge > near_optimal

    def test_interior_minimum_exists(self):
        """AME is non-monotone in dIin — the basis for co-optimization.

        The linear-response optimum sits where the erf slope matches
        unity: dVin ~ 2 Cs, i.e. dIin ~ 2 Cs I1(Cs)."""
        zones = [0.1, 1.0, 10.0, 100.0, 200.0, 1e4, 1e6]
        values = [average_mismatch_error(16, z) for z in zones]
        best = int(np.argmin(values))
        assert 0 < best < len(zones) - 1

    def test_depends_on_crossbar_size(self):
        a = average_mismatch_error(8, 2.4)
        b = average_mismatch_error(72, 2.4)
        assert a != pytest.approx(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            average_mismatch_error(0, 2.4)
        with pytest.raises(ValueError):
            average_mismatch_error(8, 0.0)
        with pytest.raises(ValueError):
            average_mismatch_error(8, 2.4, activation_std=0.0)


class TestOptimizeHardwareConfig:
    def test_returns_grid_and_minimum(self):
        result = optimize_hardware_config([1.0, 5.0, 20.0], [8, 16])
        assert len(result.grid) == 6
        grid_min = min(cell["ame"] for cell in result.grid)
        assert result.best_ame == pytest.approx(grid_min)

    def test_energy_constraint_excludes_large_arrays(self):
        """Budget below the 144x144 row of Table 1 must exclude it."""
        result = optimize_hardware_config(
            [5.0], [16, 144], max_energy_per_cycle_aj=400.0
        )
        sizes = {cell["crossbar_size"] for cell in result.grid}
        assert sizes == {16}

    def test_unsatisfiable_constraint_raises(self):
        with pytest.raises(ValueError):
            optimize_hardware_config([5.0], [144], max_energy_per_cycle_aj=1.0)

    def test_best_config_carries_window_bits(self):
        result = optimize_hardware_config([5.0], [16], window_bits=8)
        assert result.best_config.window_bits == 8

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            optimize_hardware_config([], [16])

    def test_custom_attenuation_model_used(self):
        flat = AttenuationModel(amplitude_ua=70.0, exponent=0.1)
        steep = AttenuationModel(amplitude_ua=70.0, exponent=1.4)
        r_flat = optimize_hardware_config([2.4], [72], attenuation=flat)
        r_steep = optimize_hardware_config([2.4], [72], attenuation=steep)
        assert r_flat.best_ame != pytest.approx(r_steep.best_ame)


class TestBitstreamSweep:
    def test_sweep_calls_evaluator(self):
        calls = []

        def evaluate(length):
            calls.append(length)
            return min(0.5 + 0.05 * length, 0.9)

        sweep = sweep_bitstream_lengths(evaluate, lengths=(1, 2, 4))
        assert calls == [1, 2, 4]
        assert sweep[-1]["accuracy"] == pytest.approx(0.7)

    def test_sweep_validates_lengths(self):
        with pytest.raises(ValueError):
            sweep_bitstream_lengths(lambda l: 0.5, lengths=(0,))

    def test_saturation_length_finds_knee(self):
        sweep = [
            {"window_bits": 1, "accuracy": 0.60},
            {"window_bits": 4, "accuracy": 0.80},
            {"window_bits": 16, "accuracy": 0.90},
            {"window_bits": 32, "accuracy": 0.905},
            {"window_bits": 64, "accuracy": 0.906},
        ]
        assert saturation_length(sweep, tolerance=0.01) == 16

    def test_saturation_length_empty_rejected(self):
        with pytest.raises(ValueError):
            saturation_length([])

    def test_saturation_length_flat_sweep(self):
        sweep = [
            {"window_bits": 1, "accuracy": 0.8},
            {"window_bits": 8, "accuracy": 0.8},
        ]
        assert saturation_length(sweep) == 1
