"""Tests for the autograd Tensor: ops, broadcasting, backward correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.autograd.tensor import concatenate

from tests.helpers import numeric_gradient


class TestTensorBasics:
    def test_construction_and_shape(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_ensure_passthrough_and_coerce(self):
        t = Tensor([1.0])
        assert Tensor.ensure(t) is t
        assert isinstance(Tensor.ensure([1.0, 2.0]), Tensor)

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).data, [-2.0])
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        np.testing.assert_allclose((a @ b).data, [[11.0]])


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x + x
        y.backward()
        assert x.grad == pytest.approx(5.0)  # 2x + 1

    def test_grad_accumulates_on_reuse(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x  # x used twice
        y.backward()
        assert x.grad == pytest.approx(6.0)

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(x.grad, [3.0, 3.0])

    def test_backward_on_leaf_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_broadcast_add_unbroadcasts(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        ((x + b).sum()).backward()
        assert b.grad.shape == (2,)
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_broadcast_mul_gradients(self):
        x = Tensor(np.full((4, 3), 2.0), requires_grad=True)
        s = Tensor(3.0, requires_grad=True)
        ((x * s).sum()).backward()
        assert s.grad == pytest.approx(24.0)
        np.testing.assert_allclose(x.grad, np.full((4, 3), 3.0))

    def test_diamond_graph(self):
        x = Tensor(2.0, requires_grad=True)
        a = x * 3
        b = x * 4
        (a + b).backward()
        assert x.grad == pytest.approx(7.0)

    def test_second_backward_accumulates_into_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        assert x.grad == pytest.approx(4.0)


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_flag_restored_after_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestElementwiseOps:
    @pytest.mark.parametrize(
        "op,ref",
        [
            ("exp", np.exp),
            ("log", np.log),
            ("sqrt", np.sqrt),
            ("tanh", np.tanh),
            ("abs", np.abs),
        ],
    )
    def test_forward_matches_numpy(self, op, ref):
        data = np.array([0.5, 1.0, 2.0])
        out = getattr(Tensor(data), op)()
        np.testing.assert_allclose(out.data, ref(data))

    def test_relu(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_hardtanh_clamps(self):
        out = Tensor([-2.0, 0.5, 2.0]).hardtanh()
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_hardtanh_gradient_mask(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.hardtanh().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_erf_forward(self):
        from scipy import special

        x = np.linspace(-2, 2, 7)
        np.testing.assert_allclose(Tensor(x).erf().data, special.erf(x))


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.sum().data == pytest.approx(15.0)
        np.testing.assert_allclose(x.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.mean().data == pytest.approx(2.5)
        np.testing.assert_allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_max_with_ties_splits_gradient(self):
        x = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])

    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)
        assert x.transpose((1, 0)).shape == (3, 2)

    def test_transpose_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.T * Tensor(np.ones((3, 2)))).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = x.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert x.pad2d(0) is x

    def test_concatenate_values_and_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = concatenate([a, b], axis=0)
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])


class TestNumericGradients:
    """Central-difference checks for a representative op set."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda x: (x * x).sum(),
            lambda x: (x.exp()).sum(),
            lambda x: (x.tanh() * 2).sum(),
            lambda x: (x.erf()).sum(),
            lambda x: ((x + 1.0) ** 3).sum(),
            lambda x: (x / (x * x + 2.0)).sum(),
        ],
    )
    def test_elementwise_gradients(self, make, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        make(x).backward()
        num = numeric_gradient(x, lambda: float(make(Tensor(x.data)).data))
        np.testing.assert_allclose(x.grad, num, rtol=1e-5, atol=1e-7)

    def test_matmul_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)

        def f():
            return float(((Tensor(a.data) @ Tensor(b.data)) ** 2).sum().data)

        ((a @ b) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, numeric_gradient(a, f), rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(b.grad, numeric_gradient(b, f), rtol=1e-5, atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=8),
    st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=8),
)
def test_add_commutes_with_numpy(xs, ys):
    """Property: Tensor arithmetic agrees with numpy broadcasting rules."""
    n = min(len(xs), len(ys))
    a, b = np.array(xs[:n]), np.array(ys[:n])
    np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, a + b)
    np.testing.assert_allclose((Tensor(a) * Tensor(b)).data, a * b)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
def test_sum_grad_is_ones(rows, cols):
    """Property: d(sum)/dx == 1 for every element, any shape."""
    x = Tensor(np.zeros((rows, cols)), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((rows, cols)))
