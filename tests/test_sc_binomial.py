"""Vendored binomial kernel (``repro.sc.binomial``).

Three layers of guarantees:

* the :class:`DrawBatch` contract — one ``Generator.random(total)``
  call sliced into consecutive pieces is *bit-identical* to the
  per-layer ``random(shape)`` calls it replaces (that identity is what
  lets the batched backend hoist every draw into one generator call);
* the inverse-CDF count kernels (quantized table gather and branchless
  binary search) agree exactly with the brute-force ``#{cdf_k <= u}``
  reference on the same uniforms — including uniforms sitting exactly
  on CDF levels and in stepped bins;
* batched-draw execution is bit-identical from the layer pass
  (``forward_batched`` on rng vs a pre-drawn batch) up through the
  grouped shard executor (``run_stages_group`` vs per-shard serial
  ``run_stages``) for both group-vectorizable backends.
"""

import numpy as np
import pytest

from repro.api import Engine
from repro.api.backends import get_backend
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import (
    CompiledNetwork,
    HeadStage,
    LinearStage,
    SignStage,
)
from repro.runtime.plan import (
    group_vectorizable,
    run_stages,
    run_stages_group,
    seed_shard,
)
from repro.sc.binomial import (
    QUANT_BINS,
    DrawBatch,
    counts_by_quantile,
    counts_by_search,
    quantile_table,
)
from repro.utils.rng import binomial_cdf, new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


# ----------------------------------------------------------------------
# DrawBatch: the draw-hoisting contract
# ----------------------------------------------------------------------
class TestDrawBatch:
    def test_slices_bit_identical_to_per_call_draws(self):
        shapes = [(3, 4), (2,), (5, 1, 2), (0, 7), (6,)]
        total = sum(int(np.prod(s)) for s in shapes)
        batch = DrawBatch(np.random.default_rng(7), total)
        direct = np.random.default_rng(7)
        for shape in shapes:
            np.testing.assert_array_equal(batch.take(shape), direct.random(shape))
        assert batch.remaining == 0

    def test_accounting_and_exhaustion(self):
        batch = DrawBatch(new_rng(0), 10)
        assert (batch.total, batch.consumed, batch.remaining) == (10, 0, 10)
        assert batch.take((2, 3)).shape == (2, 3)
        assert (batch.consumed, batch.remaining) == (6, 4)
        with pytest.raises(ValueError, match="exhausted"):
            batch.take((5,))
        # A failed take must not consume anything.
        assert batch.remaining == 4
        batch.take((4,))
        assert batch.remaining == 0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            DrawBatch(new_rng(0), -1)


# ----------------------------------------------------------------------
# Count kernels vs the brute-force inverse-CDF reference
# ----------------------------------------------------------------------
def _laws(bits, values=9, cols=5, seed=0):
    """A (values, cols) grid of Binomial(bits, p) CDFs plus random
    element indices/uniforms shaped like a sampler call."""
    rng = new_rng(seed)
    p = np.clip(rng.random((values, cols)), 1e-3, 1 - 1e-3)
    cdf = binomial_cdf(p, bits)
    idx = rng.integers(0, values, size=(64, cols))
    u = rng.random((64, cols))
    return cdf, idx, u, np.arange(cols)


def _reference_counts(cdf, idx, u, col_ids):
    """count = #{k < L : cdf_k <= u}, materializing every CDF row."""
    n = cdf.shape[-1] - 1
    rows = cdf.reshape(-1, n + 1)[idx * col_ids.shape[-1] + col_ids]
    return (rows[..., :n] <= u[..., None]).sum(axis=-1)


class TestCountKernels:
    @pytest.mark.parametrize("bits", [1, 8, 31, 127])
    def test_quantile_kernel_is_exact(self, bits):
        cdf, idx, u, col_ids = _laws(bits)
        quant = quantile_table(cdf, QUANT_BINS)
        got = counts_by_quantile(quant, cdf, idx, u, col_ids)
        np.testing.assert_array_equal(got, _reference_counts(cdf, idx, u, col_ids))

    @pytest.mark.parametrize("bits", [1, 8, 31, 127])
    def test_search_kernel_is_exact(self, bits):
        cdf, idx, u, col_ids = _laws(bits)
        got = counts_by_search(cdf, idx, u, col_ids)
        np.testing.assert_array_equal(got, _reference_counts(cdf, idx, u, col_ids))

    def test_uniforms_on_cdf_levels_resolve_exactly(self):
        # u exactly equal to a CDF level is the boundary both kernels
        # must get right (`<=` semantics); these all land in stepped
        # bins, exercising the quantile path's exact-resolution branch.
        bits = 16
        cdf, idx, _, col_ids = _laws(bits, seed=3)
        n = cdf.shape[-1] - 1
        rows = cdf.reshape(-1, n + 1)[idx * col_ids.shape[-1] + col_ids]
        level = new_rng(4).integers(0, n, size=idx.shape)
        u = np.minimum(
            np.take_along_axis(rows, level[..., None], axis=-1)[..., 0],
            np.nextafter(1.0, 0.0),
        )
        want = _reference_counts(cdf, idx, u, col_ids)
        quant = quantile_table(cdf, QUANT_BINS)
        np.testing.assert_array_equal(
            counts_by_quantile(quant, cdf, idx, u, col_ids), want
        )
        np.testing.assert_array_equal(
            counts_by_search(cdf, idx, u, col_ids), want
        )


# ----------------------------------------------------------------------
# Layer pass: forward_batched on rng vs a pre-drawn DrawBatch
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def batched_layer():
    rng = new_rng(3)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    x = pm(new_rng(5), (12, 64))
    return layer, x


def _draw_total(layer, n_rows):
    # The sizing rule the runtime uses (see batched_draw_elements).
    return layer.n_row_tiles * n_rows * layer.out_features


class TestForwardBatched:
    def test_rng_vs_drawbatch_bit_identical(self, batched_layer):
        layer, x = batched_layer
        assert layer.supports_batched_draws()
        out_rng = layer.forward_batched(x, rng=np.random.default_rng(11))
        draws = DrawBatch(np.random.default_rng(11), _draw_total(layer, x.shape[0]))
        out_batch = layer.forward_batched(x, uniforms=draws)
        np.testing.assert_array_equal(out_rng, out_batch)
        assert draws.remaining == 0

    def test_one_batch_spans_many_passes(self, batched_layer):
        layer, x = batched_layer
        gen = np.random.default_rng(13)
        per_pass = [layer.forward_batched(x, rng=gen) for _ in range(2)]
        draws = DrawBatch(
            np.random.default_rng(13), 2 * _draw_total(layer, x.shape[0])
        )
        batched = [layer.forward_batched(x, uniforms=draws) for _ in range(2)]
        for want, got in zip(per_pass, batched):
            np.testing.assert_array_equal(want, got)

    def test_long_window_fallback_rejects_uniforms(self):
        # A window too long for the cached CDF tables falls back to
        # Generator.binomial, which cannot consume pre-drawn uniforms.
        rng = new_rng(3)
        cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=2000)
        layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
        x = pm(new_rng(5), (4, 64))
        assert not layer.supports_batched_draws()
        layer.forward_batched(x, rng=np.random.default_rng(1))  # rng path still works
        with pytest.raises(ValueError, match="supports_batched_draws"):
            layer.forward_batched(
                x, uniforms=DrawBatch(np.random.default_rng(1), 10_000)
            )


# ----------------------------------------------------------------------
# Grouped shard executor vs per-shard serial execution
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def group_network():
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    x = new_rng(99).standard_normal((20, 64))
    return network, x


class TestGroupExecutor:
    @pytest.mark.parametrize("backend", ["stochastic", "stochastic-batched"])
    def test_group_bit_identical_to_per_shard_serial(self, group_network, backend):
        network, x = group_network
        strategy = get_backend(backend)
        assert group_vectorizable(network, strategy)
        specs = [(101, 0, 7), (202, 7, 12), (303, 12, 20)]  # uneven shards
        grouped = run_stages_group(network, x, specs, strategy)
        assert len(grouped) == len(specs)
        for (seed, start, stop), (logits, telemetry) in zip(specs, grouped):
            rng = seed_shard(network, seed)
            serial_telemetry = []
            want = run_stages(
                network, x[start:stop], strategy, rng, serial_telemetry
            )
            np.testing.assert_array_equal(logits, want)
            assert len(telemetry) == len(serial_telemetry)

    def test_string_backend_rejected(self, group_network):
        network, x = group_network
        with pytest.raises(ValueError, match="not group-vectorizable"):
            run_stages_group(network, x, [(1, 0, 20)], "stochastic")

    def test_batched_backend_session_is_reproducible(self, group_network):
        network, _ = group_network
        engine = Engine(network, micro_batch=8)
        images = new_rng(99).standard_normal((20, 64))
        with engine.session(seed=6, backend="stochastic-batched") as a:
            first = a.run(images).logits
        with engine.session(seed=6, backend="stochastic-batched") as b:
            second = b.run(images).logits
        np.testing.assert_array_equal(first, second)
