"""Shared test helpers (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np


def numeric_gradient(tensor, f, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``tensor.data``."""
    grad = np.zeros_like(tensor.data)
    it = np.nditer(tensor.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        original = tensor.data[idx]
        tensor.data[idx] = original + eps
        f_plus = f()
        tensor.data[idx] = original - eps
        f_minus = f()
        tensor.data[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad
