"""Tests for ReCU (Eq. 17) and BN matching (Eq. 16)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd.layers import BatchNorm1d
from repro.autograd.module import Parameter
from repro.core.bn_matching import (
    BnMatchResult,
    match_batch_norm,
    software_reference_output,
)
from repro.core.recu import ReCU, TauSchedule


class TestTauSchedule:
    def test_endpoints(self):
        sched = TauSchedule(0.85, 0.99, total_epochs=10)
        assert sched.value(0) == pytest.approx(0.85)
        assert sched.value(9) == pytest.approx(0.99)

    def test_clamps_past_total(self):
        sched = TauSchedule(0.85, 0.99, total_epochs=10)
        assert sched.value(100) == pytest.approx(0.99)

    def test_single_epoch(self):
        assert TauSchedule(total_epochs=1).value(0) == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ValueError):
            TauSchedule(tau_start=0.3)
        with pytest.raises(ValueError):
            TauSchedule(tau_start=0.9, tau_end=0.8)
        with pytest.raises(ValueError):
            TauSchedule(total_epochs=0)
        with pytest.raises(ValueError):
            TauSchedule().value(-1)


class TestReCUClamp:
    def test_clamp_bounds_are_quantiles(self, rng):
        weights = rng.normal(size=10000)
        clamped = ReCU.clamp_array(weights, tau=0.9)
        assert clamped.max() == pytest.approx(np.quantile(weights, 0.9))
        assert clamped.min() == pytest.approx(np.quantile(weights, 0.1))

    def test_interior_weights_untouched(self, rng):
        weights = rng.normal(size=1000)
        clamped = ReCU.clamp_array(weights, tau=0.99)
        lo, hi = np.quantile(weights, [0.01, 0.99])
        interior = (weights > lo) & (weights < hi)
        np.testing.assert_array_equal(clamped[interior], weights[interior])

    def test_tau_one_is_identity(self, rng):
        weights = rng.normal(size=100)
        np.testing.assert_array_equal(ReCU.clamp_array(weights, 1.0), weights)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            ReCU.clamp_array(np.zeros(4), tau=0.4)

    def test_apply_to_parameters_skips_vectors(self, rng):
        matrix = Parameter(rng.normal(size=(20, 20)) * 10)
        vector = Parameter(rng.normal(size=20) * 10)
        original_vector = vector.data.copy()
        ReCU(TauSchedule(0.85, 0.99, 10)).apply_to_parameters([matrix, vector], epoch=0)
        np.testing.assert_array_equal(vector.data, original_vector)
        assert np.abs(matrix.data).max() < 30  # clamped

    def test_apply_to_module(self, rng):
        from repro.core.layers import RandomizedBinaryLinear

        cell = RandomizedBinaryLinear(30, 20, seed=0)
        cell.weight.data = rng.normal(size=(20, 30)) * 5
        tau = ReCU(TauSchedule(0.85, 0.99, 10)).apply_to_module(cell, epoch=0)
        assert tau == pytest.approx(0.85)
        hi = np.quantile(cell.weight.data, 1.0)
        assert hi <= np.abs(cell.weight.data).max() + 1e-12

    def test_reduces_tails_toward_peak(self, rng):
        """The point of ReCU: outliers move toward the distribution body."""
        weights = np.concatenate([rng.normal(size=1000), np.array([50.0, -50.0])])
        clamped = ReCU.clamp_array(weights, tau=0.95)
        assert np.abs(clamped).max() < 10


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=10, max_size=60),
    st.floats(min_value=0.51, max_value=1.0),
)
def test_recu_clamp_invariants(values, tau):
    """Property: clamping shrinks the range and preserves elementwise order.

    (Idempotency does NOT hold — clamping reshapes the distribution, so
    the quantiles move; ReCU is reapplied every step for exactly this
    reason.)
    """
    weights = np.array(values)
    clamped = ReCU.clamp_array(weights, tau)
    assert clamped.shape == weights.shape
    assert clamped.max() <= weights.max() + 1e-12
    assert clamped.min() >= weights.min() - 1e-12
    order = np.argsort(weights, kind="stable")
    assert np.all(np.diff(clamped[order]) >= -1e-12)


class TestBnMatching:
    def make_params(self, rng, n=8):
        return {
            "gamma": rng.uniform(0.5, 2.0, n) * rng.choice([-1, 1], n),
            "beta": rng.normal(size=n),
            "mean": rng.normal(size=n) * 3,
            "var": rng.uniform(0.1, 4.0, n),
            "alpha": rng.uniform(0.2, 2.0, n),
            "eps": 1e-5,
        }

    def test_eq16_threshold_formula_positive_gamma(self):
        """Ith = (mu/alpha - beta*std/(gamma*alpha)) * I1 for gamma > 0."""
        result = match_batch_norm(
            gamma=np.array([2.0]),
            beta=np.array([1.0]),
            mean=np.array([4.0]),
            var=np.array([0.25]),
            alpha=np.array([0.5]),
            eps=0.0,
            unit_current_ua=3.0,
        )
        expected_t = 4.0 / 0.5 - 1.0 * 0.5 / (2.0 * 0.5)
        assert result.threshold_values[0] == pytest.approx(expected_t)
        assert result.threshold_currents_ua[0] == pytest.approx(expected_t * 3.0)
        assert not result.flip[0]

    def test_negative_slope_flips(self):
        result = match_batch_norm(
            gamma=np.array([-1.0]),
            beta=np.array([0.0]),
            mean=np.array([0.0]),
            var=np.array([1.0]),
            alpha=np.array([1.0]),
            eps=0.0,
            unit_current_ua=1.0,
        )
        assert result.flip[0]

    def test_folded_cell_matches_reference_bn_pipeline(self, rng):
        """sign(BN(alpha * x)) must equal the folded threshold decision."""
        params = self.make_params(rng)
        result = match_batch_norm(unit_current_ua=2.0, **params)
        xconv = rng.integers(-20, 21, size=(64, 8)).astype(float)
        std = np.sqrt(params["var"] + params["eps"])
        bn_out = (
            params["gamma"] * (xconv * params["alpha"] - params["mean"]) / std
            + params["beta"]
        )
        reference = np.where(bn_out >= 0, 1.0, -1.0)
        folded = software_reference_output(xconv, result)
        # Ties (bn_out exactly 0) are measure-zero with random params.
        np.testing.assert_array_equal(folded, reference)

    def test_split_across_crossbars(self):
        result = BnMatchResult(
            threshold_values=np.array([6.0]),
            threshold_currents_ua=np.array([6.0]),
            flip=np.array([False]),
        )
        np.testing.assert_allclose(result.split_across(3), [2.0])
        with pytest.raises(ValueError):
            result.split_across(0)

    def test_validation(self):
        good = dict(
            gamma=np.ones(2),
            beta=np.zeros(2),
            mean=np.zeros(2),
            var=np.ones(2),
            alpha=np.ones(2),
            eps=1e-5,
        )
        with pytest.raises(ValueError):
            match_batch_norm(unit_current_ua=0.0, **good)
        bad = dict(good)
        bad["alpha"] = np.array([1.0, 0.0])
        with pytest.raises(ValueError):
            match_batch_norm(unit_current_ua=1.0, **bad)
        bad = dict(good)
        bad["var"] = np.array([1.0, -1.0])
        with pytest.raises(ValueError):
            match_batch_norm(unit_current_ua=1.0, **bad)
        bad = dict(good)
        bad["beta"] = np.zeros(3)
        with pytest.raises(ValueError):
            match_batch_norm(unit_current_ua=1.0, **bad)

    def test_matches_live_batchnorm_layer(self, rng):
        """End-to-end: fold a trained BatchNorm1d and compare decisions."""
        from repro.autograd.tensor import Tensor

        bn = BatchNorm1d(4)
        for _ in range(20):
            bn(Tensor(rng.normal(loc=2.0, scale=3.0, size=(64, 4))))
        bn.weight.data = rng.uniform(0.5, 1.5, 4) * rng.choice([-1, 1], 4)
        bn.bias.data = rng.normal(size=4)
        bn.eval()
        alpha = rng.uniform(0.5, 1.5, 4)
        result = match_batch_norm(
            gamma=bn.weight.data,
            beta=bn.bias.data,
            mean=bn.running_mean,
            var=bn.running_var,
            alpha=alpha,
            eps=bn.eps,
            unit_current_ua=1.0,
        )
        xconv = rng.integers(-10, 11, size=(32, 4)).astype(float)
        bn_out = bn(Tensor(xconv * alpha)).data
        reference = np.where(bn_out >= 0, 1.0, -1.0)
        np.testing.assert_array_equal(
            software_reference_output(xconv, result), reference
        )
