"""Tests for the cost model — including the exact Table 1 reproduction."""

import numpy as np
import pytest

from repro.hardware.config import HardwareConfig
from repro.hardware.cost import (
    COOLING_OVERHEAD_FACTOR,
    AcceleratorCostModel,
    CrossbarCost,
    LayerWorkload,
    crossbar_cost_table,
)

#: Paper Table 1, verbatim.
PAPER_TABLE1 = {
    4: (60, 384, 1.92),
    8: (120, 1152, 5.76),
    16: (240, 3840, 19.20),
    18: (270, 4752, 23.76),
    36: (540, 17280, 86.4),
    72: (1080, 65664, 328.32),
    144: (2160, 255744, 1278.72),
}


class TestCrossbarCost:
    @pytest.mark.parametrize("size", sorted(PAPER_TABLE1))
    def test_table1_reproduced_exactly(self, size):
        latency, jj, energy = PAPER_TABLE1[size]
        cost = CrossbarCost(size)
        assert cost.latency_ps == pytest.approx(latency)
        assert cost.jj_count == jj
        assert cost.energy_per_cycle_aj == pytest.approx(energy)

    def test_jj_decomposition(self):
        cost = CrossbarCost(10)
        assert cost.jj_count == 12 * 100 + 48 * 10

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CrossbarCost(0)

    def test_cost_table_helper(self):
        rows = crossbar_cost_table([8, 16])
        assert [r["size"] for r in rows] == [8, 16]
        assert rows[0]["jj_count"] == 1152


class TestLayerWorkload:
    def test_macs_and_ops(self):
        w = LayerWorkload(in_features=100, out_features=10, positions=4)
        assert w.macs == 4000
        assert w.ops == 8000

    def test_tile_grid(self):
        w = LayerWorkload(in_features=40, out_features=20)
        assert w.tile_grid(16) == (3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerWorkload(in_features=0, out_features=1)


def vgg_like_workloads():
    return [
        LayerWorkload(108, 16, 256),
        LayerWorkload(144, 16, 256),
        LayerWorkload(144, 32, 64),
        LayerWorkload(288, 32, 64),
        LayerWorkload(256, 10, 1),
    ]


class TestAcceleratorCostModel:
    def make(self, cs=72, window=16, **kw):
        cfg = HardwareConfig(crossbar_size=cs, window_bits=window)
        return AcceleratorCostModel(cfg, vgg_like_workloads(), **kw)

    def test_cycles_scale_with_window(self):
        assert self.make(window=32).cycles_per_image() == 2 * self.make(
            window=16
        ).cycles_per_image()

    def test_throughput_inverse_of_cycles(self):
        model = self.make()
        expected = model.config.clock_rate_hz / model.cycles_per_image()
        assert model.throughput_images_per_s() == pytest.approx(expected)

    def test_efficiency_improves_with_shorter_window(self):
        """The Table 2 operating-point knob: fewer cycles -> more TOPS/W."""
        e32 = self.make(window=32).energy_efficiency_tops_per_w()
        e1 = self.make(window=1).energy_efficiency_tops_per_w()
        assert e1 > e32

    def test_efficiency_window_scaling_is_proportional(self):
        """Crossbar + SC energy scale with L, so EE(L) ~ 1/L up to the
        memory term."""
        e16 = self.make(window=16).energy_efficiency_tops_per_w()
        e4 = self.make(window=4).energy_efficiency_tops_per_w()
        assert e4 / e16 == pytest.approx(4.0, rel=0.2)

    def test_cooling_divides_by_400(self):
        model = self.make()
        assert model.energy_efficiency_tops_per_w(
            with_cooling=True
        ) == pytest.approx(
            model.energy_efficiency_tops_per_w() / COOLING_OVERHEAD_FACTOR
        )

    def test_paper_order_of_magnitude(self):
        """SupeRBNN reports 1.9e5-6.8e6 TOPS/W across operating points;
        our model must land in that band (shape reproduction)."""
        e = self.make(cs=72, window=16).energy_efficiency_tops_per_w()
        assert 5e4 < e < 5e7

    def test_power_is_energy_times_rate(self):
        model = self.make()
        assert model.power_w() == pytest.approx(
            model.energy_per_image_j() * model.throughput_images_per_s()
        )

    def test_latency_includes_pipeline_fill(self):
        model = self.make()
        pure = model.cycles_per_image() / model.config.clock_rate_hz
        assert model.latency_per_image_s() > pure

    def test_summary_keys(self):
        summary = self.make().summary()
        for key in (
            "power_mw",
            "throughput_images_per_ms",
            "tops_per_w",
            "tops_per_w_cooled",
        ):
            assert key in summary

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorCostModel(HardwareConfig(), [])

    def test_clock_overhead_validation(self):
        with pytest.raises(ValueError):
            self.make(clock_overhead=0.5)

    def test_total_weight_bits(self):
        model = self.make()
        expected = sum(w.in_features * w.out_features for w in vgg_like_workloads())
        assert model.total_weight_bits() == expected

    def test_larger_crossbars_fewer_passes(self):
        assert (
            self.make(cs=144).passes_per_image() <= self.make(cs=16).passes_per_image()
        )
