"""Tests for the Langevin transient simulator (Jsim-lite substrate)."""

import numpy as np
import pytest

from repro.device.transient import QfpPotential, TransientBuffer


class TestQfpPotential:
    def test_double_well_positions(self):
        pot = QfpPotential(a_end=4.0, b=1.0)
        lo, hi = pot.well_positions()
        assert lo == pytest.approx(-2.0)
        assert hi == pytest.approx(2.0)

    def test_barrier_height(self):
        pot = QfpPotential(a_end=4.0, b=1.0)
        assert pot.barrier_height() == pytest.approx(4.0)

    def test_quadratic_ramp(self):
        pot = QfpPotential(a_start=-1.0, a_end=3.0)
        assert pot.quadratic(0.0) == pytest.approx(-1.0)
        assert pot.quadratic(1.0) == pytest.approx(3.0)
        assert pot.quadratic(0.5) == pytest.approx(1.0)

    def test_force_sign_at_origin(self):
        """At phi=0 the only force is the input bias — the decision seed."""
        pot = QfpPotential()
        assert pot.force(np.array(0.0), 1.0, 0.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            QfpPotential(b=0.0)
        with pytest.raises(ValueError):
            QfpPotential(a_end=-1.0)
        with pytest.raises(ValueError):
            QfpPotential(a_start=5.0, a_end=4.0)


class TestTransientBuffer:
    def test_zero_bias_is_a_coin_flip(self):
        buf = TransientBuffer(seed=0)
        p = buf.probability_of_one(0.0, n_trials=4000)
        assert p == pytest.approx(0.5, abs=0.03)

    def test_strong_bias_is_deterministic(self):
        buf = TransientBuffer(seed=0)
        assert buf.probability_of_one(2.0, n_trials=500) > 0.995
        assert buf.probability_of_one(-2.0, n_trials=500) < 0.005

    def test_response_monotone(self):
        buf = TransientBuffer(seed=1)
        curve = buf.response_curve(np.linspace(-0.5, 0.5, 7), n_trials=3000)
        # Allow tiny MC wiggle but require a clearly increasing trend.
        assert curve[-1] > curve[0] + 0.5
        assert np.all(np.diff(curve) > -0.05)

    def test_zero_temperature_is_a_hard_sign(self):
        buf = TransientBuffer(noise_temperature=0.0, seed=0)
        assert buf.probability_of_one(0.05, n_trials=10) == 1.0
        assert buf.probability_of_one(-0.05, n_trials=10) == 0.0

    def test_erf_law_emerges_from_dynamics(self):
        """The paper's Eq. 1 functional form, derived not assumed:
        the fitted erf reproduces the Monte-Carlo response closely."""
        buf = TransientBuffer(noise_temperature=0.08, seed=0)
        residual = buf.erf_fit_residual(n_trials=3000)
        assert residual < 0.05

    def test_gray_zone_grows_with_temperature(self):
        """Thermal regime of [73]: wider gray zone when warmer."""
        cold = TransientBuffer(noise_temperature=0.02, seed=1)
        warm = TransientBuffer(noise_temperature=0.3, seed=1)
        gz_cold, _ = cold.fit_gray_zone(bias_range=1.0, n_trials=1500)
        gz_warm, _ = warm.fit_gray_zone(bias_range=1.0, n_trials=1500)
        assert gz_warm > 2.0 * gz_cold

    def test_threshold_near_zero_for_symmetric_device(self):
        buf = TransientBuffer(seed=2)
        _, threshold = buf.fit_gray_zone(n_trials=3000)
        assert abs(threshold) < 0.05

    def test_outputs_are_bipolar(self):
        buf = TransientBuffer(seed=0)
        outputs = buf.simulate_outputs(0.0, 100)
        assert set(np.unique(outputs)) <= {-1.0, 1.0}

    def test_seeded_reproducibility(self):
        a = TransientBuffer(seed=7).simulate_outputs(0.1, 50)
        b = TransientBuffer(seed=7).simulate_outputs(0.1, 50)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransientBuffer(noise_temperature=-0.1)
        with pytest.raises(ValueError):
            TransientBuffer(damping=0.0)
        with pytest.raises(ValueError):
            TransientBuffer().simulate_outputs(0.0, 0)

    def test_saturated_sweep_raises(self):
        buf = TransientBuffer(noise_temperature=0.001, seed=0)
        with pytest.raises(RuntimeError):
            buf.fit_gray_zone(bias_range=2.0, n_points=5, n_trials=200)
