"""Tests for crossbar current attenuation: ladder model and power-law fit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.attenuation import (
    AttenuationModel,
    InductiveLadder,
    default_attenuation_model,
    fit_attenuation,
)


class TestAttenuationModel:
    def test_power_law_values(self):
        model = AttenuationModel(amplitude_ua=70.0, exponent=1.0)
        assert model.unit_current_ua(1) == pytest.approx(70.0)
        assert model.unit_current_ua(7) == pytest.approx(10.0)

    def test_monotone_decreasing_in_size(self):
        model = AttenuationModel()
        sizes = np.array([1, 4, 16, 64, 144])
        currents = model.unit_current_ua(sizes)
        assert np.all(np.diff(currents) < 0)

    def test_value_domain_gray_zone_eq4(self):
        """dVin(Cs) = dIin / I1(Cs)."""
        model = AttenuationModel(amplitude_ua=70.0, exponent=1.0)
        assert model.value_domain_gray_zone(7, gray_zone_ua=2.4) == pytest.approx(0.24)

    def test_gray_zone_grows_with_size(self):
        """Bigger crossbars are noisier — the scalability limit."""
        model = AttenuationModel()
        dv = model.value_domain_gray_zone(np.array([4, 16, 64, 144]), 2.4)
        assert np.all(np.diff(dv) > 0)

    def test_callable_alias(self):
        model = AttenuationModel()
        assert model(8) == model.unit_current_ua(8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AttenuationModel(amplitude_ua=-1.0)
        with pytest.raises(ValueError):
            AttenuationModel(exponent=0.0)
        with pytest.raises(ValueError):
            AttenuationModel().unit_current_ua(0)
        with pytest.raises(ValueError):
            AttenuationModel().value_domain_gray_zone(4, gray_zone_ua=0.0)


class TestInductiveLadder:
    def test_attenuates_with_size(self):
        ladder = InductiveLadder()
        sizes = np.array([1, 4, 16, 64, 144])
        out = ladder.output_current_ua(sizes)
        assert np.all(np.diff(out) < 0)

    def test_output_below_drive(self):
        ladder = InductiveLadder(drive_current_ua=70.0)
        assert np.all(ladder.output_current_ua(np.arange(1, 150)) < 70.0)

    def test_measurement_noise_reproducible(self):
        ladder = InductiveLadder()
        _, a = ladder.measure([4, 8, 16], seed=7)
        _, b = ladder.measure([4, 8, 16], seed=7)
        np.testing.assert_array_equal(a, b)

    def test_measurement_positive(self):
        _, currents = InductiveLadder().measure([4, 144], noise_fraction=0.1, seed=0)
        assert np.all(currents > 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InductiveLadder(drive_current_ua=0.0)
        with pytest.raises(ValueError):
            InductiveLadder(coupling_exponent=1.5)
        with pytest.raises(ValueError):
            InductiveLadder().output_current_ua(0)


class TestFitAttenuation:
    def test_recovers_exact_power_law(self):
        truth = AttenuationModel(amplitude_ua=55.0, exponent=0.8)
        sizes = np.array([4, 8, 16, 36, 72, 144])
        fitted = fit_attenuation(sizes, truth.unit_current_ua(sizes))
        assert fitted.amplitude_ua == pytest.approx(55.0, rel=1e-9)
        assert fitted.exponent == pytest.approx(0.8, rel=1e-9)

    def test_fits_ladder_measurements_well(self):
        """The paper's Eq. 2 fit: power law approximates the physics."""
        ladder = InductiveLadder()
        sizes, currents = ladder.measure(
            [4, 8, 16, 18, 36, 72, 144], noise_fraction=0.0, seed=0
        )
        model = fit_attenuation(sizes, currents)
        rel_err = np.abs(model.unit_current_ua(sizes) - currents) / currents
        assert rel_err.max() < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_attenuation([4], [10.0])
        with pytest.raises(ValueError):
            fit_attenuation([4, 8], [10.0])
        with pytest.raises(ValueError):
            fit_attenuation([4, -8], [10.0, 5.0])

    def test_default_pipeline(self):
        model = default_attenuation_model(seed=0)
        assert model.exponent > 0.5
        assert model.amplitude_ua > 10.0


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=10.0, max_value=100.0),
    st.floats(min_value=0.3, max_value=1.5),
)
def test_fit_is_exact_on_noiseless_power_laws(amplitude, exponent):
    """Property: log-log least squares inverts the generating law."""
    truth = AttenuationModel(amplitude_ua=amplitude, exponent=exponent)
    sizes = np.array([2, 5, 11, 23, 47, 96])
    fitted = fit_attenuation(sizes, truth.unit_current_ua(sizes))
    assert fitted.amplitude_ua == pytest.approx(amplitude, rel=1e-6)
    assert fitted.exponent == pytest.approx(exponent, rel=1e-6)
