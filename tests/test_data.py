"""Tests for synthetic datasets and the batch loader."""

import numpy as np
import pytest

from repro.data.loaders import DataLoader
from repro.data.synthetic import (
    Dataset,
    make_cifar_like,
    make_classification_images,
    make_mnist_like,
)


class TestDataset:
    def test_shapes_and_ranges(self):
        data = make_mnist_like(n_samples=100, seed=0)
        assert data.images.shape == (100, 1, 12, 12)
        assert data.images.min() >= -1.0 and data.images.max() <= 1.0
        assert data.labels.shape == (100,)
        assert set(np.unique(data.labels)) <= set(range(10))

    def test_cifar_like_three_channels(self):
        data = make_cifar_like(n_samples=50, seed=0)
        assert data.image_shape == (3, 16, 16)

    def test_deterministic_generation(self):
        a = make_mnist_like(n_samples=64, seed=5)
        b = make_mnist_like(n_samples=64, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_mnist_like(n_samples=64, seed=1)
        b = make_mnist_like(n_samples=64, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_split_partitions_without_overlap(self):
        data = make_mnist_like(n_samples=100, seed=0)
        train, test = data.split(0.8, seed=1)
        assert len(train) == 80 and len(test) == 20
        # no image appears in both halves
        train_keys = {img.tobytes() for img in train.images}
        assert all(img.tobytes() not in train_keys for img in test.images)

    def test_split_validation(self):
        data = make_mnist_like(n_samples=20, seed=0)
        with pytest.raises(ValueError):
            data.split(1.5)

    def test_subset(self):
        data = make_mnist_like(n_samples=30, seed=0)
        sub = data.subset(10)
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.images, data.images[:10])
        with pytest.raises(ValueError):
            data.subset(0)

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 3, 2, 2)), np.zeros(5), 10)  # length mismatch
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 12)), np.zeros(4), 10)  # not NCHW
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 1, 2, 2)), np.zeros(4), 1)  # 1 class

    def test_task_is_learnable_but_not_trivial(self):
        """A nearest-prototype classifier must beat chance but stay
        below ceiling — the experiments need accuracy headroom."""
        data = make_mnist_like(n_samples=400, seed=0)
        train, test = data.split(0.8, seed=1)
        prototypes = np.stack(
            [
                train.images[train.labels == c].mean(axis=0)
                for c in range(data.n_classes)
            ]
        )
        flat_test = test.images.reshape(len(test), -1)
        flat_proto = prototypes.reshape(10, -1)
        pred = ((flat_test[:, None, :] - flat_proto[None]) ** 2).sum(-1).argmin(1)
        accuracy = (pred == test.labels).mean()
        assert accuracy > 0.5

    def test_noise_scale_controls_difficulty(self):
        clean = make_mnist_like(n_samples=200, noise_scale=0.05, seed=0)
        noisy = make_mnist_like(n_samples=200, noise_scale=0.9, seed=0)
        # Same prototypes; higher noise -> larger deviation from class mean.
        def spread(data):
            return np.mean(
                [
                    data.images[data.labels == c].std()
                    for c in range(10)
                    if (data.labels == c).any()
                ]
            )

        assert spread(noisy) > spread(clean)

    def test_generation_validation(self):
        with pytest.raises(ValueError):
            make_classification_images(5, n_classes=10)
        with pytest.raises(ValueError):
            make_classification_images(100, noise_scale=-0.1)


class TestDataLoader:
    def test_batch_shapes(self):
        data = make_mnist_like(n_samples=100, seed=0)
        loader = DataLoader(data, batch_size=32, seed=0)
        batches = list(loader)
        assert len(batches) == 4  # 32+32+32+4
        assert batches[0][0].shape == (32, 1, 12, 12)
        assert batches[-1][0].shape == (4, 1, 12, 12)

    def test_len(self):
        data = make_mnist_like(n_samples=100, seed=0)
        assert len(DataLoader(data, batch_size=32)) == 4

    def test_covers_all_samples(self):
        data = make_mnist_like(n_samples=50, seed=0)
        loader = DataLoader(data, batch_size=16, seed=0)
        total = sum(len(labels) for _, labels in loader)
        assert total == 50

    def test_shuffle_changes_order_across_epochs(self):
        data = make_mnist_like(n_samples=64, seed=0)
        loader = DataLoader(data, batch_size=64, shuffle=True, seed=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_ordered(self):
        data = make_mnist_like(n_samples=32, seed=0)
        loader = DataLoader(data, batch_size=32, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, data.labels)

    def test_invalid_batch_size(self):
        data = make_mnist_like(n_samples=10, seed=0)
        with pytest.raises(ValueError):
            DataLoader(data, batch_size=0)
