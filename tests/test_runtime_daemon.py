"""ServingDaemon: queueing, coalescing bit-identity, failure isolation,
shutdown semantics, and Session lifecycle guarantees."""

import queue
import time

import numpy as np
import pytest

from repro.api import (
    Engine,
    Serving,
    ServingDaemon,
    Session,
    StochasticParallelBackend,
)
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import CompiledNetwork, HeadStage, LinearStage, SignStage
from repro.runtime import ShardParallelScheduler
from repro.utils.rng import new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture(scope="module")
def small_engine():
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def request_data():
    rng = new_rng(99)
    images = rng.standard_normal((48, 64))
    labels = rng.integers(0, 10, size=48)
    return images, labels


def _requests(images, labels):
    bounds = [(0, 8), (8, 24), (24, 29), (29, 48)]  # uneven on purpose
    return (
        [images[a:b] for a, b in bounds],
        [labels[a:b] for a, b in bounds],
    )


class TestCoalescingBitIdentity:
    """Acceptance: coalesced daemon logits are bit-identical to the same
    requests run uncoalesced through a serial Session."""

    def test_coalesced_wave_matches_serial_session(self, small_engine, request_data):
        images, labels = request_data
        requests, request_labels = _requests(images, labels)
        reference = Session(small_engine, seed=42).run_many(
            requests, labels=request_labels
        )
        with ServingDaemon(
            small_engine, seed=42, coalesce_window_s=0.1
        ) as daemon:
            futures = [
                daemon.submit(r, labels=l)
                for r, l in zip(requests, request_labels)
            ]
            results = [f.result() for f in futures]
            stats = daemon.stats
        assert stats.waves < len(requests), "burst must actually coalesce"
        assert stats.coalesced_requests > 0
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)
            assert got.accuracy == want.accuracy
            assert got.micro_batches == want.micro_batches
            assert got.total_windows == want.total_windows

    def test_zero_window_still_coalesces_queued_burst(self, small_engine, request_data):
        """window=0 merges whatever is already queued (no waiting)."""
        images, _ = request_data
        requests = [images[:8]] * 6
        reference = Session(small_engine, seed=9).run_many(requests)
        with ServingDaemon(small_engine, seed=9, coalesce_window_s=0.0) as daemon:
            results = daemon.run_many(requests)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)

    def test_seed_per_request_matches_serving_contract(self, small_engine, request_data):
        """seed_per_request replays the thread-pool Serving front-end's
        per-request child-seeded sessions bit for bit."""
        images, labels = request_data
        requests, request_labels = _requests(images, labels)
        with Serving(small_engine, workers=3, seed=21) as front:
            reference = front.serve(requests, labels=request_labels)
        with ServingDaemon(
            small_engine, seed=21, seed_per_request=True, coalesce_window_s=0.1
        ) as daemon:
            report = daemon.serve(requests, labels=request_labels)
        assert report.waves is not None and report.waves >= 1
        for got, want in zip(report.results, reference.results):
            np.testing.assert_array_equal(got.logits, want.logits)

    def test_daemon_over_process_pool_matches_serial(self, small_engine, request_data):
        images, _ = request_data
        requests = [images[:16], images[16:48]]
        reference = Session(small_engine, seed=4).run_many(requests)
        with StochasticParallelBackend(workers=2) as backend:
            with ServingDaemon(
                small_engine, backend=backend, seed=4, coalesce_window_s=0.1
            ) as daemon:
                results = daemon.run_many(requests)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)

    def test_explicit_submit_seed_pins_one_request(self, small_engine, request_data):
        images, _ = request_data
        want = Session(small_engine, seed=77).run(images[:8])
        with ServingDaemon(small_engine, coalesce_window_s=0.0) as daemon:
            got = daemon.submit(images[:8], seed=77).result()
        np.testing.assert_array_equal(got.logits, want.logits)


class TestServingEdgeCases:
    def test_zero_request_run_many(self, small_engine):
        with ServingDaemon(small_engine, seed=0) as daemon:
            assert daemon.run_many([]) == []
        assert Session(small_engine, seed=0).run_many([]) == []
        report = ServingDaemon(small_engine, seed=0)
        try:
            assert report.serve([]).n_requests == 0
        finally:
            report.close()

    def test_failing_request_does_not_wedge_the_queue(self, small_engine, request_data):
        """A request whose execution raises fails its own future only;
        neighbours in the same wave still complete — bit-identically to
        the uncoalesced serial sequence (which also draws plan seeds
        for the doomed request before it fails)."""
        images, _ = request_data
        ref_session = Session(small_engine, seed=5)
        ref_good = ref_session.run(images[:8])
        with pytest.raises(ValueError):
            ref_session.run(np.full((4, 9), 0.5))
        ref_tail = ref_session.run(images[8:16])
        reference = [ref_good, ref_tail]
        with ServingDaemon(small_engine, seed=5, coalesce_window_s=0.2) as daemon:
            good = daemon.submit(images[:8])
            bad = daemon.submit(np.full((4, 9), 0.5))  # wrong fan-in
            tail = daemon.submit(images[8:16])
            with pytest.raises(ValueError):
                bad.result(timeout=30)
            np.testing.assert_array_equal(
                good.result(timeout=30).logits, reference[0].logits
            )
            np.testing.assert_array_equal(
                tail.result(timeout=30).logits, reference[1].logits
            )
            stats = daemon.stats
        assert stats.failed == 1
        assert stats.completed == 2
        # the daemon still serves after the failure
        with ServingDaemon(small_engine, seed=5) as daemon:
            assert daemon.submit(images[:8]).result(timeout=30).batch_size == 8

    def test_malformed_submit_rejected_in_caller(self, small_engine):
        with ServingDaemon(small_engine) as daemon:
            with pytest.raises(ValueError):
                daemon.submit(np.zeros(64))  # unbatched

    def test_close_drains_in_flight_requests(self, small_engine, request_data):
        images, _ = request_data
        daemon = ServingDaemon(small_engine, seed=1, coalesce_window_s=0.0)
        futures = [daemon.submit(images[:8]) for _ in range(5)]
        daemon.close(drain=True)
        for future in futures:
            assert future.result(timeout=30).batch_size == 8
        assert daemon.stats.completed == 5

    def test_close_without_drain_fails_pending(self, small_engine, request_data):
        """Queued-but-unstarted requests get a clear error instead of
        hanging forever."""
        images, _ = request_data
        # a large burst so some requests are still queued at close time
        daemon = ServingDaemon(
            small_engine, seed=1, coalesce_window_s=0.0, max_wave_images=8
        )
        futures = [daemon.submit(images[:8]) for _ in range(12)]
        daemon.close(drain=False)
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=30)
                outcomes.append("done")
            except RuntimeError:
                outcomes.append("failed")
        assert "done" in outcomes or "failed" in outcomes
        assert all(o in ("done", "failed") for o in outcomes)
        # every future resolved one way or the other — nothing hangs
        assert len(outcomes) == 12

    def test_submit_after_close_rejected(self, small_engine, request_data):
        images, _ = request_data
        daemon = ServingDaemon(small_engine)
        daemon.close()
        with pytest.raises(RuntimeError):
            daemon.submit(images[:8])
        daemon.close()  # idempotent

    def test_bounded_queue_times_out(self, small_engine, request_data):
        images, _ = request_data
        # max_wave_images=1: the wave closes after its first request, so
        # the consumer never races the test for the second submission.
        daemon = ServingDaemon(
            small_engine, seed=0, max_queue=1, coalesce_window_s=0.0,
            max_wave_images=1,
        )
        try:
            # Stall the executor mid-wave by holding the engine's
            # execution lock from this thread; the pipeline then fills:
            # one wave blocked in the executor, two planned waves in
            # the handoff queue, one wave in the assembler's hand
            # (blocked on the handoff put), and one request in the
            # admission queue — five slots with max_wave_images=1.
            with small_engine._exec_lock:
                for _ in range(5):
                    daemon.submit(images[:8], timeout=5.0)
                with pytest.raises(queue.Full):  # no room for a sixth
                    daemon.submit(images[:8], timeout=0.05)
            # lock released: everything in flight completes on drain
            daemon.close(drain=True)
            assert daemon.stats.completed == 5
        finally:
            daemon.close(drain=False)

    def test_stats_snapshot(self, small_engine, request_data):
        images, _ = request_data
        with ServingDaemon(small_engine, seed=0, coalesce_window_s=0.05) as daemon:
            daemon.run_many([images[:8], images[8:16]])
            stats = daemon.stats
        assert stats.submitted == 2
        assert stats.completed == 2
        assert stats.total_images == 16
        assert stats.waves >= 1
        assert stats.as_dict()["submitted"] == 2


class TestBackpressureGauges:
    """try_submit + the live queue-depth/in-flight gauges the network
    tier sheds load with."""

    def test_try_submit_never_blocks_and_gauges_track_saturation(
        self, small_engine, request_data
    ):
        from repro.runtime.recovery import QueueFull

        images, _ = request_data
        daemon = ServingDaemon(
            small_engine, seed=0, max_queue=1, coalesce_window_s=0.0,
            max_wave_images=1,
        )
        try:
            with small_engine._exec_lock:  # stall the executor
                accepted = []
                rejections = consecutive = 0
                deadline = time.monotonic() + 20.0
                # A rejection before saturation is transient (the
                # assembler just has not drained the slot yet); five in
                # a row spanning 100ms means the pipeline is truly full.
                while consecutive < 5 and time.monotonic() < deadline:
                    try:
                        accepted.append(daemon.try_submit(images[:8]))
                        consecutive = 0
                    except QueueFull:
                        rejections += 1
                        consecutive += 1
                        time.sleep(0.02)
                assert consecutive == 5, "try_submit must shed, not block"
                stats = daemon.stats
                # pipeline capacity: executor 1 + handoff 2 + assembler
                # hand 1 + admission queue 1 (see the bounded-queue test)
                assert len(accepted) == 5
                assert stats.in_flight == 5
                assert stats.queue_depth == 1
                assert stats.rejected == rejections
            daemon.close(drain=True)
            for future in accepted:
                assert future.result(timeout=30).batch_size == 8
            stats = daemon.stats
            assert stats.in_flight == 0
            assert stats.queue_depth == 0
            assert stats.completed == 5
        finally:
            daemon.close(drain=False)

    def test_gauges_are_zero_when_idle(self, small_engine, request_data):
        images, _ = request_data
        with ServingDaemon(small_engine, seed=0, coalesce_window_s=0.0) as daemon:
            daemon.submit(images[:8]).result(timeout=30)
            stats = daemon.stats
        assert stats.in_flight == 0
        assert stats.queue_depth == 0
        assert stats.as_dict()["in_flight"] == 0

    def test_try_submit_rejected_after_close(self, small_engine, request_data):
        images, _ = request_data
        daemon = ServingDaemon(small_engine, seed=0)
        daemon.close()
        with pytest.raises(RuntimeError):
            daemon.try_submit(images[:8])


class TestWarmPoolReuse:
    """The prewarmed worker pool persists across waves: a stable pool
    generation is the observable proof that no wave paid a pool rebuild
    (or a re-warmup) after startup."""

    def test_prewarm_builds_pool_once_and_waves_reuse_it(
        self, small_engine, request_data
    ):
        images, _ = request_data
        requests = [images[:16], images[16:32], images[32:48]]
        reference = Session(small_engine, seed=11).run_many(requests)
        with ShardParallelScheduler(workers=1) as scheduler:
            assert scheduler.pool_generation == 0
            with ServingDaemon(
                small_engine,
                seed=11,
                scheduler=scheduler,
                prewarm=True,
                coalesce_window_s=0.0,
            ) as daemon:
                generation = scheduler.pool_generation
                assert generation == 1, "prewarm must build the pool up front"
                results = [daemon.submit(r).result() for r in requests]
                assert daemon.stats.waves >= 1
            # Every wave ran on the same pool the prewarm built.
            assert scheduler.pool_generation == generation
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)


class TestSessionLifecycle:
    def test_closed_session_rejects_run(self, small_engine, request_data):
        images, _ = request_data
        session = small_engine.session(seed=0)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run(images[:8])
        with pytest.raises(RuntimeError, match="closed"):
            session.run_many([images[:8]])

    def test_close_is_idempotent(self, small_engine):
        session = small_engine.session(seed=0, backend="stochastic-parallel")
        session.close()
        session.close()  # second close must not blow up on the dead pool

    def test_context_manager_closes(self, small_engine, request_data):
        images, _ = request_data
        with small_engine.session(seed=0) as session:
            session.run(images[:8])
        with pytest.raises(RuntimeError):
            session.run(images[:8])
