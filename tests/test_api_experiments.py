"""Experiment registry: full coverage of repro/experiments + CLI run."""

import json
import pathlib

import pytest

import repro.experiments as experiments_pkg
from repro.api.experiments import (
    available_experiments,
    experiment_registry,
    get_experiment,
    register_experiment,
    run_experiment,
)


def experiment_modules():
    """Short names of every experiment module (the parity ground truth)."""
    root = pathlib.Path(experiments_pkg.__file__).parent
    return {
        p.stem
        for p in root.glob("*.py")
        if p.stem not in ("__init__", "common")
    }


class TestRegistryParity:
    def test_registry_covers_every_experiment_module(self):
        """Satellite: each module under repro/experiments is reachable
        from the registry, and the registry references no phantom
        modules — adding an experiment without registering it fails."""
        registered = {spec.module_name for spec in experiment_registry().values()}
        assert registered == experiment_modules()

    def test_every_target_resolves_to_a_callable(self):
        for name in available_experiments():
            assert callable(get_experiment(name).resolve()), name

    def test_previously_missing_experiments_now_registered(self):
        """The PR-1 CLI gap: these were unreachable from the CLI."""
        for name in ("table2", "table3", "fig10", "fig11", "headline",
                     "temperature"):
            assert name in available_experiments()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="table1"):
            get_experiment("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            register_experiment("table1", "repro.experiments.table1:x", "dup")

    def test_run_experiment_executes(self):
        rows = run_experiment("table1", sizes=[4, 8])
        assert [r["size"] for r in rows] == [4, 8]


class TestCliRun:
    def test_run_list_prints_all_experiments(self, capsys):
        from repro.cli import main

        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for name in available_experiments():
            assert name in out

    def test_run_without_name_lists(self, capsys):
        from repro.cli import main

        assert main(["run"]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_run_fast_experiment_emits_json(self, capsys):
        from repro.cli import main

        assert main(["run", "fig5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "points" in payload and payload["points"]

    def test_run_with_overrides(self, capsys):
        from repro.cli import main

        assert main(["run", "table1", "-k", "sizes=[4]"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1 and payload[0]["size"] == 4

    def test_run_output_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "fig5.json"
        assert main(["run", "fig5", "-o", str(target)]) == 0
        assert json.loads(target.read_text())["points"]

    def test_backends_subcommand(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "stochastic-fused-batched" in out

    def test_override_parsing_rejects_garbage(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "table1", "-k", "novalue"])
