"""Tests for the splitter-insertion (fanout legalization) pass."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.apc import build_apc_netlist
from repro.circuits.comparator import build_comparator_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.splitters import (
    compute_fanout,
    fanout_violations,
    insert_splitters,
)


def fanout_heavy_netlist() -> Netlist:
    """One input driving four AND gates — fanout 4."""
    nl = Netlist(name="heavy")
    nl.add_input("a")
    nl.add_input("b")
    for i in range(4):
        nl.add_gate(f"g{i}", "and2", ["a", "b"])
        nl.mark_output(f"g{i}")
    return nl


class TestComputeFanout:
    def test_counts_loads(self):
        nl = fanout_heavy_netlist()
        fanout = compute_fanout(nl)
        assert fanout["a"] == 4
        assert fanout["b"] == 4

    def test_outputs_count_as_loads(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g", "buffer", ["a"])
        nl.mark_output("g")
        assert compute_fanout(nl)["g"] == 1

    def test_violations_detection(self):
        nl = fanout_heavy_netlist()
        assert fanout_violations(nl, max_fanout=1) == 2  # a and b
        assert fanout_violations(nl, max_fanout=4) == 0


class TestInsertSplitters:
    def test_legalizes_fanout(self):
        nl = fanout_heavy_netlist()
        legal, report = insert_splitters(nl)
        assert report.violations_after == 0
        assert fanout_violations(legal) == 0

    def test_splitter_count_is_fanout_minus_one(self):
        """A binary tree serving f loads from 1 port needs f-1 splitters."""
        nl = fanout_heavy_netlist()
        _, report = insert_splitters(nl)
        assert report.splitters_added == 2 * (4 - 1)  # a and b, 3 each

    def test_functional_equivalence(self):
        nl = fanout_heavy_netlist()
        legal, _ = insert_splitters(nl)
        for a in (0, 1):
            for b in (0, 1):
                original = nl.evaluate({"a": a, "b": b})
                legalized = legal.evaluate({"a": a, "b": b})
                for out in nl.outputs:
                    assert original[out] == legalized[out]

    def test_depth_grows_logarithmically(self):
        nl = fanout_heavy_netlist()
        legal, report = insert_splitters(nl)
        # 4 loads -> 2 tree levels of splitters.
        assert report.depth_after == report.depth_before + 2

    def test_no_change_when_already_legal(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g", "buffer", ["a"])
        nl.mark_output("g")
        legal, report = insert_splitters(nl)
        assert report.splitters_added == 0
        assert len(legal) == len(nl)

    def test_jj_accounting(self):
        nl = fanout_heavy_netlist()
        legal, report = insert_splitters(nl)
        assert report.jj_added == report.splitters_added * 4  # splitter = 4 JJ
        assert legal.logic_jj_count() == nl.logic_jj_count() + report.jj_added

    def test_constants_preserved(self):
        nl = Netlist()
        nl.add_constant("one", 1)
        nl.add_input("x")
        nl.add_gate("g0", "and2", ["one", "x"])
        nl.add_gate("g1", "or2", ["one", "x"])
        nl.mark_output("g0")
        nl.mark_output("g1")
        legal, _ = insert_splitters(nl)
        values = legal.evaluate({"x": 1})
        assert values["g0"] == 1 and values["g1"] == 1

    def test_comparator_equivalence_after_legalization(self):
        nl = build_comparator_netlist(3)
        legal, report = insert_splitters(nl)
        assert report.violations_after == 0
        for v in range(8):
            for r in range(8):
                inputs = {f"v_{i}": (v >> i) & 1 for i in range(3)}
                inputs.update({f"r_{i}": (r >> i) & 1 for i in range(3)})
                assert (
                    legal.evaluate(inputs)[legal.outputs[0]]
                    == nl.evaluate(inputs)[nl.outputs[0]]
                )

    def test_invalid_max_fanout(self):
        with pytest.raises(ValueError):
            insert_splitters(Netlist(), max_fanout=0)

    def test_relaxed_fanout_budget_needs_fewer_splitters(self):
        nl = fanout_heavy_netlist()
        _, strict = insert_splitters(nl, max_fanout=1)
        _, relaxed = insert_splitters(nl, max_fanout=2)
        assert relaxed.splitters_added < strict.splitters_added


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=255))
def test_apc_equivalence_after_legalization(n_inputs, pattern):
    """Property: legalization never changes the counted value."""
    nl = build_apc_netlist(n_inputs, approximate_layers=0)
    legal, report = insert_splitters(nl)
    assert report.violations_after == 0
    bits = [(pattern >> i) & 1 for i in range(n_inputs)]
    inputs = {f"in_{i}": b for i, b in enumerate(bits)}
    original = sum(nl.evaluate(inputs)[o] << k for k, o in enumerate(nl.outputs))
    legalized = sum(
        legal.evaluate(inputs)[o] << k for k, o in enumerate(legal.outputs)
    )
    assert original == legalized == sum(bits)
