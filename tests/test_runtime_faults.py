"""Fault-injection harness, failure classification, retry policy, the
recovery loop, and the activation ring's lease-leak guards.

Everything here is in-process and fast; the process-pool chaos
scenarios (worker kill, pool rebuild, deadline rescue) live in
``tests/test_runtime_chaos.py``.
"""

import json
import queue
import time
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.runtime import faults
from repro.runtime.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_injection,
    fault_point,
    install_fault_plan,
)
from repro.runtime.recovery import (
    DeadlineExceeded,
    PoisonedPayload,
    QueueFull,
    RequestError,
    RetryPolicy,
    classified,
    classify,
    run_with_recovery,
)
from repro.runtime.transport import ActivationRing, TransportUnavailable, load


@pytest.fixture(autouse=True)
def _pristine_fault_state(monkeypatch):
    """Every test starts with no active plan and no env plan, and
    leaves the module globals the way it found them."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    previous = install_fault_plan(None)
    yield
    install_fault_plan(previous)


class TestFaultSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="fault action"):
            FaultSpec(site="worker.shard", action="explode")

    def test_unknown_error_name_fails_fast(self):
        with pytest.raises(ValueError, match="unknown fault error"):
            FaultSpec(site="worker.shard", action="raise", error="Nope")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="worker.shard", action="delay", delay_s=-1.0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="p must be"):
            FaultSpec(site="worker.shard", p=1.5)

    def test_after_and_times_bounds(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="worker.shard", after=-1)
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="worker.shard", times=0)

    def test_resolvable_error_names(self):
        for name in ("TransportUnavailable", "BrokenProcessPool",
                     "DeadlineExceeded", "KeyboardInterrupt"):
            FaultSpec(site="worker.shard", action="raise", error=name)


class TestTriggering:
    def test_match_filters_on_context(self):
        plan = FaultPlan([FaultSpec(site="worker.shard", match={"shard": 1})])
        assert plan.visit("worker.shard", {"shard": 0}) is None
        assert plan.visit("scheduler.wave", {"shard": 1}) is None
        assert plan.visit("worker.shard", {"shard": 1}) is not None

    def test_after_skips_and_times_caps(self):
        plan = FaultPlan(
            [FaultSpec(site="transport.attach", after=2, times=2)]
        )
        fired = [
            plan.visit("transport.attach", {}) is not None for _ in range(6)
        ]
        assert fired == [False, False, True, True, False, False]
        assert plan.counters() == [(6, 2)]

    def test_times_none_fires_every_matching_hit(self):
        plan = FaultPlan([FaultSpec(site="daemon.consumer", times=None)])
        assert all(
            plan.visit("daemon.consumer", {}) is not None for _ in range(5)
        )

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            [
                FaultSpec(site="worker.shard", action="delay", delay_s=0.0),
                FaultSpec(site="worker.shard", action="raise"),
            ]
        )
        spec = plan.visit("worker.shard", {})
        assert spec is plan.specs[0]

    def test_seeded_probability_is_deterministic(self):
        spec = {"site": "worker.shard", "p": 0.5, "times": None}
        schedules = []
        for _ in range(2):
            plan = FaultPlan.from_dict({"seed": 1234, "specs": [spec]})
            schedules.append(
                [plan.visit("worker.shard", {}) is not None for _ in range(64)]
            )
        assert schedules[0] == schedules[1]
        assert any(schedules[0]) and not all(schedules[0])

    def test_reset_rewinds_counters_and_draws(self):
        plan = FaultPlan([FaultSpec(site="worker.shard", times=1)])
        assert plan.visit("worker.shard", {}) is not None
        assert plan.visit("worker.shard", {}) is None
        plan.reset()
        assert plan.visit("worker.shard", {}) is not None


class TestSerialization:
    def test_json_round_trip_preserves_schedule(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="worker.shard",
                    action="raise",
                    error="TransportUnavailable",
                    after=1,
                    times=3,
                    match={"shard": 2},
                    p=0.25,
                ),
                FaultSpec(site="daemon.request", action="delay", delay_s=0.5),
            ],
            seed=7,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.as_dict() == plan.as_dict()

    def test_counters_do_not_serialize(self):
        """A plan shipped to a worker starts counting fresh."""
        plan = FaultPlan([FaultSpec(site="worker.shard", times=1)])
        assert plan.visit("worker.shard", {}) is not None
        clone = FaultPlan.from_dict(plan.as_dict())
        assert clone.visit("worker.shard", {}) is not None


class TestInstallation:
    def test_fault_injection_scopes_and_restores(self):
        outer = FaultPlan([FaultSpec(site="worker.shard")])
        inner = FaultPlan([FaultSpec(site="daemon.request")])
        install_fault_plan(outer)
        with fault_injection(inner):
            assert faults.active_fault_plan() is inner
        assert faults.active_fault_plan() is outer

    def test_env_inline_json(self, monkeypatch, tmp_path):
        payload = {"seed": 3, "specs": [{"site": "worker.shard"}]}
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(payload))
        faults.clear_inherited_plan()  # re-arm the env path
        plan = faults.active_fault_plan()
        assert plan is not None and plan.seed == 3
        assert plan.specs[0].site == "worker.shard"

    def test_env_file_path(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"specs": [{"site": "daemon.consumer"}]}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        faults.clear_inherited_plan()
        plan = faults.active_fault_plan()
        assert plan is not None and plan.specs[0].site == "daemon.consumer"

    def test_explicit_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", json.dumps({"specs": [{"site": "worker.shard"}]})
        )
        install_fault_plan(None)
        assert faults.active_fault_plan() is None

    def test_clear_inherited_plan_keeps_env_live(self, monkeypatch):
        """A worker that dropped a fork-inherited plan must still honor
        environment-configured chaos runs."""
        install_fault_plan(FaultPlan([FaultSpec(site="worker.shard")]))
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", json.dumps({"specs": [{"site": "daemon.request"}]})
        )
        faults.clear_inherited_plan()
        plan = faults.active_fault_plan()
        assert plan is not None and plan.specs[0].site == "daemon.request"


class TestFaultPoint:
    def test_noop_without_plan(self):
        fault_point("worker.shard", shard=0)  # must not raise

    def test_raise_default_and_named(self):
        # Toy sites on purpose: this exercises the plan machinery, not
        # the instrumented call sites.  lint-static: allow[fault-site]
        with fault_injection(FaultPlan([FaultSpec(site="a")])):
            with pytest.raises(FaultInjected, match="injected fault at a"):
                fault_point("a")  # lint-static: allow[fault-site]
        with fault_injection(
            FaultPlan([FaultSpec(site="b", error="ValueError")])  # lint-static: allow[fault-site]
        ):
            with pytest.raises(ValueError):
                fault_point("b")  # lint-static: allow[fault-site]

    def test_poison_raises_poisoned_payload(self):
        with fault_injection(
            FaultPlan([FaultSpec(site="daemon.request", action="poison")])
        ):
            with pytest.raises(PoisonedPayload):
                fault_point("daemon.request", rows=8)

    def test_delay_sleeps(self):
        plan = FaultPlan(
            [FaultSpec(site="w", action="delay", delay_s=0.05)]  # lint-static: allow[fault-site]
        )
        with fault_injection(plan):
            start = time.monotonic()
            fault_point("w")  # lint-static: allow[fault-site]
            assert time.monotonic() - start >= 0.04


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            BrokenProcessPool("pool died"),
            TransportUnavailable("no shm"),
            DeadlineExceeded("too slow"),
            TimeoutError("timeout"),
            OSError("broken pipe"),
            EOFError(),
            ConnectionError(),
        ],
    )
    def test_infrastructure_is_retryable(self, exc):
        assert classify(exc) == "retryable"

    @pytest.mark.parametrize(
        "exc",
        [
            ValueError("bad shape"),
            PoisonedPayload("poison"),
            TypeError("bad type"),
            KeyboardInterrupt(),
        ],
    )
    def test_payload_and_interrupts_are_fatal(self, exc):
        assert classify(exc) == "fatal"

    def test_request_error_carries_its_kind(self):
        assert classify(RequestError("x", kind="fatal")) == "fatal"
        assert classify(RequestError("x", kind="retryable")) == "retryable"

    def test_classified_wraps_retryable_with_cause(self):
        original = BrokenProcessPool("worker died")
        wrapped = classified(original)
        assert isinstance(wrapped, RequestError)
        assert wrapped.kind == "retryable"
        assert wrapped.__cause__ is original
        assert wrapped.__traceback__ is not None

    def test_classified_passes_fatal_through_untouched(self):
        original = PoisonedPayload("poison")
        assert classified(original) is original

    def test_exception_hierarchy_for_legacy_callers(self):
        assert issubclass(QueueFull, queue.Full)
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(PoisonedPayload, ValueError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="deadline_s"):
            RetryPolicy(deadline_s=0)

    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, max_backoff_s=0.3
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.3)
        assert policy.backoff(10) == pytest.approx(0.3)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0.25")
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE_S", "9.5")
        monkeypatch.setenv("REPRO_SERIAL_FALLBACK", "off")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.backoff_base_s == pytest.approx(0.25)
        assert policy.deadline_s == pytest.approx(9.5)
        assert policy.serial_fallback is False

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            RetryPolicy.from_env()


class TestRunWithRecovery:
    def _policy(self, **kwargs):
        kwargs.setdefault("backoff_base_s", 0.0)
        return RetryPolicy(**kwargs)

    def test_clean_first_attempt(self):
        result, log = run_with_recovery(
            lambda remaining: "ok", policy=self._policy()
        )
        assert result == "ok"
        assert log.attempts == 1 and log.clean and not log.recovered

    def test_retryable_failure_retries_with_repair_label(self):
        calls = []

        def attempt(remaining):
            calls.append(remaining)
            if len(calls) == 1:
                raise BrokenProcessPool("worker died")
            return "recovered"

        repairs = []
        result, log = run_with_recovery(
            attempt,
            policy=self._policy(),
            on_retry=lambda exc: repairs.append(exc) or "rebuild-pool",
        )
        assert result == "recovered"
        assert log.attempts == 2 and log.recovered
        assert log.retries == [
            {
                "error": "BrokenProcessPool",
                "kind": "retryable",
                "action": "rebuild-pool",
            }
        ]
        assert isinstance(repairs[0], BrokenProcessPool)

    def test_fatal_failure_raises_immediately(self):
        calls = []

        def attempt(remaining):
            calls.append(1)
            raise PoisonedPayload("poison")

        with pytest.raises(PoisonedPayload):
            run_with_recovery(attempt, policy=self._policy())
        assert len(calls) == 1

    def test_exhausted_retries_fall_back_to_serial(self):
        def attempt(remaining):
            raise TransportUnavailable("no shm")

        result, log = run_with_recovery(
            attempt,
            policy=self._policy(max_retries=1),
            fallback=lambda: "serial-result",
        )
        assert result == "serial-result"
        assert log.fallback == "serial" and log.recovered
        assert log.attempts == 2
        assert [r["action"] for r in log.retries] == ["retry", "serial-fallback"]

    def test_exhausted_retries_without_fallback_raise_request_error(self):
        original = BrokenProcessPool("worker died")

        def attempt(remaining):
            raise original

        with pytest.raises(RequestError) as excinfo:
            run_with_recovery(attempt, policy=self._policy(max_retries=0))
        assert excinfo.value.kind == "retryable"
        assert excinfo.value.__cause__ is original

    def test_deadline_budget_is_threaded_to_attempts(self):
        budgets = []
        result, log = run_with_recovery(
            lambda remaining: budgets.append(remaining) or "ok",
            policy=self._policy(),
            deadline_s=30.0,
        )
        assert result == "ok"
        assert budgets[0] is not None and 0 < budgets[0] <= 30.0

    def test_deadline_exhausted_goes_straight_to_fallback(self):
        calls = []

        def attempt(remaining):
            calls.append(1)
            time.sleep(0.05)
            raise DeadlineExceeded("straggler")

        result, log = run_with_recovery(
            attempt,
            policy=self._policy(max_retries=5),
            deadline_s=0.03,
            fallback=lambda: "serial-result",
        )
        assert result == "serial-result"
        assert len(calls) == 1, "no budget left: must not re-attempt"
        assert log.fallback == "serial"

    def test_backoff_sleeps_follow_policy(self):
        pauses = []

        def attempt(remaining):
            raise OSError("flaky")

        result, log = run_with_recovery(
            attempt,
            policy=RetryPolicy(
                max_retries=2, backoff_base_s=0.1, backoff_factor=2.0
            ),
            fallback=lambda: "ok",
            sleep=pauses.append,
        )
        assert result == "ok"
        assert pauses == [pytest.approx(0.1), pytest.approx(0.2)]


class TestActivationRingLeases:
    def test_release_recycles_the_slot(self):
        with ActivationRing(slots=1) as ring:
            data = np.arange(32, dtype=np.float64).reshape(4, 8)
            lease = ring.publish(data)
            assert ring.outstanding == 1
            ticket = lease.ticket(1, 3)
            np.testing.assert_array_equal(load(ticket), data[1:3])
            lease.release()
            assert ring.outstanding == 0
            ring.publish(data).release()  # slot is reusable

    def test_release_and_abandon_are_idempotent(self):
        with ActivationRing(slots=2) as ring:
            lease = ring.publish(np.ones(4))
            lease.release()
            lease.release()
            lease.abandon()
            assert ring.outstanding == 0

    def test_abandon_destroys_the_segment(self):
        """The deadline path: an abandoned slot is never recycled, so a
        retry can never rewrite memory a straggler is reading."""
        with ActivationRing(slots=2) as ring:
            lease = ring.publish(np.ones(8))
            segment = lease.ticket(0, 8).segment
            lease.abandon()
            assert ring.outstanding == 0
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=segment)

    def test_expired_lease_is_reclaimed_not_wedged(self):
        """A dead consumer's lease must not pin the ring forever."""
        with ActivationRing(slots=1, lease_timeout_s=0.05) as ring:
            stale = ring.publish(np.ones(8))
            time.sleep(0.06)
            fresh = ring.publish(np.ones(8))  # must not block forever
            assert ring.reclaimed == 1
            stale.release()  # late release of a reclaimed lease: no-op
            assert ring.outstanding == 1
            fresh.release()

    def test_publish_timeout_raises_transport_unavailable(self):
        with ActivationRing(
            slots=1, lease_timeout_s=None, publish_timeout_s=0.05
        ) as ring:
            lease = ring.publish(np.ones(8))
            with pytest.raises(TransportUnavailable, match="no activation slot"):
                ring.publish(np.ones(8))
            lease.release()

    def test_closed_ring_refuses_to_publish(self):
        ring = ActivationRing(slots=1)
        ring.close()
        with pytest.raises(TransportUnavailable, match="closed"):
            ring.publish(np.ones(4))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="slots"):
            ActivationRing(slots=0)
        with pytest.raises(ValueError, match="lease_timeout_s"):
            ActivationRing(slots=1, lease_timeout_s=0)
        with pytest.raises(ValueError, match="publish_timeout_s"):
            ActivationRing(slots=1, publish_timeout_s=-1)
