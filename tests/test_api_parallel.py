"""Parallel shard execution, concurrent serving, and the PR's Engine
correctness fixes (empty-batch accuracy, run_many labels, backend
instance caching)."""

import warnings

import numpy as np
import pytest

from repro.api import (
    Engine,
    Serving,
    StochasticParallelBackend,
    backend_aliases,
    get_backend,
    plan_shards,
)
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import (
    CompiledNetwork,
    HeadStage,
    LinearStage,
    SignStage,
    compile_model,
)
from repro.mapping.executor import evaluate_accuracy
from repro.utils.rng import new_rng

from tests.test_mapping_compiler import quick_mlp  # noqa: F401  (fixture)


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture(scope="module")
def small_engine():
    """A crossbar engine built directly from +-1 weights (no training:
    fast enough to run many sharded requests through a process pool)."""
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def request_data():
    rng = new_rng(99)
    images = rng.standard_normal((40, 64))
    labels = rng.integers(0, 10, size=40)
    return images, labels


class TestParallelDeterminism:
    """Acceptance: N-worker `stochastic-parallel` output is bit-identical
    to serial execution for the same Session seed."""

    def test_serial_vs_1_vs_4_workers_bit_identical(self, small_engine, request_data):
        images, _ = request_data
        serial = small_engine.session(seed=11).run(images)
        assert serial.micro_batches == 5
        for workers in (1, 4):
            with StochasticParallelBackend(workers=workers) as backend:
                parallel = small_engine.session(seed=11, backend=backend).run(images)
            np.testing.assert_array_equal(
                parallel.logits, serial.logits, err_msg=f"workers={workers}"
            )
            assert parallel.backend == "stochastic-parallel"
            assert parallel.micro_batches == serial.micro_batches

    def test_parallel_trained_model_matches_serial(self, quick_mlp):
        """Same property through the real compile path (BN matching,
        thresholds, multi-layer reseeding)."""
        model, _, test = quick_mlp
        engine = Engine.from_model(model, micro_batch=16)
        images = test.images[:40]
        serial = engine.session(seed=5).run(images)
        with StochasticParallelBackend(workers=2) as backend:
            parallel = engine.session(seed=5, backend=backend).run(images)
        np.testing.assert_array_equal(parallel.logits, serial.logits)

    def test_telemetry_merges_across_workers(self, small_engine, request_data):
        images, _ = request_data
        serial = small_engine.session(seed=3).run(images)
        with StochasticParallelBackend(workers=4) as backend:
            parallel = small_engine.session(seed=3, backend=backend).run(images)
        assert parallel.total_windows == serial.total_windows
        assert len(parallel.layers) == len(serial.layers)
        assert [t.kind for t in parallel.layers] == [t.kind for t in serial.layers]

    def test_successive_parallel_runs_stay_stochastic(self, small_engine, request_data):
        images, _ = request_data
        with StochasticParallelBackend(workers=2) as backend:
            session = small_engine.session(seed=4, backend=backend)
            a = session.run(images)
            b = session.run(images)
        assert not np.array_equal(a.logits, b.logits)

    def test_empty_request_through_parallel_backend(self, small_engine):
        with StochasticParallelBackend(workers=2) as backend:
            result = small_engine.session(seed=0, backend=backend).run(
                np.zeros((0, 64))
            )
        assert result.logits.shape == (0, 10)
        assert result.batch_size == 0

    def test_inner_backend_configurable(self, small_engine, request_data):
        images, _ = request_data
        serial = small_engine.session(seed=9).run(
            images, backend="stochastic-fused-batched"
        )
        with StochasticParallelBackend(
            workers=2, inner="stochastic-fused-batched"
        ) as backend:
            parallel = small_engine.session(seed=9, backend=backend).run(images)
        np.testing.assert_array_equal(parallel.logits, serial.logits)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            StochasticParallelBackend(workers=0)
        with pytest.raises(KeyError):
            StochasticParallelBackend(inner="nonsense")


class TestShardPlan:
    def test_plan_covers_batch_without_overlap(self):
        plan = plan_shards(37, 8, rng=new_rng(0))
        assert [s.start for s in plan.shards] == [0, 8, 16, 24, 32]
        assert [s.stop for s in plan.shards] == [8, 16, 24, 32, 37]
        assert len({s.seed for s in plan.shards}) == len(plan)

    def test_plan_seeds_deterministic(self):
        a = plan_shards(32, 8, rng=new_rng(7))
        b = plan_shards(32, 8, rng=new_rng(7))
        assert [s.seed for s in a.shards] == [s.seed for s in b.shards]

    def test_empty_batch_gets_one_empty_shard(self):
        plan = plan_shards(0, 8, rng=new_rng(0))
        assert len(plan) == 1
        assert (plan.shards[0].start, plan.shards[0].stop) == (0, 0)

    def test_unseeded_plan_carries_no_seeds(self):
        plan = plan_shards(16, 8)
        assert all(s.seed is None for s in plan.shards)


class TestExpressLanes:
    """``warm()`` on a fork-context pool parks every worker on a
    dedicated pipe lane; waves then bypass the executor's dispatch
    machinery. The lanes must change *only* the transport, never the
    bits, and a severed lane must take the normal rebuild-and-retry
    recovery path."""

    def _warmed(self, network, **kwargs):
        from repro.runtime import ShardParallelScheduler

        scheduler = ShardParallelScheduler(**kwargs)
        scheduler.warm(network)
        if scheduler._lanes is None:  # spawn-context host/thread state
            scheduler.close()
            pytest.skip("fork start method unavailable; no lanes to test")
        return scheduler

    def test_lane_wave_bit_identical_to_executor_wave(
        self, small_engine, request_data
    ):
        images, _ = request_data
        network = small_engine.network
        plan_seed = 13
        with self._warmed(network, workers=2) as warmed:
            plan = plan_shards(len(images), 8, rng=new_rng(plan_seed))
            lane_logits, _ = warmed.run_plan(network, images, plan)
        from repro.runtime import ShardParallelScheduler

        with ShardParallelScheduler(workers=2) as cold:  # executor path
            plan = plan_shards(len(images), 8, rng=new_rng(plan_seed))
            pool_logits, _ = cold.run_plan(network, images, plan)
        np.testing.assert_array_equal(lane_logits, pool_logits)

    def test_severed_lane_rebuilds_and_recovers(self, small_engine, request_data):
        import os as _os
        import signal

        images, _ = request_data
        network = small_engine.network
        with self._warmed(network, workers=1) as scheduler:
            plan = plan_shards(len(images), 8, rng=new_rng(5))
            baseline, _ = scheduler.run_plan(network, images, plan)
            generation = scheduler.pool_generation
            for proc in scheduler._pool._processes.values():
                _os.kill(proc.pid, signal.SIGKILL)
            plan = plan_shards(len(images), 8, rng=new_rng(5))
            recovered, _ = scheduler.run_plan(network, images, plan)
            log = scheduler.last_recovery
            assert log is not None and log.recovered
            assert any(
                entry["action"] == "rebuild-pool" for entry in log.retries
            )
            assert scheduler.pool_generation > generation
            np.testing.assert_array_equal(recovered, baseline)
            # Re-warming the rebuilt pool re-parks the lanes.
            scheduler.warm(network)
            assert scheduler._lanes is not None
            plan = plan_shards(len(images), 8, rng=new_rng(5))
            relaned, _ = scheduler.run_plan(network, images, plan)
            np.testing.assert_array_equal(relaned, baseline)


class TestServing:
    def test_results_in_submission_order_with_accuracy(
        self, small_engine, request_data
    ):
        images, labels = request_data
        requests = [images[:8], images[8:24], images[24:40]]
        request_labels = [labels[:8], labels[8:24], labels[24:40]]
        with Serving(small_engine, workers=3, seed=0) as front:
            report = front.serve(requests, labels=request_labels)
        assert [r.batch_size for r in report.results] == [8, 16, 16]
        assert report.n_requests == 3
        assert report.total_images == 40
        assert report.wall_time_s > 0
        assert report.images_per_s > 0
        assert 0.0 <= report.accuracy <= 1.0
        summary = report.summary()
        assert summary["n_requests"] == 3
        assert summary["accuracy"] == report.accuracy

    def test_seeded_serving_replays_identically(self, small_engine, request_data):
        """Thread scheduling must not leak into results: concurrent
        requests interleave on the shared layers at shard granularity,
        each shard pinned by its own child seed."""
        images, _ = request_data
        requests = [images[:12]] * 6
        with Serving(small_engine, workers=4, seed=21) as front:
            a = front.serve(requests)
        with Serving(small_engine, workers=1, seed=21) as front:
            b = front.serve(requests)
        for left, right in zip(a.results, b.results):
            np.testing.assert_array_equal(left.logits, right.logits)

    def test_serving_with_shared_parallel_backend(self, small_engine, request_data):
        images, labels = request_data
        requests = [images[:10], images[10:20], images[20:40]]
        request_labels = [labels[:10], labels[10:20], labels[20:40]]
        with StochasticParallelBackend(workers=2) as backend:
            with Serving(small_engine, workers=2, backend=backend, seed=1) as front:
                report = front.serve(requests, labels=request_labels)
            with Serving(small_engine, workers=3, backend=backend, seed=1) as front:
                replay = front.serve(requests, labels=request_labels)
        assert report.backend == "stochastic-parallel"
        for left, right in zip(report.results, replay.results):
            np.testing.assert_array_equal(left.logits, right.logits)

    def test_unlabelled_serving_reports_no_accuracy(self, small_engine, request_data):
        images, _ = request_data
        with Serving(small_engine, workers=2, seed=0) as front:
            report = front.serve([images[:4], images[4:8]])
        assert report.accuracy is None
        assert "accuracy" not in report.summary()

    def test_misaligned_labels_rejected(self, small_engine, request_data):
        images, labels = request_data
        with Serving(small_engine, workers=2) as front:
            with pytest.raises(ValueError):
                front.serve([images[:4]], labels=[labels[:4], labels[4:8]])

    def test_empty_request_list(self, small_engine):
        with Serving(small_engine, workers=2) as front:
            report = front.serve([])
        assert report.n_requests == 0
        assert report.accuracy is None

    def test_invalid_workers_rejected(self, small_engine):
        with pytest.raises(ValueError):
            Serving(small_engine, workers=0)


class TestEngineFixes:
    def test_empty_batch_evaluate_returns_zero_warning_free(self, small_engine):
        images = np.zeros((0, 64))
        labels = np.array([], dtype=np.int64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert small_engine.evaluate(images, labels) == 0.0
            result = small_engine.run(images, labels=labels)
            assert result.accuracy == 0.0

    def test_empty_batch_shim_consistent_with_engine(self, quick_mlp):
        """The legacy shim no longer special-cases the empty set — both
        paths flow through InferenceResult.accuracy."""
        model, _, test = quick_mlp
        network = compile_model(model)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            shim = evaluate_accuracy(
                network, test.images[:0], test.labels[:0], mode="ideal"
            )
            engine = Engine(network).evaluate(
                test.images[:0], test.labels[:0], backend="ideal"
            )
        assert shim == engine == 0.0

    def test_run_many_threads_labels_through(self, small_engine, request_data):
        images, labels = request_data
        session = small_engine.session(seed=0)
        results = session.run_many(
            [images[:8], images[8:20]], labels=[labels[:8], labels[8:20]]
        )
        assert [r.batch_size for r in results] == [8, 12]
        for result, expected in zip(results, [labels[:8], labels[8:20]]):
            np.testing.assert_array_equal(result.labels, expected)
            assert result.accuracy is not None
            manual = float((result.predictions == expected).mean())
            assert result.accuracy == manual

    def test_run_many_partial_labels(self, small_engine, request_data):
        images, labels = request_data
        session = small_engine.session(seed=0)
        results = session.run_many(
            [images[:8], images[8:16]], labels=[labels[:8], None]
        )
        assert results[0].accuracy is not None
        assert results[1].accuracy is None

    def test_run_many_misaligned_labels_rejected(self, small_engine, request_data):
        images, labels = request_data
        with pytest.raises(ValueError):
            small_engine.session().run_many([images[:8]], labels=[labels[:8], None])

    def test_stateless_backends_cached(self):
        for name in ("ideal", "stochastic", "stochastic-fused-batched"):
            assert get_backend(name) is get_backend(name), name
        assert get_backend("exact") is get_backend("ideal")

    def test_stateful_backend_not_cached(self):
        a = get_backend("stochastic-parallel")
        b = get_backend("stochastic-parallel")
        assert a is not b
        a.close()
        b.close()

    def test_aliases_listed(self):
        aliases = backend_aliases()
        assert aliases["exact"] == "ideal"
        assert aliases["auto"] == "stochastic"

    def test_cli_backends_lists_aliases(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "stochastic-parallel" in out
        assert "exact" in out and "alias of 'ideal'" in out
        assert "auto" in out and "alias of 'stochastic'" in out
