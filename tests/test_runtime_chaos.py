"""Chaos tier: injected failures against real process pools.

Every scenario here kills, delays, or poisons something mid-flight and
then asserts the two fault-tolerance invariants: the request still
completes (or fails with a classified, actionable error on *its own*
future), and recovered output is **bit-identical** to an unfaulted run
of the same seed — retry, pool rebuild, transport flip, and serial
fallback are never allowed to perturb randomness.

Run via ``make check-chaos`` (bounded workers + a hard timeout).
"""

import threading
import time

import numpy as np
import pytest

from repro.api import Engine, ServingDaemon, Session
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import CompiledNetwork, HeadStage, LinearStage, SignStage
from repro.runtime.faults import FaultPlan, FaultSpec, fault_injection, install_fault_plan
from repro.runtime.recovery import PoisonedPayload, QueueFull
from repro.runtime.scheduler import ShardParallelScheduler
from repro.utils.rng import new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture(scope="module")
def small_engine():
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def request_data():
    rng = new_rng(99)
    return rng.standard_normal((48, 64))


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    install_fault_plan(None)


class TestWorkerCrashRecovery:
    def test_worker_kill_mid_wave_recovers_bit_identical(
        self, small_engine, request_data
    ):
        """Acceptance: a pool worker dies mid-wave; the request completes
        through pool rebuild + retry, bit-identical to an unfaulted run."""
        reference = small_engine.run(request_data, seed=7)
        plan = FaultPlan(
            [FaultSpec(site="worker.shard", action="kill", match={"shard": 1})]
        )
        with ShardParallelScheduler(workers=2) as scheduler:
            session = small_engine.session(seed=7, scheduler=scheduler)
            with fault_injection(plan):
                result = session.run(request_data)
            session.close()
        np.testing.assert_array_equal(result.logits, reference.logits)
        assert result.recovery is not None
        assert result.recovery["recovered"] is True
        assert result.recovery["attempts"] >= 2
        assert any(
            entry["action"] == "rebuild-pool"
            for entry in result.recovery["retries"]
        )
        assert result.recovery["fallback"] is None, (
            "the rebuilt pool must be healthy — recovery converges via "
            "retry, not the serial rescue"
        )
        summary = result.summary()
        assert summary["recovered"] is True
        assert summary["recovery_attempts"] >= 2

    def test_worker_kill_through_daemon_counts_in_stats(
        self, small_engine, request_data
    ):
        """The same crash through the serving daemon: DaemonStats reports
        the retry and the recovery, and results stay bit-identical."""
        requests = [request_data[:16], request_data[16:48]]
        reference = Session(small_engine, seed=7).run_many(requests)
        plan = FaultPlan(
            [FaultSpec(site="worker.shard", action="kill", match={"shard": 1})]
        )
        scheduler = ShardParallelScheduler(workers=2)
        try:
            with fault_injection(plan):
                with ServingDaemon(
                    small_engine,
                    seed=7,
                    scheduler=scheduler,
                    coalesce_window_s=0.2,
                ) as daemon:
                    futures = [daemon.submit(r) for r in requests]
                    results = [f.result(timeout=120) for f in futures]
                    stats = daemon.stats
        finally:
            scheduler.close()
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.logits, want.logits)
        assert stats.retries >= 1
        assert stats.recoveries >= 1
        assert stats.recovery is not None and stats.recovery["recovered"]
        assert any(
            r.recovery is not None and r.recovery["recovered"] for r in results
        )


class TestTransportRecovery:
    def test_worker_attach_failure_flips_to_pickle(
        self, small_engine, request_data
    ):
        """The Nth-attach outage: a worker's shared-memory attach raises
        TransportUnavailable; the scheduler retries over pickle."""
        reference = small_engine.run(request_data, seed=11)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="transport.attach",
                    action="raise",
                    error="TransportUnavailable",
                )
            ]
        )
        with ShardParallelScheduler(workers=2) as scheduler:
            assert scheduler.transport == "shm"
            session = small_engine.session(seed=11, scheduler=scheduler)
            with fault_injection(plan):
                result = session.run(request_data)
            session.close()
            assert scheduler.transport == "pickle"
        np.testing.assert_array_equal(result.logits, reference.logits)
        assert result.recovery["recovered"] is True
        assert any(
            entry["action"] == "pickle-transport"
            for entry in result.recovery["retries"]
        )

    def test_publish_failure_degrades_within_the_same_attempt(
        self, small_engine, request_data
    ):
        """A parent-side publish outage never costs a retry: the wave
        continues over pickle immediately."""
        reference = small_engine.run(request_data, seed=13)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="transport.publish",
                    action="raise",
                    error="TransportUnavailable",
                )
            ]
        )
        with ShardParallelScheduler(workers=2) as scheduler:
            session = small_engine.session(seed=13, scheduler=scheduler)
            with fault_injection(plan):
                result = session.run(request_data)
            session.close()
            assert scheduler.transport == "pickle"
        np.testing.assert_array_equal(result.logits, reference.logits)
        assert result.recovery is None or result.recovery["attempts"] == 1


class TestDeadlines:
    def test_blown_deadline_rescued_serially_bit_identical(
        self, small_engine, request_data
    ):
        """Stragglers past the deadline are abandoned; the serial
        re-execution of the same plan is bit-identical."""
        reference = small_engine.run(request_data, seed=7)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="worker.shard",
                    action="delay",
                    delay_s=1.5,
                    times=None,
                )
            ]
        )
        with ShardParallelScheduler(workers=2) as scheduler:
            session = small_engine.session(
                seed=7, scheduler=scheduler, deadline_s=0.4
            )
            with fault_injection(plan):
                start = time.monotonic()
                result = session.run(request_data)
                elapsed = time.monotonic() - start
            session.close()
        np.testing.assert_array_equal(result.logits, reference.logits)
        assert result.recovery["fallback"] == "serial"
        assert result.recovery["recovered"] is True
        assert elapsed < 10.0, "deadline recovery must not wait out stragglers"


class TestDaemonFaultHandling:
    def test_poisoned_request_is_isolated(self, small_engine, request_data):
        """A poisoned payload fails its own future with the fatal error
        untouched; its neighbour's logits are bit-identical to the same
        two-request sequence run unfaulted."""
        requests = [request_data[:16], request_data[16:24]]
        reference = Session(small_engine, seed=31).run_many(requests)
        plan = FaultPlan(
            [FaultSpec(site="daemon.request", action="poison", match={"rows": 16})]
        )
        with fault_injection(plan):
            with ServingDaemon(
                small_engine, seed=31, coalesce_window_s=0.2
            ) as daemon:
                poisoned = daemon.submit(requests[0])
                healthy = daemon.submit(requests[1])
                with pytest.raises(PoisonedPayload):
                    poisoned.result(timeout=60)
                neighbour = healthy.result(timeout=60)
                stats = daemon.stats
        np.testing.assert_array_equal(neighbour.logits, reference[1].logits)
        assert stats.failed == 1 and stats.completed == 1

    def test_admission_reject_sheds_load_at_the_door(
        self, small_engine, request_data
    ):
        plan = FaultPlan(
            [FaultSpec(site="daemon.consumer", action="delay", delay_s=0.6)]
        )
        with fault_injection(plan):
            with ServingDaemon(
                small_engine,
                seed=1,
                max_queue=1,
                admission="reject",
                coalesce_window_s=0.0,
            ) as daemon:
                accepted = daemon.submit(request_data[:8])
                with pytest.raises(QueueFull):
                    daemon.submit(request_data[8:16])
                assert accepted.result(timeout=60).logits.shape == (8, 10)
                assert daemon.stats.rejected == 1

    def test_admission_block_times_out_with_queuefull(
        self, small_engine, request_data
    ):
        plan = FaultPlan(
            [FaultSpec(site="daemon.consumer", action="delay", delay_s=0.6)]
        )
        with fault_injection(plan):
            with ServingDaemon(
                small_engine,
                seed=1,
                max_queue=1,
                admission="block",
                coalesce_window_s=0.0,
            ) as daemon:
                accepted = daemon.submit(request_data[:8])
                with pytest.raises(QueueFull):
                    daemon.submit(request_data[8:16], timeout=0.05)
                assert accepted.result(timeout=60) is not None
                assert daemon.stats.rejected == 1

    def test_supervisor_restarts_a_crashed_consumer(
        self, small_engine, request_data
    ):
        """A consumer crash outside any wave restarts the loop; requests
        queued across the crash are still served, bit-identically."""
        reference = Session(small_engine, seed=5).run_many([request_data[:16]])
        plan = FaultPlan(
            [FaultSpec(site="daemon.consumer", action="raise", error="RuntimeError")]
        )
        with fault_injection(plan):
            with ServingDaemon(
                small_engine, seed=5, coalesce_window_s=0.0
            ) as daemon:
                result = daemon.submit(request_data[:16]).result(timeout=60)
                stats = daemon.stats
        np.testing.assert_array_equal(result.logits, reference[0].logits)
        assert stats.consumer_restarts == 1
        assert stats.completed == 1

    def test_keyboard_interrupt_strands_no_caller(
        self, small_engine, request_data, monkeypatch
    ):
        """KeyboardInterrupt mid-wave stops the daemon: the in-flight
        request's future raises it, queued requests are failed — every
        future a caller holds resolves."""
        monkeypatch.setattr(threading, "excepthook", lambda args: None)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="daemon.consumer", action="delay", delay_s=0.2
                ),
                FaultSpec(
                    site="daemon.request",
                    action="raise",
                    error="KeyboardInterrupt",
                ),
            ]
        )
        with fault_injection(plan):
            daemon = ServingDaemon(
                small_engine,
                seed=2,
                coalesce_window_s=0.0,
                max_wave_images=8,
            )
            try:
                interrupted = daemon.submit(request_data[:8])
                queued = daemon.submit(request_data[8:16])
                with pytest.raises(KeyboardInterrupt):
                    interrupted.result(timeout=60)
                with pytest.raises(RuntimeError, match="consumer aborted"):
                    queued.result(timeout=60)
            finally:
                daemon.close(timeout=10)

    def test_close_without_drain_never_strands_inflight_futures(
        self, small_engine, request_data
    ):
        """close(drain=False) during an in-flight wave: every submitted
        future resolves — with a result or a classified error, never a
        hang."""
        plan = FaultPlan(
            [FaultSpec(site="daemon.request", action="delay", delay_s=0.3)]
        )
        with fault_injection(plan):
            daemon = ServingDaemon(
                small_engine, seed=2, coalesce_window_s=0.0, max_wave_images=8
            )
            inflight = daemon.submit(request_data[:8])
            time.sleep(0.1)  # consumer is now inside the delayed wave
            queued = daemon.submit(request_data[8:16])
            daemon.close(drain=False, timeout=30)
        outcomes = []
        for future in (inflight, queued):
            try:
                outcomes.append(future.result(timeout=10))
            except RuntimeError as exc:
                assert "closed" in str(exc)
                outcomes.append(None)
        assert len(outcomes) == 2
        assert outcomes[0] is not None, "the in-flight wave always finishes"


class TestNetworkChaos:
    def test_disconnect_and_worker_kill_under_network_load(
        self, small_engine, request_data
    ):
        """The network tier's worst afternoon: one client ships a
        request and vanishes, a pool worker is killed mid-wave, and a
        surviving client keeps going. The daemon recovers via pool
        rebuild, the orphaned response is dropped (not crashed on), and
        the survivor's logits stay bit-identical to a serial Session."""
        from repro.net import NetworkClient, ServerThread

        reference = Session(small_engine, seed=123).run(request_data[:16])
        plan = FaultPlan(
            [FaultSpec(site="worker.shard", action="kill", match={"shard": 1})]
        )
        scheduler = ShardParallelScheduler(workers=2)
        try:
            with fault_injection(plan):
                daemon = ServingDaemon(
                    small_engine,
                    seed=9,
                    scheduler=scheduler,
                    coalesce_window_s=0.05,
                )
                try:
                    thread = ServerThread(daemon)
                    host, port = thread.start()
                    try:
                        victim = NetworkClient(host, port)
                        victim.send(request_data[16:32], seed=124)
                        # leave before the wave resolves (the kill +
                        # pool rebuild guarantee it has not yet)
                        victim.close()
                        with NetworkClient(host, port, timeout=120.0) as client:
                            result = client.infer(request_data[:16], seed=123)
                        deadline = time.monotonic() + 30.0
                        while (
                            thread.server.stats.disconnected_inflight < 1
                            and time.monotonic() < deadline
                        ):
                            time.sleep(0.05)
                        server_stats = thread.server.stats
                    finally:
                        thread.close()
                    stats = daemon.stats
                finally:
                    daemon.close(drain=True)
        finally:
            scheduler.close()
        np.testing.assert_array_equal(result.logits, reference.logits)
        assert stats.retries >= 1, "the worker kill must actually have fired"
        assert stats.recoveries >= 1
        assert server_stats.disconnected_inflight == 1
        assert stats.failed == 0, "recovery, not failure, serves the survivors"


class TestRouterChaos:
    def test_replica_outage_mid_burst_fails_over_then_readmits(
        self, small_engine, request_data
    ):
        """One replica of a 2-replica router starts failing every
        request (matched by daemon name): the router evicts it and
        transparently re-submits — every caller future resolves
        (failed == 0) with logits bit-identical to a serial Session.
        While the fault is live, the seeded health probe keeps failing,
        so the replica stays evicted; once the outage clears, the probe
        proves recovery and re-admits it, and sticky traffic lands on
        it again, still bit-identical."""
        from repro.net.router import DaemonRouter

        images = request_data[:16]
        reference = {
            seed: Session(small_engine, seed=seed).run(images)
            for seed in range(8)
        }
        plan = FaultPlan(
            [
                FaultSpec(
                    site="daemon.request",
                    action="raise",
                    error="OSError",
                    times=None,  # every hit while installed
                    match={"daemon": "replica-1"},
                )
            ]
        )
        router = DaemonRouter.build(
            [small_engine, small_engine],
            seed=0,
            coalesce_window_s=0.0,
            probe_interval_s=0.05,
            probe_images=images[:2],
        )
        try:
            with fault_injection(plan):
                futures = {
                    seed: router.try_submit(images, seed=seed)
                    for seed in range(8)
                }
                for seed, future in futures.items():
                    got = future.result(timeout=120)  # nobody fails
                    np.testing.assert_array_equal(
                        got.logits,
                        reference[seed].logits,
                        err_msg=f"seed {seed} under replica outage",
                    )
                stats = router.stats
                assert stats.failovers >= 1, "the outage must have fired"
                assert stats.evictions >= 1
                assert stats.per_replica["replica-1"]["admitted"] is False, (
                    "while the fault is live the probe cannot prove "
                    "recovery, so the replica stays out of the rotation"
                )
            # Outage over (plan uninstalled): the probe re-admits.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if router.stats.per_replica["replica-1"]["admitted"]:
                    break
                time.sleep(0.05)
            stats = router.stats
            assert stats.per_replica["replica-1"]["admitted"] is True
            assert stats.readmissions >= 1
            assert stats.probes >= 1, "re-admission must be probe-proven"
            # Sticky traffic returns to the recovered replica,
            # bit-identical as ever.
            sticky = 9  # 9 % 2 == 1 -> replica-1
            want = Session(small_engine, seed=sticky).run(images)
            got = router.try_submit(images, seed=sticky).result(timeout=120)
            np.testing.assert_array_equal(got.logits, want.logits)
            assert router.stats.per_replica["replica-1"]["dispatched"] >= 1
        finally:
            router.close()


class TestNoOrphanedWorkers:
    def test_keyboard_interrupt_leaves_no_orphaned_pool_processes(
        self, small_engine, request_data
    ):
        """Regression: interrupting a wave and closing the scheduler must
        terminate every pool worker — no orphans surviving the session."""
        scheduler = ShardParallelScheduler(workers=2)
        try:
            session = small_engine.session(seed=3, scheduler=scheduler)
            session.run(request_data[:16])  # builds the pool
            workers = list(scheduler._pool._processes.values())
            assert workers and all(p.is_alive() for p in workers)
            plan = FaultPlan(
                [
                    FaultSpec(
                        site="scheduler.wave",
                        action="raise",
                        error="KeyboardInterrupt",
                    )
                ]
            )
            with fault_injection(plan):
                with pytest.raises(KeyboardInterrupt):
                    session.run(request_data[:16])
            session.close()
        finally:
            scheduler.close()
        for process in workers:
            process.join(timeout=30)
        assert all(not p.is_alive() for p in workers)
