"""Tests for the binary comparator and the buffer-chain memory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.comparator import (
    BinaryComparator,
    build_comparator_netlist,
    comparator_jj_count,
)
from repro.circuits.memory import BufferChainMemory


class TestBinaryComparator:
    def test_threshold_behaviour(self):
        cmp = BinaryComparator(reference=8.0)
        np.testing.assert_array_equal(
            cmp.compare(np.array([7, 8, 9])), [-1.0, 1.0, 1.0]
        )

    def test_vectorized_shapes(self):
        cmp = BinaryComparator(5.0)
        out = cmp(np.zeros((3, 4)))
        assert out.shape == (3, 4)
        assert np.all(out == -1.0)

    def test_exhaustive_4bit_netlist(self):
        """Gate-level GE comparator must match >= for all 256 pairs."""
        netlist = build_comparator_netlist(4)
        for v in range(16):
            for r in range(16):
                inputs = {f"v_{i}": (v >> i) & 1 for i in range(4)}
                inputs.update({f"r_{i}": (r >> i) & 1 for i in range(4)})
                out = netlist.evaluate(inputs)[netlist.outputs[0]]
                assert out == int(v >= r), (v, r)

    def test_jj_count_scales_with_width(self):
        assert comparator_jj_count(8) > comparator_jj_count(4)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_comparator_netlist(0)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_comparator_netlist_8bit_property(v, r):
    netlist = build_comparator_netlist(8)
    inputs = {f"v_{i}": (v >> i) & 1 for i in range(8)}
    inputs.update({f"r_{i}": (r >> i) & 1 for i in range(8)})
    assert netlist.evaluate(inputs)[netlist.outputs[0]] == int(v >= r)


class TestBufferChainMemory:
    def test_fifo_semantics(self):
        mem = BufferChainMemory(width=4, depth_cycles=2)
        w1 = np.array([1.0, -1.0, 1.0, -1.0])
        w2 = np.array([-1.0, -1.0, 1.0, 1.0])
        mem.push(w1)
        mem.push(w2)
        out = mem.push(np.ones(4))
        np.testing.assert_array_equal(out, w1)  # first in, first out

    def test_peek_without_shift(self):
        mem = BufferChainMemory(width=2, depth_cycles=3)
        word = np.array([1.0, -1.0])
        mem.push(word)
        np.testing.assert_array_equal(mem.peek(0), word)
        np.testing.assert_array_equal(mem.peek(0), word)  # unchanged

    def test_push_validation(self):
        mem = BufferChainMemory(width=3)
        with pytest.raises(ValueError):
            mem.push(np.array([1.0, -1.0]))  # wrong width
        with pytest.raises(ValueError):
            mem.push(np.array([1.0, 0.5, -1.0]))  # not bipolar

    def test_peek_bounds(self):
        mem = BufferChainMemory(width=2, depth_cycles=2)
        with pytest.raises(IndexError):
            mem.peek(2)

    def test_jj_count_decomposition(self):
        mem = BufferChainMemory(width=8, depth_cycles=4, phases=4)
        # chains: 8 bits * 2 JJ * 4 phases * 4 cycles; interface 8 * 8
        assert mem.chain_jj_count() == 8 * 2 * 4 * 4
        assert mem.jj_count() == 8 * 2 * 4 * 4 + 8 * 8

    def test_three_phase_reduction_is_twenty_percent(self):
        """Paper Sec. 4.4: 3-phase memory clock saves 20% of memory JJs."""
        mem = BufferChainMemory(width=64)
        assert mem.jj_reduction_three_phase() == pytest.approx(0.20)

    def test_three_phase_reduction_independent_of_width(self):
        for width in (4, 16, 256):
            assert BufferChainMemory(width).jj_reduction_three_phase() == pytest.approx(
                0.20
            )

    def test_energy_per_cycle_positive(self):
        assert BufferChainMemory(4).energy_per_cycle_j() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferChainMemory(width=0)
        with pytest.raises(ValueError):
            BufferChainMemory(width=4, depth_cycles=0)
        with pytest.raises(ValueError):
            BufferChainMemory(width=4, phases=2)
