"""Tests for exact/approximate parallel counters: functional + gate level."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.apc import (
    ApproximateParallelCounter,
    ExactPopcount,
    apc_jj_count,
    apc_output_width,
    build_apc_netlist,
)


class TestExactPopcount:
    def test_counts_zero_one_bits(self):
        assert ExactPopcount().count(np.array([1, 0, 1, 1])) == 3

    def test_counts_bipolar_bits(self):
        assert ExactPopcount().count(np.array([1.0, -1.0, 1.0])) == 2

    def test_axis_argument(self):
        bits = np.array([[1, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(ExactPopcount().count(bits, axis=1), [2, 1])
        np.testing.assert_array_equal(ExactPopcount().count(bits, axis=0), [1, 1, 1])


class TestApproximateParallelCounter:
    def test_zero_layers_is_exact(self, rng):
        apc = ApproximateParallelCounter(0)
        bits = rng.integers(0, 2, 50)
        assert apc.count(bits) == bits.sum()

    def test_approximate_never_overcounts(self, rng):
        apc = ApproximateParallelCounter(1)
        for _ in range(50):
            bits = rng.integers(0, 2, 16)
            assert apc.count(bits) <= bits.sum()

    def test_approximate_saturates_at_half(self):
        apc = ApproximateParallelCounter(1)
        assert apc.count(np.ones(16, dtype=int)) == 8

    def test_exact_when_no_coincident_ones(self):
        """Alternating bits: every OR pair has at most one 1."""
        apc = ApproximateParallelCounter(1)
        bits = np.array([1, 0] * 8)
        assert apc.count(bits) == 8

    def test_max_undercount(self):
        apc = ApproximateParallelCounter(1)
        assert apc.max_undercount(16) == 8
        assert ApproximateParallelCounter(0).max_undercount(16) == 0

    def test_odd_input_count_passthrough(self):
        apc = ApproximateParallelCounter(1)
        bits = np.ones(5, dtype=int)
        # pairs (1,1),(1,1) -> 2 lines, trailing 1 passes -> count 3
        assert apc.count(bits) == 3

    def test_multilayer_compression(self):
        apc = ApproximateParallelCounter(2)
        assert apc.count(np.ones(16, dtype=int)) == 4

    def test_negative_layers_rejected(self):
        with pytest.raises(ValueError):
            ApproximateParallelCounter(-1)

    def test_axis_handling_multidim(self, rng):
        apc = ApproximateParallelCounter(0)
        bits = rng.integers(0, 2, (3, 4, 5))
        np.testing.assert_array_equal(apc.count(bits, axis=0), bits.sum(axis=0))


class TestApcNetlist:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 16])
    def test_exact_netlist_counts_correctly(self, rng, n):
        netlist = build_apc_netlist(n, approximate_layers=0)
        for _ in range(10):
            bits = rng.integers(0, 2, n)
            values = netlist.evaluate(
                {f"in_{i}": int(b) for i, b in enumerate(bits)}
            )
            count = sum(values[o] << k for k, o in enumerate(netlist.outputs))
            assert count == bits.sum()

    def test_approximate_netlist_matches_functional(self, rng):
        apc = ApproximateParallelCounter(1)
        netlist = build_apc_netlist(12, approximate_layers=1)
        for _ in range(20):
            bits = rng.integers(0, 2, 12)
            values = netlist.evaluate(
                {f"in_{i}": int(b) for i, b in enumerate(bits)}
            )
            count = sum(values[o] << k for k, o in enumerate(netlist.outputs))
            assert count == apc.count(bits)

    def test_output_width(self):
        assert apc_output_width(1) == 1
        assert apc_output_width(7) == 3
        assert apc_output_width(8) == 4
        assert apc_output_width(16) == 5

    def test_output_width_covers_counts(self):
        netlist = build_apc_netlist(9, approximate_layers=0)
        assert len(netlist.outputs) >= apc_output_width(9)

    def test_approximate_netlist_is_cheaper(self):
        assert apc_jj_count(16, 1) < apc_jj_count(16, 0)

    def test_jj_count_grows_with_inputs(self):
        counts = [apc_jj_count(n, 0) for n in (4, 8, 16, 32)]
        assert all(a < b for a, b in zip(counts, counts[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_apc_netlist(0)
        with pytest.raises(ValueError):
            apc_output_width(0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=24))
def test_exact_apc_equals_popcount(bits):
    """Property: approximate_layers=0 is exactly popcount, any length."""
    apc = ApproximateParallelCounter(0)
    assert apc.count(np.array(bits)) == sum(bits)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=24))
def test_approximate_apc_bounds(bits):
    """Property: OR-compression is sandwiched between ceil(n_ones/2) and n_ones."""
    apc = ApproximateParallelCounter(1)
    ones = sum(bits)
    count = int(apc.count(np.array(bits)))
    assert count <= ones
    assert count >= (ones + 1) // 2
