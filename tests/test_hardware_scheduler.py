"""Tests for the bank-constrained schedule."""

import pytest

from repro.hardware.config import HardwareConfig
from repro.hardware.cost import LayerWorkload
from repro.hardware.scheduler import BankScheduler, ScheduleResult


def workloads():
    return [
        LayerWorkload(144, 48, positions=1),  # 2 row tiles at Cs=72
        LayerWorkload(48, 24, positions=1),
        LayerWorkload(24, 10, positions=1),
    ]


def conv_workloads():
    return [
        LayerWorkload(108, 16, positions=256),
        LayerWorkload(144, 32, positions=64),
        LayerWorkload(128, 10, positions=1),
    ]


class TestBankScheduler:
    def make(self, n_banks=4, cs=72, window=16):
        cfg = HardwareConfig(crossbar_size=cs, window_bits=window)
        return BankScheduler(cfg, n_banks)

    def test_minimum_banks_is_widest_row_tiling(self):
        sched = self.make(cs=72)
        assert sched.minimum_banks(workloads()) == 2

    def test_too_few_banks_rejected(self):
        sched = self.make(n_banks=1, cs=72)
        with pytest.raises(ValueError):
            sched.schedule(workloads())

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            self.make().schedule([])

    def test_invalid_constructor_args(self):
        cfg = HardwareConfig()
        with pytest.raises(ValueError):
            BankScheduler(cfg, n_banks=0)
        with pytest.raises(ValueError):
            BankScheduler(cfg, n_banks=2, reload_cycles_per_tile=-1)

    def test_cycle_accounting_consistency(self):
        result = self.make().schedule(workloads())
        assert (
            result.cycles_per_image
            == result.compute_cycles + result.reload_cycles
        )
        assert result.reload_cycles > 0  # weights must be loaded

    def test_more_banks_never_slower(self):
        few = self.make(n_banks=2).schedule(conv_workloads())
        many = self.make(n_banks=8).schedule(conv_workloads())
        assert many.cycles_per_image <= few.cycles_per_image

    def test_more_banks_lower_utilization_at_fixed_work(self):
        """Past the parallelism the network offers, extra banks idle."""
        enough = self.make(n_banks=2).schedule(workloads())
        excess = self.make(n_banks=64).schedule(workloads())
        assert excess.utilization < enough.utilization

    def test_window_scales_compute_cycles(self):
        short = self.make(window=4).schedule(conv_workloads())
        long = self.make(window=16).schedule(conv_workloads())
        assert long.compute_cycles == 4 * short.compute_cycles

    def test_reload_overhead_fraction(self):
        result = self.make().schedule(workloads())
        assert 0.0 <= result.reload_overhead < 1.0

    def test_weights_stationary_amortizes_reloads(self):
        """Spatial positions reuse resident weights: conv layers pay one
        reload per column-tile wave, not per position."""
        sched = self.make(n_banks=2, cs=72)
        conv = sched.schedule([LayerWorkload(108, 16, positions=256)])
        fc_like = sched.schedule([LayerWorkload(108, 16, positions=1)])
        assert conv.reload_cycles == fc_like.reload_cycles

    def test_throughput_matches_cycles(self):
        sched = self.make()
        result = sched.schedule(workloads())
        assert result.throughput_images_per_s == pytest.approx(
            sched.config.clock_rate_hz / result.cycles_per_image
        )

    def test_sweep_skips_illegal_counts(self):
        sched = self.make(n_banks=2, cs=72)
        results = sched.sweep_bank_counts(workloads(), [1, 2, 4, 8])
        assert [r.n_banks for r in results] == [2, 4, 8]

    def test_single_block_matches_paper_regime(self):
        """With the minimum pool, throughput lands orders below the
        all-parallel cost model — the time-multiplexed regime the
        paper's 2 img/ms prototype row implies."""
        cfg = HardwareConfig(crossbar_size=72, window_bits=16)
        sched = BankScheduler(cfg, n_banks=2)
        result = sched.schedule(conv_workloads())
        assert result.throughput_images_per_s < cfg.clock_rate_hz / (
            256 * 16
        )  # slower than one pass per position at full parallelism
        assert result.utilization > 0.5  # but the banks stay busy
