"""Tests for the randomized BNN cells and the training recipe."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core.layers import (
    BinaryConv2d,
    BinaryLinear,
    RandomizedBinaryConv2d,
    RandomizedBinaryLinear,
)
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.loaders import DataLoader
from repro.data.synthetic import make_mnist_like
from repro.hardware.config import HardwareConfig
from repro.models.mlp import Mlp


def pm_ones(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


class TestRandomizedLinearCell:
    def test_output_is_binary(self, rng):
        cell = RandomizedBinaryLinear(20, 10, seed=0)
        cell.train()
        out = cell(Tensor(pm_ones(rng, (8, 20))))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_eval_deterministic_by_default(self, rng):
        cell = RandomizedBinaryLinear(20, 10, seed=0)
        cell.train()
        cell(Tensor(pm_ones(rng, (64, 20))))  # populate BN stats
        cell.eval()
        x = Tensor(pm_ones(rng, (8, 20)))
        a = cell(x).data
        b = cell(x).data
        np.testing.assert_array_equal(a, b)

    def test_sample_in_eval_enables_stochasticity(self, rng):
        cell = RandomizedBinaryLinear(
            20, 10, hardware=HardwareConfig(crossbar_size=72, window_bits=1), seed=0
        )
        cell.train()
        cell(Tensor(rng.normal(size=(64, 20))))
        cell.eval()
        cell.sample_in_eval = True
        x = Tensor(pm_ones(rng, (32, 20)))
        outs = [cell(x).data for _ in range(5)]
        assert any(not np.array_equal(outs[0], o) for o in outs[1:])

    def test_gradients_reach_weights_and_alpha(self, rng):
        cell = RandomizedBinaryLinear(12, 6, seed=0)
        cell.train()
        out = cell(Tensor(pm_ones(rng, (16, 12))))
        (out * out).sum().backward()
        assert cell.weight.grad is not None
        assert cell.alpha.grad is not None
        assert cell.bn.weight.grad is not None

    def test_binarize_output_false_returns_real(self, rng):
        cell = RandomizedBinaryLinear(10, 5, binarize_output=False, seed=0)
        cell.train()
        out = cell(Tensor(pm_ones(rng, (8, 10))))
        assert not set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_noise_domain_validation(self):
        with pytest.raises(ValueError):
            RandomizedBinaryLinear(4, 2, noise_domain="bogus")

    def test_value_domain_mode_runs(self, rng):
        cell = RandomizedBinaryLinear(16, 8, noise_domain="value", seed=0)
        cell.train()
        out = cell(Tensor(pm_ones(rng, (8, 16))))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_fan_in(self):
        assert RandomizedBinaryLinear(30, 5).fan_in == 30


class TestRandomizedConvCell:
    def test_shapes_and_alphabet(self, rng):
        cell = RandomizedBinaryConv2d(3, 8, kernel_size=3, padding=1, seed=0)
        cell.train()
        out = cell(Tensor(pm_ones(rng, (2, 3, 6, 6))))
        assert out.shape == (2, 8, 6, 6)
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_stride(self, rng):
        cell = RandomizedBinaryConv2d(1, 4, kernel_size=2, stride=2, seed=0)
        cell.train()
        out = cell(Tensor(pm_ones(rng, (1, 1, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_fan_in(self):
        assert RandomizedBinaryConv2d(3, 8, kernel_size=3).fan_in == 27

    def test_deterministic_baseline_cells(self, rng):
        conv = BinaryConv2d(2, 4, kernel_size=3, padding=1, seed=0)
        conv.train()
        out = conv(Tensor(pm_ones(rng, (2, 2, 5, 5))))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_binary_linear_head_real_logits(self, rng):
        head = BinaryLinear(16, 10, seed=0)
        head.train()
        out = head(Tensor(pm_ones(rng, (4, 16))))
        assert out.shape == (4, 10)


class TestTrainingConfig:
    def test_warmup_auto_shrinks(self):
        cfg = TrainingConfig(epochs=4, warmup_epochs=10)
        assert cfg.warmup_epochs < 4

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)


class TestTrainer:
    @pytest.fixture(scope="class")
    def tiny_data(self):
        data = make_mnist_like(n_samples=400, seed=0)
        return data.split(0.75, seed=1)

    def test_loss_decreases(self, tiny_data):
        train, _ = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=6, warmup_epochs=1))
        history = trainer.fit(DataLoader(train, 64, seed=2))
        assert history[-1].train_loss < history[0].train_loss

    def test_history_records_tau_annealing(self, tiny_data):
        train, _ = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=5, warmup_epochs=1))
        history = trainer.fit(DataLoader(train, 64, seed=2))
        taus = [h.tau for h in history]
        assert taus[0] == pytest.approx(0.85, abs=0.02)
        assert taus[-1] > taus[0]

    def test_recu_disabled_leaves_tau_none(self, tiny_data):
        train, _ = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=2, use_recu=False))
        history = trainer.fit(DataLoader(train, 64, seed=2))
        assert all(h.tau is None for h in history)

    def test_evaluate_returns_fraction(self, tiny_data):
        train, test = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=2))
        trainer.fit(DataLoader(train, 64, seed=2))
        acc = trainer.evaluate(DataLoader(test, 128, shuffle=False))
        assert 0.0 <= acc <= 1.0

    def test_best_test_accuracy_none_without_test_loader(self, tiny_data):
        train, _ = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1))
        trainer.fit(DataLoader(train, 64, seed=2))
        assert trainer.best_test_accuracy is None

    def test_learning_rate_schedule_applied(self, tiny_data):
        train, _ = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(
            model, TrainingConfig(epochs=6, warmup_epochs=2, learning_rate=0.1)
        )
        history = trainer.fit(DataLoader(train, 64, seed=2))
        assert history[-1].learning_rate < 0.1

    def test_single_epoch_uses_constant_lr(self, tiny_data):
        train, _ = tiny_data
        model = Mlp(in_features=144, hidden=(32,), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1, learning_rate=0.05))
        history = trainer.fit(DataLoader(train, 64, seed=2))
        assert history[0].learning_rate == pytest.approx(0.05)

    def test_randomized_model_learns_above_chance(self, tiny_data):
        train, test = tiny_data
        model = Mlp(in_features=144, hidden=(48,), seed=0, stochastic=True)
        trainer = Trainer(model, TrainingConfig(epochs=10, warmup_epochs=2))
        trainer.fit(DataLoader(train, 64, seed=2))
        acc = trainer.evaluate(DataLoader(test, 128, shuffle=False))
        assert acc > 0.3  # 10 classes -> chance is 0.1
