"""Shared fixtures: seeded RNGs, datasets, and a session-scoped trained
model — plus the in-process run-timeout watchdog the runtime test tier
falls back to when GNU ``timeout`` is unavailable (minimal CI
containers): set ``REPRO_TEST_TIMEOUT`` to a ceiling in seconds and a
daemon timer aborts the whole pytest process with exit code 124 (the
same code GNU timeout uses) once it elapses, so a pool/queue deadlock
still fails the build fast."""

from __future__ import annotations

import os
import sys
import threading

import numpy as np
import pytest

from repro.core.trainer import Trainer, TrainingConfig
from repro.data.loaders import DataLoader
from repro.data.synthetic import make_mnist_like
from repro.hardware.config import HardwareConfig
from repro.models.mlp import Mlp
from repro.runtime.env import env_float


def pytest_configure(config):
    try:
        seconds = env_float("REPRO_TEST_TIMEOUT")
    except ValueError as exc:
        raise pytest.UsageError(str(exc))
    if seconds is None:
        return
    if seconds <= 0:
        raise pytest.UsageError(
            f"REPRO_TEST_TIMEOUT must be > 0, got {seconds}"
        )

    def _abort() -> None:  # pragma: no cover - only fires on deadlock
        sys.stderr.write(
            f"\nREPRO_TEST_TIMEOUT: run exceeded the {seconds:.0f}s ceiling; "
            f"aborting (suspected pool/queue deadlock)\n"
        )
        sys.stderr.flush()
        os._exit(124)  # match GNU timeout's exit code

    timer = threading.Timer(seconds, _abort)
    timer.daemon = True
    timer.start()
    config._repro_timeout_timer = timer


def pytest_unconfigure(config):
    timer = getattr(config, "_repro_timeout_timer", None)
    if timer is not None:
        timer.cancel()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def default_hardware() -> HardwareConfig:
    return HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=16)


@pytest.fixture(scope="session")
def mnist_split():
    dataset = make_mnist_like(n_samples=1200, seed=0)
    return dataset.split(0.8, seed=1)


@pytest.fixture(scope="session")
def trained_mlp_session(default_hardware, mnist_split):
    """A small randomized MLP trained once per test session.

    Returns ``(model, train, test, software_accuracy)``; tests must not
    mutate the model (use state_dict round trips if needed).
    """
    train, test = mnist_split
    model = Mlp(
        in_features=int(np.prod(train.image_shape)),
        hidden=(48, 24),
        hardware=default_hardware,
        seed=0,
    )
    trainer = Trainer(model, TrainingConfig(epochs=12, warmup_epochs=2))
    trainer.fit(DataLoader(train, 64, seed=2))
    accuracy = trainer.evaluate(DataLoader(test, 256, shuffle=False, seed=0))
    model.eval()
    return model, train, test, accuracy

