"""Tests for SGD and the LR schedules (warmup + cosine, the paper recipe)."""

import math

import numpy as np
import pytest

from repro.autograd import SGD, ConstantLR, CosineAnnealingLR, Tensor, WarmupCosineLR
from repro.autograd.module import Parameter


def make_param(value=1.0):
    return Parameter(np.array([value]))


class TestSGD:
    def test_plain_step(self):
        p = make_param(1.0)
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_skips_params_without_grad(self):
        p = make_param(1.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v = 1, p = -1
        p.grad = np.array([1.0])
        opt.step()  # v = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = make_param(2.0)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_zero_grad(self):
        p = make_param()
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_converges_on_quadratic(self):
        p = make_param(5.0)
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(float(p.data[0])) < 1e-3


class TestCosineAnnealing:
    def test_decays_to_eta_min(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_halfway_is_midpoint(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        values = []
        for _ in range(20):
            sched.step()
            values.append(opt.lr)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_clamps_past_t_max(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=5)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(SGD([make_param()], lr=1.0), t_max=0)


class TestWarmupCosine:
    def test_warmup_ramps_up(self):
        opt = SGD([make_param()], lr=1.0)
        sched = WarmupCosineLR(opt, warmup_steps=5, total_steps=20)
        assert opt.lr < 1.0  # starts scaled down
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a <= b + 1e-12 for a, b in zip(lrs, lrs[1:])) or lrs[-1] >= lrs[0]

    def test_peak_then_decay(self):
        opt = SGD([make_param()], lr=1.0)
        sched = WarmupCosineLR(opt, warmup_steps=3, total_steps=13)
        for _ in range(13):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            WarmupCosineLR(SGD([make_param()], lr=1.0), warmup_steps=5, total_steps=5)

    def test_zero_warmup_is_pure_cosine(self):
        opt = SGD([make_param()], lr=1.0)
        sched = WarmupCosineLR(opt, warmup_steps=0, total_steps=10)
        sched.step()
        expected = 0.5 * (1 + math.cos(math.pi * 0.1))
        assert opt.lr == pytest.approx(expected)


class TestConstantLR:
    def test_noop(self):
        opt = SGD([make_param()], lr=0.3)
        sched = ConstantLR(opt)
        sched.step()
        assert sched.lr == 0.3
