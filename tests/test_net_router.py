"""DaemonRouter: seed-sticky routing, spillover past full queues,
classified failover, health eviction / probe re-admission, and the
determinism contract — every routed response bit-identical to a serial
``Session`` run with the same seed, regardless of replica count."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.api import Engine, ServingDaemon, Session
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import CompiledNetwork, HeadStage, LinearStage, SignStage
from repro.net.router import PROBE_SEED, DaemonRouter, RouterStats
from repro.runtime.recovery import PoisonedPayload, QueueFull
from repro.utils.rng import new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


def _engine(seed=0):
    rng = new_rng(seed)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def small_engine():
    return _engine()


@pytest.fixture(scope="module")
def images():
    return new_rng(99).standard_normal((16, 64))


class StubDaemon:
    """Duck-typed replica for routing-policy tests: scripted to accept,
    refuse (QueueFull), or resolve its future with a chosen failure —
    no timing, no threads."""

    def __init__(self, name, *, full=False, fail_with=None, alive=True):
        self.name = name
        self.full = full  # try_submit raises QueueFull
        self.fail_with = fail_with  # accepted future fails with this
        self.alive = alive  # reported by .healthy
        self.accepted = []  # (seed, rows) per accepted request
        self.closed = False

    def try_submit(self, images, labels=None, *, seed=None, progress=None):
        if self.closed:
            raise RuntimeError(f"{self.name} is closed")
        if self.full:
            raise QueueFull(f"{self.name} queue full")
        self.accepted.append((seed, int(np.asarray(images).shape[0])))
        future = Future()
        if self.fail_with is not None:
            future.set_exception(self.fail_with)
        else:
            future.set_result({"seed": seed, "replica": self.name})
        return future

    submit = try_submit

    @property
    def healthy(self):
        return self.alive and not self.closed

    @property
    def queue_depth(self):
        return 0

    @property
    def in_flight(self):
        return 0

    def drain(self, timeout=None):
        return True

    def close(self, *, drain=True, timeout=None):
        self.closed = True


def _stub_router(stubs, **kwargs):
    kwargs.setdefault("probe_interval_s", 0.01)
    return DaemonRouter(stubs, **kwargs)


class TestConstruction:
    def test_needs_at_least_one_replica(self):
        with pytest.raises(ValueError, match="at least one"):
            DaemonRouter([])

    def test_duplicate_replica_names_rejected(self):
        stubs = [StubDaemon("replica"), StubDaemon("replica")]
        with pytest.raises(ValueError, match="unique"):
            DaemonRouter(stubs)

    def test_build_names_replicas_and_owns_them(self, small_engine):
        router = DaemonRouter.build(
            [small_engine, small_engine], seed=0, coalesce_window_s=0.0
        )
        try:
            assert [h.name for h in router.replicas] == ["replica-0", "replica-1"]
        finally:
            router.close()
        assert all(not h.daemon.healthy for h in router.replicas)

    def test_submit_after_close_refused(self):
        router = _stub_router([StubDaemon("a")])
        router.close()
        with pytest.raises(RuntimeError, match="closed"):
            router.try_submit(np.zeros((1, 4)))


class TestRoutingPolicy:
    def test_sticky_by_seed_modulo_replicas(self, images):
        stubs = [StubDaemon(f"r{i}") for i in range(3)]
        with _stub_router(stubs) as router:
            for seed in (0, 1, 2, 3, 4, 5):
                router.try_submit(images, seed=seed).result(timeout=5)
        assert [len(s.accepted) for s in stubs] == [2, 2, 2]
        for i, stub in enumerate(stubs):
            assert all(seed % 3 == i for seed, _ in stub.accepted)

    def test_seedless_on_seeded_router_draws_explicit_child_seeds(self, images):
        stubs = [StubDaemon(f"r{i}") for i in range(2)]
        with _stub_router(stubs, seed=7) as router:
            for _ in range(6):
                router.try_submit(images).result(timeout=5)
        seeds = [seed for s in stubs for seed, _ in s.accepted]
        assert all(isinstance(seed, int) for seed in seeds), (
            "seedless requests on a seeded router must travel with an "
            "explicit child seed (replayable on any replica)"
        )
        # The draw is from the router generator in arrival order.
        rng = new_rng(7)
        want = [int(rng.integers(0, 2**63 - 1)) for _ in range(6)]
        assert sorted(seeds) == sorted(want)

    def test_seedless_on_unseeded_router_round_robins(self, images):
        stubs = [StubDaemon(f"r{i}") for i in range(2)]
        with _stub_router(stubs) as router:
            for _ in range(4):
                router.try_submit(images).result(timeout=5)
        assert [len(s.accepted) for s in stubs] == [2, 2]
        assert all(seed is None for s in stubs for seed, _ in s.accepted)

    def test_spillover_past_full_replica(self, images):
        stubs = [StubDaemon("r0", full=True), StubDaemon("r1")]
        with _stub_router(stubs) as router:
            router.try_submit(images, seed=0).result(timeout=5)  # sticky to r0
            stats = router.stats
        assert len(stubs[1].accepted) == 1
        assert stats.spillovers == 1
        assert stats.evictions == 0, "queue-full is load, not a health signal"
        assert stats.per_replica["r0"]["admitted"] is True

    def test_all_replicas_full_raises_queue_full_synchronously(self, images):
        stubs = [StubDaemon("r0", full=True), StubDaemon("r1", full=True)]
        with _stub_router(stubs) as router:
            with pytest.raises(QueueFull, match="capacity"):
                router.try_submit(images, seed=0)
            assert router.stats.exhausted == 1


class TestFailover:
    def test_retryable_failure_fails_over_and_evicts(self, images):
        stubs = [StubDaemon("r0", fail_with=OSError("shm gone")), StubDaemon("r1")]
        with _stub_router(stubs) as router:
            result = router.try_submit(images, seed=0).result(timeout=5)
            stats = router.stats
        assert result["replica"] == "r1"
        assert result["seed"] == 0, "failover must re-submit the same seed"
        assert stats.failovers == 1
        assert stats.evictions == 1
        assert stats.per_replica["r0"]["admitted"] is False
        assert stats.per_replica["r0"]["failures"] == 1

    def test_fatal_failure_propagates_without_eviction(self, images):
        stubs = [
            StubDaemon("r0", fail_with=PoisonedPayload("bad payload")),
            StubDaemon("r1"),
        ]
        with _stub_router(stubs) as router:
            future = router.try_submit(images, seed=0)
            with pytest.raises(PoisonedPayload):
                future.result(timeout=5)
            stats = router.stats
        assert len(stubs[1].accepted) == 0, "fatal failures must not fail over"
        assert stats.evictions == 0, "fatal failures do not indict the replica"
        assert stats.per_replica["r0"]["admitted"] is True

    def test_cluster_wide_retryable_outage_surfaces_original_error(self, images):
        stubs = [
            StubDaemon("r0", fail_with=OSError("down 0")),
            StubDaemon("r1", fail_with=OSError("down 1")),
        ]
        with _stub_router(stubs) as router:
            future = router.try_submit(images, seed=0)
            with pytest.raises(OSError):
                future.result(timeout=5)
            assert router.stats.evictions == 2

    def test_evicted_replica_readmitted_by_probe(self, images):
        failing = StubDaemon("r0", fail_with=OSError("transient"))
        stubs = [failing, StubDaemon("r1")]
        with _stub_router(stubs, probe_interval_s=0.01) as router:
            router.try_submit(images, seed=0).result(timeout=5)
            assert router.stats.per_replica["r0"]["admitted"] is False
            failing.fail_with = None  # replica recovers
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if router.stats.per_replica["r0"]["admitted"]:
                    break
                time.sleep(0.01)
            stats = router.stats
        assert stats.per_replica["r0"]["admitted"] is True
        assert stats.readmissions == 1

    def test_probe_requests_use_probe_seed(self, images):
        failing = StubDaemon("r0", fail_with=OSError("transient"))
        stubs = [failing, StubDaemon("r1")]
        probe_images = np.zeros((2, 64))
        with _stub_router(
            stubs, probe_interval_s=0.01, probe_images=probe_images
        ) as router:
            router.try_submit(images, seed=0).result(timeout=5)
            failing.fail_with = None
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if router.stats.per_replica["r0"]["admitted"]:
                    break
                time.sleep(0.01)
            stats = router.stats
        assert stats.per_replica["r0"]["admitted"] is True
        assert stats.probes >= 1
        probe_submissions = [
            (seed, rows) for seed, rows in failing.accepted[1:]
        ]
        assert (PROBE_SEED, 2) in probe_submissions, (
            "the probe must run the probe batch with the fixed PROBE_SEED"
        )

    def test_unhealthy_replica_not_readmitted(self, images):
        failing = StubDaemon("r0", fail_with=OSError("dead"), alive=False)
        stubs = [failing, StubDaemon("r1")]
        with _stub_router(stubs, probe_interval_s=0.01) as router:
            router.try_submit(images, seed=0).result(timeout=5)
            time.sleep(0.1)  # several probe sweeps
            stats = router.stats
        assert stats.per_replica["r0"]["admitted"] is False
        assert stats.readmissions == 0


class TestDaemonSurface:
    """The router must be a drop-in for one ServingDaemon under
    NetworkServer: same methods, same gauges, same close semantics."""

    def test_gauges_and_health(self):
        stubs = [StubDaemon("r0"), StubDaemon("r1")]
        router = _stub_router(stubs)
        try:
            assert router.healthy is True
            assert router.queue_depth == 0
            assert router.in_flight == 0
            assert router.drain(timeout=1.0) is True
        finally:
            router.close()
        assert router.healthy is False
        assert all(s.closed for s in stubs)

    def test_stats_snapshot_is_detached(self, images):
        stubs = [StubDaemon("r0")]
        with _stub_router(stubs) as router:
            router.try_submit(images, seed=0).result(timeout=5)
            snap = router.stats
            assert isinstance(snap, RouterStats)
            snap.routed = 10_000
            assert router.stats.routed == 1

    def test_aggregate_daemon_stats_sums_replicas(self, small_engine, images):
        with DaemonRouter.build(
            [small_engine, small_engine], seed=3, coalesce_window_s=0.0
        ) as router:
            futures = [router.try_submit(images, seed=s) for s in range(4)]
            for f in futures:
                f.result(timeout=30)
            total = router.aggregate_daemon_stats()
            per = [h.daemon.stats for h in router.replicas]
        assert total.completed == sum(s.completed for s in per) == 4
        assert total.submitted == sum(s.submitted for s in per)
        assert total.waves == sum(s.waves for s in per)


class TestBitIdentity:
    """Acceptance: responses are bit-identical to a serial Session with
    the same seed — independent of replica count or placement."""

    def test_seeded_requests_match_serial_session_any_replica_count(
        self, small_engine, images
    ):
        reference = {
            seed: Session(small_engine, seed=seed).run(images) for seed in range(5)
        }
        for n_replicas in (1, 3):
            with DaemonRouter.build(
                [small_engine] * n_replicas, seed=0, coalesce_window_s=0.0
            ) as router:
                futures = {
                    seed: router.try_submit(images, seed=seed) for seed in range(5)
                }
                for seed, future in futures.items():
                    got = future.result(timeout=30)
                    np.testing.assert_array_equal(
                        got.logits,
                        reference[seed].logits,
                        err_msg=f"seed {seed} with {n_replicas} replicas",
                    )

    def test_replicas_from_fresh_engines_are_bit_identical(self, images):
        """Engines compiled independently from the same trained model
        produce identical logits (fixed compile seed) — the property
        the CLI's multi-replica mode rests on."""
        a, b = _engine(), _engine()
        want = Session(a, seed=11).run(images)
        with DaemonRouter.build([a, b], seed=0, coalesce_window_s=0.0) as router:
            sticky_b = [s for s in range(20) if s % 2 == 1][:3]
            for seed in [11] + sticky_b:
                got = router.try_submit(images, seed=11).result(timeout=30)
                np.testing.assert_array_equal(got.logits, want.logits)

    def test_failover_is_bit_identical(self, small_engine, images):
        """A request that fails over to another replica returns exactly
        the bits the original replica would have produced."""
        want = Session(small_engine, seed=6).run(images)
        real = ServingDaemon(
            small_engine, name="real", coalesce_window_s=0.0
        )
        broken = StubDaemon("broken", fail_with=OSError("shm gone"))
        with DaemonRouter(
            [broken, real], probe_interval_s=0.01
        ) as router:
            got = router.try_submit(images, seed=6).result(timeout=30)
        np.testing.assert_array_equal(got.logits, want.logits)

    def test_concurrent_seeded_submissions_all_match(self, small_engine, images):
        reference = {
            seed: Session(small_engine, seed=seed).run(images)
            for seed in range(8)
        }
        with DaemonRouter.build(
            [small_engine, small_engine], seed=0, coalesce_window_s=0.005
        ) as router:
            futures = {}
            barrier = threading.Barrier(4 + 1)

            def worker(worker_seeds):
                barrier.wait()
                for seed in worker_seeds:
                    futures[seed] = router.try_submit(images, seed=seed)

            threads = [
                threading.Thread(target=worker, args=([s, s + 4],))
                for s in range(4)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            for t in threads:
                t.join()
            for seed, future in futures.items():
                got = future.result(timeout=30)
                np.testing.assert_array_equal(
                    got.logits, reference[seed].logits, err_msg=f"seed {seed}"
                )
