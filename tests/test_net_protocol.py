"""Wire protocol: round-trip fidelity, incremental decoding, and the
strict-validation guarantee — a malformed byte stream always raises
:class:`ProtocolError` (or waits for more bytes), never crashes, never
allocates from a hostile length prefix, and never yields a frame that
lies about its contents."""

import json
import struct

import numpy as np
import pytest

from repro.net import protocol
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR,
    HEADER,
    MAGIC,
    PING,
    REQUEST,
    VERSION,
    ControlFrame,
    ErrorFrame,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
    decode_payload,
    encode_error,
    encode_ping,
    encode_pong,
    encode_request,
    encode_response,
    parse_header,
)


def decode_one(data: bytes):
    """Decode exactly one frame from a complete byte string."""
    frames = FrameDecoder().feed(data)
    assert len(frames) == 1
    return frames[0]


class TestRoundTrip:
    def test_request_round_trip(self):
        rng = np.random.default_rng(0)
        images = rng.standard_normal((5, 64))
        labels = rng.integers(0, 10, size=5)
        frame = decode_one(encode_request(42, images, labels, seed=7))
        assert isinstance(frame, RequestFrame)
        assert frame.request_id == 42
        assert frame.seed == 7
        np.testing.assert_array_equal(frame.images, images)
        np.testing.assert_array_equal(frame.labels, labels)

    def test_request_without_labels_or_seed(self):
        images = np.zeros((2, 8), dtype=np.float32)
        frame = decode_one(encode_request(1, images))
        assert frame.labels is None
        assert frame.seed is None
        assert frame.images.dtype == np.float32

    def test_response_round_trip(self):
        logits = np.random.default_rng(1).standard_normal((3, 10))
        summary = {"backend": "stochastic", "wall_time_s": 0.25, "accuracy": 0.5}
        frame = decode_one(encode_response(9, logits, summary))
        assert isinstance(frame, ResponseFrame)
        assert frame.request_id == 9
        assert frame.summary == summary
        np.testing.assert_array_equal(frame.logits, logits)

    def test_error_round_trip(self):
        frame = decode_one(encode_error(3, protocol.ERR_QUEUE_FULL, "busy"))
        assert isinstance(frame, ErrorFrame)
        assert frame.code == "queue-full"
        assert frame.message == "busy"
        assert frame.retryable is True
        fatal = decode_one(encode_error(4, protocol.ERR_BAD_REQUEST, "nope"))
        assert fatal.retryable is False

    def test_ping_pong_round_trip(self):
        ping = decode_one(encode_ping(11))
        pong = decode_one(encode_pong(12))
        assert isinstance(ping, ControlFrame) and ping.kind == protocol.PING
        assert isinstance(pong, ControlFrame) and pong.kind == protocol.PONG
        assert (ping.request_id, pong.request_id) == (11, 12)

    @pytest.mark.parametrize(
        "dtype", ["float64", "float32", "int64", "int32", "uint8", "bool"]
    )
    def test_whitelisted_dtypes_survive(self, dtype):
        rng = np.random.default_rng(2)
        images = (rng.standard_normal((3, 4)) * 10).astype(dtype)
        frame = decode_one(encode_request(1, images))
        assert frame.images.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(frame.images, images)

    def test_property_random_shapes_round_trip_chunked(self):
        """Property sweep: random shapes and chunk sizes; arrays come
        back bit-identical no matter how the stream is fragmented."""
        rng = np.random.default_rng(3)
        for case in range(20):
            shape = tuple(int(rng.integers(1, 9)) for _ in range(int(rng.integers(1, 4))))
            images = rng.standard_normal(shape)
            seed = int(rng.integers(0, 2**62))
            data = encode_request(case, images, seed=seed)
            chunk = int(rng.integers(1, 37))
            decoder = FrameDecoder()
            frames = []
            for offset in range(0, len(data), chunk):
                frames.extend(decoder.feed(data[offset : offset + chunk]))
            assert len(frames) == 1
            assert frames[0].seed == seed
            np.testing.assert_array_equal(frames[0].images, images)

    def test_back_to_back_frames_in_one_feed(self):
        images = np.ones((2, 4))
        data = encode_request(1, images) + encode_ping(2) + encode_error(3, "internal", "x")
        frames = FrameDecoder().feed(data)
        assert [type(f) for f in frames] == [RequestFrame, ControlFrame, ErrorFrame]

    def test_empty_batch_round_trips(self):
        frame = decode_one(encode_request(1, np.zeros((0, 8))))
        assert frame.images.shape == (0, 8)


class TestHeaderValidation:
    def test_bad_magic_rejected(self):
        header = HEADER.pack(b"XX", VERSION, REQUEST, 0, 1)
        with pytest.raises(ProtocolError, match="magic"):
            parse_header(header)

    def test_unsupported_version_rejected(self):
        header = HEADER.pack(MAGIC, VERSION + 1, REQUEST, 0, 1)
        with pytest.raises(ProtocolError, match="version"):
            parse_header(header)

    def test_unknown_kind_rejected(self):
        header = HEADER.pack(MAGIC, VERSION, 99, 0, 1)
        with pytest.raises(ProtocolError, match="kind"):
            parse_header(header)

    def test_oversize_length_prefix_rejected_before_allocation(self):
        """A hostile 4 GiB length prefix dies on the 16 header bytes
        alone — the decoder never buffers toward it."""
        header = HEADER.pack(MAGIC, VERSION, REQUEST, 2**32 - 1, 1)
        with pytest.raises(FrameTooLarge):
            parse_header(header)
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed(header)
        assert len(decoder._buffer) == 0, "nothing may be buffered for the frame"

    def test_control_frame_with_payload_rejected(self):
        header = HEADER.pack(MAGIC, VERSION, PING, 4, 1)
        with pytest.raises(ProtocolError, match="empty payload"):
            parse_header(header)

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError, match="short header"):
            parse_header(b"RB\x01")


def _payload_frame(kind: int, payload: bytes, request_id: int = 1) -> bytes:
    return HEADER.pack(MAGIC, VERSION, kind, len(payload), request_id) + payload


def _meta_payload(meta: dict, blob: bytes = b"") -> bytes:
    meta_bytes = json.dumps(meta).encode()
    return struct.pack(">I", len(meta_bytes)) + meta_bytes + blob


class TestMalformedPayloads:
    def test_truncated_frame_is_incomplete_not_an_error(self):
        data = encode_request(1, np.ones((4, 8)))
        decoder = FrameDecoder()
        assert decoder.feed(data[:-5]) == []
        frames = decoder.feed(data[-5:])
        assert len(frames) == 1  # completes once the tail arrives

    def test_garbage_payload_rejected(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(_payload_frame(REQUEST, b"\xde\xad\xbe\xef" * 4))

    def test_meta_length_beyond_payload_rejected(self):
        payload = struct.pack(">I", 10_000) + b"{}"
        with pytest.raises(ProtocolError, match="meta length"):
            FrameDecoder().feed(_payload_frame(REQUEST, payload))

    def test_non_json_meta_rejected(self):
        payload = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"
        with pytest.raises(ProtocolError, match="JSON"):
            FrameDecoder().feed(_payload_frame(REQUEST, payload))

    def test_non_object_meta_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(
                _payload_frame(REQUEST, struct.pack(">I", 2) + b"[]")
            )

    def test_unlisted_dtype_rejected(self):
        meta = {"arrays": [{"name": "images", "dtype": "object", "shape": [1]}]}
        with pytest.raises(ProtocolError, match="whitelist"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 8))

    def test_negative_shape_rejected(self):
        meta = {"arrays": [{"name": "images", "dtype": "float64", "shape": [-1, 8]}]}
        with pytest.raises(ProtocolError, match="shape"):
            decode_payload(REQUEST, 1, _meta_payload(meta))

    def test_shape_exceeding_payload_rejected(self):
        meta = {"arrays": [{"name": "images", "dtype": "float64", "shape": [1000, 1000]}]}
        with pytest.raises(ProtocolError, match="declares"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 64))

    def test_trailing_garbage_rejected(self):
        meta = {"arrays": [{"name": "images", "dtype": "float64", "shape": [1, 1]}]}
        with pytest.raises(ProtocolError, match="trailing garbage"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 8 + b"xx"))

    def test_duplicate_array_name_rejected(self):
        spec = {"name": "images", "dtype": "float64", "shape": [1]}
        meta = {"arrays": [spec, dict(spec)]}
        with pytest.raises(ProtocolError, match="duplicate"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 16))

    def test_request_missing_images_rejected(self):
        with pytest.raises(ProtocolError, match="images"):
            decode_payload(REQUEST, 1, _meta_payload({"arrays": []}))

    def test_request_with_unknown_array_rejected(self):
        meta = {
            "arrays": [
                {"name": "images", "dtype": "float64", "shape": [1]},
                {"name": "weights", "dtype": "float64", "shape": [1]},
            ]
        }
        with pytest.raises(ProtocolError, match="unknown arrays"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 16))

    @pytest.mark.parametrize("seed", ["7", -1, 2**63, 1.5])
    def test_bad_request_seed_rejected(self, seed):
        meta = {
            "seed": seed,
            "arrays": [{"name": "images", "dtype": "float64", "shape": [1]}],
        }
        with pytest.raises(ProtocolError, match="seed"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 8))

    def test_error_frame_with_array_bytes_rejected(self):
        meta = {"code": "internal", "message": "x"}
        with pytest.raises(ProtocolError, match="array bytes"):
            decode_payload(ERROR, 1, _meta_payload(meta, b"\x00"))

    def test_error_frame_without_code_rejected(self):
        with pytest.raises(ProtocolError, match="code"):
            decode_payload(ERROR, 1, _meta_payload({"message": "x"}))

    def test_response_without_logits_rejected(self):
        with pytest.raises(ProtocolError, match="logits"):
            decode_payload(protocol.RESPONSE, 1, _meta_payload({"arrays": []}))

    def test_poisoned_decoder_refuses_more_bytes(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(_payload_frame(REQUEST, b"junkjunk"))
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(encode_ping(1))

    def test_fuzz_random_bytes_never_crash(self):
        """Deterministic garbage fuzz: every outcome is either 'need
        more bytes' or ProtocolError — no other exception, no frame."""
        rng = np.random.default_rng(1234)
        for _ in range(200):
            blob = rng.integers(0, 256, size=int(rng.integers(1, 200))).astype(
                np.uint8
            ).tobytes()
            decoder = FrameDecoder(max_frame_bytes=4096)
            try:
                frames = decoder.feed(blob)
            except ProtocolError:
                continue
            assert frames == []

    def test_fuzz_bitflipped_valid_frames(self):
        """Flip one byte of a valid frame at every offset: decode either
        raises ProtocolError or yields a frame (when the flip lands in
        array bytes, which are opaque) — never any other failure."""
        images = np.arange(12, dtype=np.float64).reshape(3, 4)
        data = bytearray(encode_request(5, images, seed=3))
        for offset in range(len(data)):
            corrupt = bytearray(data)
            corrupt[offset] ^= 0xFF
            decoder = FrameDecoder(max_frame_bytes=4096)
            try:
                decoder.feed(bytes(corrupt))
            except ProtocolError:
                pass


class TestStreamingKinds:
    def test_stream_flag_round_trips(self):
        images = np.ones((2, 4))
        frame = decode_one(encode_request(1, images, stream=True))
        assert frame.stream is True
        assert decode_one(encode_request(1, images)).stream is False

    def test_stream_false_is_byte_identical_to_legacy_encoding(self):
        """``stream=False`` must not add the key at all, so pre-streaming
        peers see exactly the bytes they always saw."""
        images = np.arange(8, dtype=np.float64).reshape(2, 4)
        assert encode_request(7, images, seed=3) == encode_request(
            7, images, seed=3, stream=False
        )

    def test_non_boolean_stream_flag_rejected(self):
        meta = {
            "stream": 1,
            "arrays": [{"name": "images", "dtype": "float64", "shape": [1]}],
        }
        with pytest.raises(ProtocolError, match="stream"):
            decode_payload(REQUEST, 1, _meta_payload(meta, b"\x00" * 8))

    def test_progress_round_trip(self):
        frame = decode_one(
            protocol.encode_progress(5, "executing", {"wave_requests": 3})
        )
        assert isinstance(frame, protocol.ProgressFrame)
        assert frame.request_id == 5
        assert frame.stage == "executing"
        assert frame.detail == {"wave_requests": 3}
        bare = decode_one(protocol.encode_progress(6, "queued"))
        assert bare.detail == {}

    def test_progress_with_array_bytes_rejected(self):
        meta = {"stage": "queued", "detail": {}}
        with pytest.raises(ProtocolError, match="array bytes"):
            decode_payload(protocol.PROGRESS, 1, _meta_payload(meta, b"\x00"))

    def test_progress_without_stage_rejected(self):
        with pytest.raises(ProtocolError, match="stage"):
            decode_payload(protocol.PROGRESS, 1, _meta_payload({"detail": {}}))

    def test_partial_round_trip(self):
        logits = np.random.default_rng(4).standard_normal((3, 10))
        frame = decode_one(
            protocol.encode_partial(9, logits, offset=32, seq=1)
        )
        assert isinstance(frame, protocol.PartialFrame)
        assert (frame.offset, frame.seq, frame.last) == (32, 1, False)
        assert frame.summary == {}
        np.testing.assert_array_equal(frame.logits, logits)

    def test_last_partial_carries_summary(self):
        logits = np.zeros((1, 10))
        frame = decode_one(
            protocol.encode_partial(
                9, logits, offset=64, seq=2, last=True, summary={"n_images": 65}
            )
        )
        assert frame.last is True
        assert frame.summary == {"n_images": 65}

    def test_negative_partial_coordinates_refused_at_encode_time(self):
        logits = np.zeros((1, 10))
        with pytest.raises(ProtocolError, match="offset/seq"):
            protocol.encode_partial(1, logits, offset=-1, seq=0)
        with pytest.raises(ProtocolError, match="offset/seq"):
            protocol.encode_partial(1, logits, offset=0, seq=-1)

    def test_partial_without_coordinates_rejected(self):
        meta = {"arrays": [{"name": "logits", "dtype": "float64", "shape": [1, 1]}]}
        with pytest.raises(ProtocolError, match="offset"):
            decode_payload(protocol.PARTIAL, 1, _meta_payload(meta, b"\x00" * 8))

    def test_partial_with_wrong_array_rejected(self):
        meta = {
            "offset": 0,
            "seq": 0,
            "arrays": [{"name": "images", "dtype": "float64", "shape": [1, 1]}],
        }
        with pytest.raises(ProtocolError, match="logits"):
            decode_payload(protocol.PARTIAL, 1, _meta_payload(meta, b"\x00" * 8))

    def test_streaming_kinds_are_registered(self):
        assert protocol.PROGRESS in protocol._KINDS
        assert protocol.PARTIAL in protocol._KINDS
        assert len(set(protocol._KINDS)) == len(protocol._KINDS)


class TestLimits:
    def test_default_ceiling_is_sane(self):
        assert 2**20 <= DEFAULT_MAX_FRAME_BYTES <= 2**31

    def test_unencodable_dtype_refused_at_encode_time(self):
        with pytest.raises(ProtocolError, match="wire-encodable"):
            encode_request(1, np.array([object()], dtype=object))

    def test_non_contiguous_arrays_are_encoded_correctly(self):
        images = np.arange(64, dtype=np.float64).reshape(8, 8)[::2, ::2]
        frame = decode_one(encode_request(1, images))
        np.testing.assert_array_equal(frame.images, images)
