"""Docs-sync tier: the human-readable contracts in ``docs/`` are
parsed and asserted against the source constants they document, so the
wire-protocol tables and the architecture layer table cannot drift
from the code. Runs in the ``docs-sync`` CI job alongside
``lint-static --check-env-docs``."""

import re
from pathlib import Path

import pytest

from repro.analysis.rules.layering import LAYERS
from repro.net import protocol

DOCS = Path(__file__).resolve().parent.parent / "docs"


def _table_rows(text: str, header_fragment: str):
    """Parse the first markdown table whose header contains
    ``header_fragment``; yields each row as a list of cell strings."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.lstrip().startswith("|") and header_fragment in line:
            rows = []
            for row_line in lines[i + 2 :]:  # skip the |---| separator
                if not row_line.lstrip().startswith("|"):
                    break
                cells = [c.strip() for c in row_line.strip().strip("|").split("|")]
                rows.append(cells)
            assert rows, f"table {header_fragment!r} has no rows"
            return rows
    raise AssertionError(f"no markdown table with header {header_fragment!r}")


def _code(cell: str) -> str:
    """The backticked token in a table cell."""
    match = re.search(r"`([^`]+)`", cell)
    assert match, f"cell {cell!r} has no backticked token"
    return match.group(1)


@pytest.fixture(scope="module")
def protocol_doc():
    return (DOCS / "PROTOCOL.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def architecture_doc():
    return (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")


class TestProtocolDoc:
    def test_documented_version_matches(self, protocol_doc):
        match = re.search(
            r"current protocol version is `(\d+)`", protocol_doc
        )
        assert match, "PROTOCOL.md must state the current protocol version"
        assert int(match.group(1)) == protocol.VERSION

    def test_kind_table_matches_constants(self, protocol_doc):
        rows = _table_rows(protocol_doc, "Kind | Value")
        documented = {_code(row[0]): int(row[1]) for row in rows}
        want = {
            "REQUEST": protocol.REQUEST,
            "RESPONSE": protocol.RESPONSE,
            "ERROR": protocol.ERROR,
            "PING": protocol.PING,
            "PONG": protocol.PONG,
            "PROGRESS": protocol.PROGRESS,
            "PARTIAL": protocol.PARTIAL,
        }
        assert documented == want
        assert set(documented.values()) == set(protocol._KINDS), (
            "every kind byte the decoder accepts must be documented"
        )

    def test_error_code_table_matches_constants(self, protocol_doc):
        rows = _table_rows(protocol_doc, "Code | Retryable")
        documented = {_code(row[0]): row[1].lower() == "yes" for row in rows}
        want_codes = {
            protocol.ERR_QUEUE_FULL,
            protocol.ERR_RATE_LIMITED,
            protocol.ERR_QUOTA,
            protocol.ERR_BAD_REQUEST,
            protocol.ERR_PROTOCOL,
            protocol.ERR_CLOSING,
            protocol.ERR_INTERNAL,
        }
        assert set(documented) == want_codes, (
            "every ERR_* constant must be documented (and nothing else)"
        )
        for code, retryable in documented.items():
            assert retryable == (code in protocol.RETRYABLE_CODES), (
                f"documented retryability of {code!r} contradicts "
                f"protocol.RETRYABLE_CODES"
            )

    def test_header_layout_matches_struct(self, protocol_doc):
        rows = _table_rows(protocol_doc, "Offset | Size")
        sizes = [int(row[1]) for row in rows]
        assert sum(sizes) == protocol.HEADER.size
        offsets = [int(row[0]) for row in rows]
        running = 0
        for offset, size in zip(offsets, sizes):
            assert offset == running, "documented offsets must be contiguous"
            running += size
        assert f"`{protocol.HEADER.format}`" in protocol_doc or (
            protocol.HEADER.format in protocol_doc
        ), "PROTOCOL.md must state the header struct format"

    def test_frame_ceiling_matches(self, protocol_doc):
        assert f"`{protocol.DEFAULT_MAX_FRAME_BYTES}`" in protocol_doc, (
            "PROTOCOL.md must state DEFAULT_MAX_FRAME_BYTES"
        )

    def test_dtype_whitelist_matches(self, protocol_doc):
        match = re.search(
            r"Wire dtype whitelist: (.+?)\.\n", protocol_doc, re.DOTALL
        )
        assert match, "PROTOCOL.md must list the wire dtype whitelist"
        documented = set(re.findall(r"`([^`]+)`", match.group(1)))
        assert documented == set(protocol.WIRE_DTYPES)

    def test_streaming_env_knob_is_referenced(self, protocol_doc):
        assert "REPRO_STREAM_CHUNK_ROWS" in protocol_doc


class TestArchitectureDoc:
    def test_layer_table_matches_lint_rule(self, architecture_doc):
        rows = _table_rows(architecture_doc, "Rank | Module prefixes")
        documented = {}
        for row in rows:
            rank = int(row[0])
            for prefix in re.findall(r"`([^`]+)`", row[1]):
                documented[prefix] = rank
        want = dict(LAYERS)
        assert documented == want, (
            "ARCHITECTURE.md layer table must equal "
            "repro.analysis.rules.layering.LAYERS"
        )

    def test_diagram_mentions_every_rank(self, architecture_doc):
        for rank in sorted({rank for _, rank in LAYERS}):
            assert re.search(
                rf"rank {rank}\b", architecture_doc
            ), f"layer diagram must show rank {rank}"


class TestDocsIndex:
    def test_index_links_every_doc(self):
        index = (DOCS / "README.md").read_text(encoding="utf-8")
        for name in ("ARCHITECTURE.md", "PROTOCOL.md", "KERNELS.md", "ENVIRONMENT.md"):
            assert (DOCS / name).exists(), f"docs/{name} is missing"
            assert f"]({name})" in index, f"docs/README.md must link {name}"

    def test_repo_readme_links_docs(self):
        readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
        for target in ("docs/PROTOCOL.md", "docs/ARCHITECTURE.md"):
            assert target in readme, f"README.md must reference {target}"
