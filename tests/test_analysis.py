"""Tests for the static contract checker (``repro.analysis``).

Three layers of coverage:

- per-rule fixture projects (a tiny synthetic tree in ``tmp_path`` with
  one good and one bad file per rule) prove each rule fires on the
  violation and stays quiet on the idiomatic form;
- the repo self-check runs the full rule set over this repository and
  asserts it comes back clean modulo the committed baseline — the same
  gate ``make lint-static`` and CI enforce;
- baseline and CLI round trips (add -> suppress -> expire/prune).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    available_rules,
    run_analysis,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Minimal stand-ins for the two declared catalogs, so fixture projects
#: can exercise fault-site / env-discipline without the real modules.
FAULTS_STUB = """
KNOWN_SITES = (
    "good.site",
)
"""

ENV_STUB = """
ENV_CATALOG = {
    "REPRO_DECLARED": None,
}
"""


def write_tree(root: Path, files: dict) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def findings_of(tmp_path, files, rules, paths=("src", "tests")):
    write_tree(tmp_path, files)
    report = run_analysis(tmp_path, paths=paths, rules=rules)
    return report.new


# ----------------------------------------------------------------------
# Per-rule fixtures
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_flags_unseeded_and_wall_clock(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/bad.py": """
                import time
                import numpy as np

                def f():
                    a = np.random.rand(3)
                    g = np.random.default_rng()
                    t = time.time()
                    return a, g, t
                """
            },
            ["determinism"],
        )
        messages = "\n".join(f.message for f in new)
        assert len(new) == 3
        assert "np.random.rand" in messages
        assert "argless np.random.default_rng" in messages
        assert "wall-clock read time.time" in messages

    def test_seeded_and_monotonic_are_fine(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/good.py": """
                import time
                import numpy as np

                def f(seed):
                    g = np.random.default_rng(seed)
                    start = time.monotonic()
                    wall = time.perf_counter()
                    return g, start, wall
                """
            },
            ["determinism"],
        )
        assert new == []

    def test_stdlib_random_needs_the_import(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/uses_random.py": """
                import random

                def f():
                    return random.random()
                """,
                # `random` here is a local object, not the stdlib module.
                "src/repro/runtime/no_import.py": """
                def f(random):
                    return random.random()
                """,
            },
            ["determinism"],
        )
        assert len(new) == 1
        assert new[0].path.endswith("uses_random.py")

    def test_out_of_scope_module_ignored(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/experiments/free.py": """
                import numpy as np

                def f():
                    return np.random.rand(3)
                """
            },
            ["determinism"],
        )
        assert new == []

    def test_sc_kernel_package_is_in_scope(self, tmp_path):
        # The vendored sampling kernels (repro.sc.binomial) sit squarely
        # in the bit-identity contract: a sneaky unseeded draw there
        # must be a finding, not a blind spot.
        new = findings_of(
            tmp_path,
            {
                "src/repro/sc/kernel.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().random(4)
                """
            },
            ["determinism"],
        )
        assert len(new) == 1
        assert "argless np.random.default_rng" in new[0].message

    def test_real_kernel_module_is_scanned(self):
        # Guard against a future SCOPE edit silently dropping the
        # kernel package from the determinism sweep.
        from repro.analysis.core import Project
        from repro.analysis.rules.determinism import SCOPE

        project = Project.load(REPO_ROOT, ["src"])
        modules = {f.module for f in project.repro_files(*SCOPE)}
        assert "repro.sc.binomial" in modules


class TestLayeringRule:
    def test_upward_import_is_error(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/sc/bad.py": """
                from repro.runtime.scheduler import resolve_scheduler
                """
            },
            ["layering"],
        )
        assert len(new) == 1
        assert "upward import" in new[0].message
        assert new[0].severity == "error"

    def test_lazy_import_is_the_escape_hatch(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/sc/lazy.py": """
                def shim():
                    from repro.runtime.scheduler import resolve_scheduler

                    return resolve_scheduler
                """
            },
            ["layering"],
        )
        assert new == []

    def test_module_cycle_is_error(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/mapping/a.py": "from repro.mapping import b\n",
                "src/repro/mapping/b.py": "from repro.mapping import a\n",
            },
            ["layering"],
        )
        assert any("import cycle" in f.message for f in new)

    def test_package_reexport_is_not_a_cycle(self, tmp_path):
        # pkg/__init__ imports its submodule, the submodule imports a
        # sibling through the package name: Python executes this fine,
        # the checker must too.
        new = findings_of(
            tmp_path,
            {
                "src/repro/mapping/__init__.py": "from repro.mapping import a\n",
                "src/repro/mapping/a.py": "from repro.mapping import b\n",
                "src/repro/mapping/b.py": "X = 1\n",
            },
            ["layering"],
        )
        assert new == []


class TestFaultSiteRule:
    def test_undeclared_site_is_error(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/faults.py": FAULTS_STUB,
                "src/repro/runtime/user.py": """
                from repro.runtime.faults import fault_point

                def f():
                    fault_point("bad.site", rows=1)
                    fault_point("good.site")
                """,
            },
            ["fault-site"],
        )
        assert len(new) == 1
        assert "undeclared fault site 'bad.site'" in new[0].message

    def test_faultspec_and_dict_payloads_checked(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/faults.py": FAULTS_STUB,
                "tests/test_chaos.py": """
                from repro.runtime.faults import FaultSpec

                SPEC = FaultSpec(site="typo.site")
                WIRE = {"specs": [{"site": "another.typo"}]}
                """,
            },
            ["fault-site"],
        )
        assert len(new) == 2

    def test_non_literal_site_is_warning(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/faults.py": FAULTS_STUB,
                "src/repro/runtime/dynamic.py": """
                from repro.runtime.faults import fault_point

                def f(site):
                    fault_point(site)
                """,
            },
            ["fault-site"],
        )
        assert len(new) == 1
        assert new[0].severity == "warning"

    def test_inline_waiver_suppresses(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/faults.py": FAULTS_STUB,
                "tests/test_toys.py": """
                from repro.runtime.faults import fault_point

                def test_machinery():
                    fault_point("toy")  # lint-static: allow[fault-site]
                """,
            },
            ["fault-site"],
        )
        assert new == []


class TestEnvDisciplineRule:
    def test_raw_read_in_src_is_error(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/env.py": ENV_STUB,
                "src/repro/runtime/sneaky.py": """
                import os

                def f():
                    return os.environ.get("ANY_VAR")
                """,
            },
            ["env-discipline"],
        )
        assert len(new) == 1
        assert "raw environment read" in new[0].message

    def test_tests_may_read_non_repro_vars(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/env.py": ENV_STUB,
                "tests/test_misc.py": """
                import os

                HOME = os.environ.get("HOME")
                BAD = os.environ["REPRO_SOMETHING"]
                """,
            },
            ["env-discipline"],
        )
        assert len(new) == 1
        assert "REPRO_SOMETHING" in new[0].message

    def test_env_writes_are_fine(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/env.py": ENV_STUB,
                "tests/test_setup.py": """
                import os

                os.environ["REPRO_DECLARED"] = "1"
                del os.environ["REPRO_DECLARED"]
                """,
            },
            ["env-discipline"],
        )
        assert new == []

    def test_undeclared_accessor_name_is_error(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/env.py": ENV_STUB,
                "src/repro/runtime/knobs.py": """
                from repro.runtime.env import env_int

                def f():
                    ok = env_int("REPRO_DECLARED")
                    bad = env_int("REPRO_NOT_DECLARED")
                    return ok, bad
                """,
            },
            ["env-discipline"],
        )
        assert len(new) == 1
        assert "REPRO_NOT_DECLARED" in new[0].message


class TestAsyncHygieneRule:
    def test_blocking_calls_in_coroutine(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/net/bad.py": """
                import time

                async def handler(request_queue, future):
                    time.sleep(0.1)
                    value = future.result()
                    item = request_queue.get()
                    return value, item
                """
            },
            ["async-hygiene"],
        )
        messages = "\n".join(f.message for f in new)
        assert len(new) == 3
        assert "time.sleep" in messages
        assert "Future.result()" in messages
        assert "request_queue.get()" in messages

    def test_awaited_nowait_and_nested_sync_are_fine(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/net/good.py": """
                import time

                async def handler(queue):
                    item = await queue.get()
                    queue.put_nowait(item)

                    def off_loop():
                        time.sleep(0.1)  # runs in an executor

                    return off_loop
                """
            },
            ["async-hygiene"],
        )
        assert new == []

    def test_sync_functions_ignored(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/net/sync.py": """
                import time

                def worker(queue):
                    time.sleep(0.1)
                    return queue.get()
                """
            },
            ["async-hygiene"],
        )
        assert new == []


class TestRegistryContractRule:
    def test_missing_protocol_method(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/plugins.py": """
                from repro.runtime.scheduler import register_scheduler

                @register_scheduler("hollow")
                class Hollow:
                    pass
                """
            },
            ["registry-contract"],
        )
        assert len(new) == 1
        assert "implements none of the protocol methods" in new[0].message

    def test_inherited_method_satisfies(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/plugins.py": """
                from repro.runtime.scheduler import register_scheduler

                class Base:
                    def run_shards(self, *a, **k):
                        raise NotImplementedError

                @register_scheduler("derived")
                class Derived(Base):
                    pass
                """
            },
            ["registry-contract"],
        )
        assert new == []

    def test_non_literal_key_and_non_bool_flag(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/plugins.py": """
                from repro.runtime.scheduler import register_scheduler

                NAME = "dynamic"

                @register_scheduler(NAME)
                class Dyn:
                    stateless = "yes"

                    def run_shards(self, *a, **k):
                        return []
                """
            },
            ["registry-contract"],
        )
        messages = "\n".join(f.message for f in new)
        assert len(new) == 2
        assert "non-literal name" in messages
        assert "literal True/False" in messages


class TestExceptionTaxonomyRule:
    def test_unclassifiable_raise(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/oops.py": """
                class Weird(Exception):
                    pass

                def f():
                    raise Weird("boom")
                """
            },
            ["exception-taxonomy"],
        )
        assert len(new) == 1
        assert "outside the recovery.classify taxonomy" in new[0].message

    def test_derived_from_classifiable_is_fine(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/fine.py": """
                class Typed(ValueError):
                    pass

                def f():
                    raise Typed("boom")

                def g():
                    raise TimeoutError("slow")
                """
            },
            ["exception-taxonomy"],
        )
        assert new == []

    def test_broad_handler_must_classify_or_annotate(self, tmp_path):
        new = findings_of(
            tmp_path,
            {
                "src/repro/runtime/handlers.py": """
                from repro.runtime.recovery import classified

                def bad():
                    try:
                        work()
                    except Exception:
                        pass

                def classifies():
                    try:
                        work()
                    except Exception as exc:
                        raise classified(exc)

                def annotated():
                    try:
                        work()
                    # taxonomy: supervisor loop, deliberately broad
                    except Exception:
                        pass
                """
            },
            ["exception-taxonomy"],
        )
        assert len(new) == 1
        assert new[0].line == 7  # only bad()'s handler


# ----------------------------------------------------------------------
# Baseline round trip
# ----------------------------------------------------------------------
BAD_DETERMINISM = {
    "src/repro/runtime/drifty.py": """
    import numpy as np

    def f():
        return np.random.default_rng()
    """
}


class TestBaseline:
    def test_add_then_suppress_then_expire(self, tmp_path):
        write_tree(tmp_path, BAD_DETERMINISM)
        baseline_path = tmp_path / "lint-static.baseline.json"

        # 1. virgin run: one new finding, nothing baselined.
        report = run_analysis(
            tmp_path, paths=("src",), rules=["determinism"],
            baseline_path=baseline_path,
        )
        assert not report.clean and len(report.new) == 1

        # 2. grandfather it (the --update-baseline path).
        Baseline.from_findings(report.new).save(baseline_path)
        report = run_analysis(
            tmp_path, paths=("src",), rules=["determinism"],
            baseline_path=baseline_path,
        )
        assert report.clean
        assert len(report.baselined) == 1 and not report.stale_baseline

        # 3. fix the violation: entry goes stale but never fails the run.
        (tmp_path / "src/repro/runtime/drifty.py").write_text(
            "def f():\n    return None\n", encoding="utf-8"
        )
        report = run_analysis(
            tmp_path, paths=("src",), rules=["determinism"],
            baseline_path=baseline_path,
        )
        assert report.clean and not report.baselined
        assert len(report.stale_baseline) == 1

        # 4. --update-baseline prunes the stale entry.
        Baseline.from_findings(report.new + report.baselined).save(baseline_path)
        assert len(Baseline.load(baseline_path)) == 0

    def test_key_survives_line_shifts(self):
        a = Finding("r", "error", "p.py", 10, "same message")
        b = Finding("r", "error", "p.py", 99, "same message")
        assert a.key == b.key
        assert a.key.startswith("r:p.py:")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes_and_json(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_DETERMINISM)
        json_path = tmp_path / "findings.json"
        code = cli_main(
            [
                "lint-static",
                "--root", str(tmp_path),
                "--paths", "src",
                "--rules", "determinism",
                "--json", str(json_path),
            ]
        )
        assert code == 1
        payload = json.loads(json_path.read_text())
        assert payload["clean"] is False and len(payload["findings"]) == 1
        assert "FAILED" in capsys.readouterr().out

        # --update-baseline grandfathers, after which the run is green.
        assert cli_main(
            [
                "lint-static",
                "--root", str(tmp_path),
                "--paths", "src",
                "--rules", "determinism",
                "--update-baseline",
            ]
        ) == 0
        assert cli_main(
            [
                "lint-static",
                "--root", str(tmp_path),
                "--paths", "src",
                "--rules", "determinism",
            ]
        ) == 0

    def test_list_rules(self, capsys):
        assert cli_main(["lint-static", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in available_rules():
            assert rule in out


# ----------------------------------------------------------------------
# Repo self-check: the gate CI enforces.
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_repository_is_finding_free_modulo_baseline(self):
        report = run_analysis(REPO_ROOT)
        assert report.clean, "\n" + report.render()

    def test_all_rules_ship(self):
        assert set(available_rules()) >= {
            "determinism",
            "layering",
            "fault-site",
            "env-discipline",
            "async-hygiene",
            "registry-contract",
            "exception-taxonomy",
        }

    def test_env_docs_in_sync(self):
        from repro.runtime.env import catalog_markdown

        generated = catalog_markdown()
        on_disk = (REPO_ROOT / "docs" / "ENVIRONMENT.md").read_text(
            encoding="utf-8"
        )
        assert on_disk == generated, (
            "docs/ENVIRONMENT.md is stale; regenerate with "
            "`python -m repro.cli lint-static --write-env-docs`"
        )
