"""Tests for netlist construction, levelization, and boolean simulation."""

import pytest

from repro.circuits.netlist import Netlist


def build_small_netlist() -> Netlist:
    """a, b -> AND; c passthrough buffer; outputs (and, buffer)."""
    nl = Netlist(name="small")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_input("c")
    nl.add_gate("g_and", "and2", ["a", "b"])
    nl.add_gate("g_buf", "buffer", ["c"])
    nl.mark_output("g_and")
    nl.mark_output("g_buf")
    return nl


class TestConstruction:
    def test_duplicate_ids_rejected(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_input("a")
        nl.add_gate("g", "buffer", ["a"])
        with pytest.raises(ValueError):
            nl.add_gate("g", "buffer", ["a"])

    def test_unknown_cell_rejected(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(KeyError):
            nl.add_gate("g", "frobnicator", ["a"])

    def test_unknown_fanin_rejected(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            nl.add_gate("g", "buffer", ["ghost"])

    def test_mark_output_unknown_node(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            nl.mark_output("ghost")

    def test_cell_counts(self):
        nl = build_small_netlist()
        assert nl.cell_counts() == {"and2": 1, "buffer": 1}

    def test_logic_jj_count(self):
        nl = build_small_netlist()
        assert nl.logic_jj_count() == 6 + 2


class TestLevelization:
    def test_inputs_at_level_zero(self):
        nl = build_small_netlist()
        levels = nl.levelize()
        assert levels["a"] == levels["b"] == levels["c"] == 0

    def test_single_stage_gates(self):
        nl = build_small_netlist()
        levels = nl.levelize()
        assert levels["g_and"] == 1
        assert levels["g_buf"] == 1

    def test_multistage_cells_advance_levels(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("x", "xor2", ["a", "b"])  # xor2 occupies 2 stages
        levels = nl.levelize()
        assert levels["x"] == 2

    def test_cycle_detection(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g1", "buffer", ["a"])
        # Force a cycle by mutating internals (defensive-path test).
        nl._gates["g1"].fanins = ("g2",)
        nl._gates["g2"] = type(nl._gates["g1"])("g2", "buffer", ("g1",))
        with pytest.raises(ValueError):
            nl.levelize()

    def test_depth(self):
        nl = Netlist()
        nl.add_input("a")
        prev = "a"
        for i in range(5):
            prev = nl.add_gate(f"b{i}", "buffer", [prev])
        nl.mark_output(prev)
        assert nl.depth() == 5

    def test_edges_with_gaps_direct_connection(self):
        nl = build_small_netlist()
        gaps = {(s, d): g for s, d, g in nl.edges_with_gaps()}
        assert gaps[("a", "g_and")] == 1  # direct

    def test_edges_with_gaps_unbalanced(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("chain1", "buffer", ["a"])
        nl.add_gate("chain2", "buffer", ["chain1"])
        nl.add_gate("late_and", "and2", ["chain2", "b"])  # b arrives 2 early
        gaps = {(s, d): g for s, d, g in nl.edges_with_gaps()}
        assert gaps[("b", "late_and")] == 3  # needs 2 balancing buffers

    def test_output_alignment_edges(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("deep1", "buffer", ["a"])
        nl.add_gate("deep2", "buffer", ["deep1"])
        nl.add_gate("shallow", "buffer", ["a"])
        nl.mark_output("deep2")
        nl.mark_output("shallow")
        readout_edges = [e for e in nl.edges_with_gaps() if e[1].startswith("__readout")]
        assert len(readout_edges) == 1  # only the shallow output needs delay


class TestEvaluate:
    def test_basic_gates(self):
        nl = build_small_netlist()
        values = nl.evaluate({"a": 1, "b": 1, "c": 0})
        assert values["g_and"] == 1
        assert values["g_buf"] == 0

    @pytest.mark.parametrize(
        "cell,table",
        [
            ("and2", {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            ("or2", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            ("xor2", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            ("xnor2", {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ],
    )
    def test_two_input_truth_tables(self, cell, table):
        for (a, b), expected in table.items():
            nl = Netlist()
            nl.add_input("a")
            nl.add_input("b")
            nl.add_gate("g", cell, ["a", "b"])
            assert nl.evaluate({"a": a, "b": b})["g"] == expected

    def test_inverter_and_majority(self):
        nl = Netlist()
        for name in ("a", "b", "c"):
            nl.add_input(name)
        nl.add_gate("inv", "inverter", ["a"])
        nl.add_gate("maj", "majority3", ["a", "b", "c"])
        values = nl.evaluate({"a": 1, "b": 0, "c": 1})
        assert values["inv"] == 0
        assert values["maj"] == 1

    def test_constants(self):
        nl = Netlist()
        nl.add_constant("one", 1)
        nl.add_input("a")
        nl.add_gate("g", "and2", ["one", "a"])
        assert nl.evaluate({"a": 1})["g"] == 1
        assert nl.evaluate({"a": 0})["g"] == 0

    def test_constant_validation(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            nl.add_constant("two", 2)

    def test_missing_input_raises(self):
        nl = build_small_netlist()
        with pytest.raises(KeyError):
            nl.evaluate({"a": 1})

    def test_cell_without_semantics_raises(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g", "lim_cell", ["a"])
        with pytest.raises(ValueError):
            nl.evaluate({"a": 1})
