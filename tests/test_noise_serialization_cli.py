"""Tests for weight-noise baselines, checkpointing, temperature, and CLI."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.noise_baselines import WeightNoiseInjector, perturb_weights
from repro.models.mlp import Mlp
from repro.utils.serialization import load_into, load_state_dict, save_state_dict


class TestPerturbWeights:
    def test_zero_sigma_is_identity(self, rng):
        w = rng.normal(size=(5, 5))
        np.testing.assert_array_equal(perturb_weights(w, 0.0), w)

    def test_noise_scale_relative_to_std(self, rng):
        w = rng.normal(scale=3.0, size=(200, 200))
        noisy = perturb_weights(w, 0.1, seed=0)
        deviation = (noisy - w).std()
        assert deviation == pytest.approx(0.1 * w.std(), rel=0.05)

    def test_seeded_reproducibility(self, rng):
        w = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(
            perturb_weights(w, 0.2, seed=3), perturb_weights(w, 0.2, seed=3)
        )

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            perturb_weights(np.zeros((2, 2)), -0.1)


class TestWeightNoiseInjector:
    def test_inject_restore_roundtrip(self):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        original = {
            name: p.data.copy() for name, p in model.named_parameters()
        }
        injector = WeightNoiseInjector(0.3, seed=0)
        injector.inject(model)
        changed = any(
            not np.array_equal(p.data, original[name])
            for name, p in model.named_parameters()
            if p.data.ndim >= 2
        )
        assert changed
        injector.restore(model)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, original[name])

    def test_double_inject_rejected(self):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        injector = WeightNoiseInjector(0.1)
        injector.inject(model)
        with pytest.raises(RuntimeError):
            injector.inject(model)

    def test_vectors_untouched(self):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        alpha_before = model.cells[0].alpha.data.copy()
        injector = WeightNoiseInjector(0.5, seed=0)
        injector.inject(model)
        np.testing.assert_array_equal(model.cells[0].alpha.data, alpha_before)
        injector.restore(model)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            WeightNoiseInjector(-0.1)


class TestSerialization:
    def test_roundtrip_restores_parameters(self, tmp_path, rng):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        model.train()
        model(Tensor(rng.uniform(-1, 1, size=(16, 20))))  # BN stats
        path = save_state_dict(model, tmp_path / "ckpt", metadata={"epochs": 5})

        other = Mlp(in_features=20, hidden=(8,), seed=99)
        metadata = load_into(other, path)
        assert metadata == {"epochs": 5}
        for (_, a), (_, b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_buffers_roundtrip(self, tmp_path, rng):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        model.train()
        model(Tensor(rng.uniform(-1, 1, size=(64, 20))))
        path = save_state_dict(model, tmp_path / "ckpt.npz")
        other = Mlp(in_features=20, hidden=(8,), seed=1)
        load_into(other, path)
        np.testing.assert_array_equal(
            model.cells[0].bn.running_mean, other.cells[0].bn.running_mean
        )

    def test_suffix_normalized(self, tmp_path):
        model = Mlp(in_features=10, hidden=(4,), seed=0)
        path = save_state_dict(model, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_state_dict_payload(self, tmp_path):
        model = Mlp(in_features=10, hidden=(4,), seed=0)
        path = save_state_dict(model, tmp_path / "w", metadata={"k": [1, 2]})
        payload = load_state_dict(path)
        assert payload["metadata"] == {"k": [1, 2]}
        assert any(key.endswith("weight") for key in payload["state"])

    def test_predictions_identical_after_roundtrip(self, tmp_path, rng):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        model.train()
        model(Tensor(rng.uniform(-1, 1, size=(32, 20))))
        model.eval()
        x = Tensor(rng.uniform(-1, 1, size=(8, 20)))
        expected = model(x).data
        path = save_state_dict(model, tmp_path / "m")
        clone = Mlp(in_features=20, hidden=(8,), seed=5)
        load_into(clone, path)
        clone.eval()
        np.testing.assert_allclose(clone(x).data, expected)


class TestTemperatureSweep:
    def test_gray_zone_monotone_in_rows(self):
        from repro.experiments.temperature import temperature_sweep

        result = temperature_sweep(
            temperatures_k=(1.0, 10.0, 40.0), epochs=6, n_eval=100
        )
        zones = [row["gray_zone_ua"] for row in result["rows"]]
        assert zones[0] < zones[1] < zones[2]

    def test_hot_device_loses_accuracy(self):
        from repro.experiments.temperature import temperature_sweep

        result = temperature_sweep(
            temperatures_k=(4.2, 60.0), epochs=8, n_eval=150
        )
        cold, hot = result["rows"][0], result["rows"][1]
        assert hot["accuracy"] < cold["accuracy"] + 0.02
        assert cold["accuracy"] > 0.4


class TestCli:
    def test_table1(self, capsys):
        from repro.cli import main

        assert main(["table1", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "384" in out and "1152" in out

    def test_fig4(self, capsys):
        from repro.cli import main

        assert main(["fig4"]) == 0
        assert "boundary" in capsys.readouterr().out

    def test_fig5(self, capsys):
        from repro.cli import main

        assert main(["fig5"]) == 0
        assert "Cs^-" in capsys.readouterr().out

    def test_clocking(self, capsys):
        from repro.cli import main

        assert main(["clocking"]) == 0
        assert "BCM" in capsys.readouterr().out

    def test_coopt(self, capsys):
        from repro.cli import main

        assert main(["coopt", "--sizes", "8", "--gray-zones", "5", "50"]) == 0
        assert "optimum" in capsys.readouterr().out

    def test_fig12(self, capsys):
        from repro.cli import main

        assert main(["fig12", "--tops", "1e5"]) == 0
        assert "GHz" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])
