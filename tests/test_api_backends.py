"""Backend equivalence: ideal is bit-exact, fused-batched is
distribution-equivalent to the legacy dense sampling path."""

import numpy as np
import pytest

from repro.api import get_backend
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.utils.rng import new_rng


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture
def tiled_layer():
    """A 20->12 layer on Cs=8 crossbars: 3 row x 2 column tiles."""
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=20.0, window_bits=16)
    weights = pm(rng, (20, 12))
    thresholds = rng.normal(0.0, 0.5, size=12) * cfg.unit_current_ua
    return TiledLinearLayer(cfg, weights, threshold_ua=thresholds, seed=1)


class TestIdealBackendExactness:
    def test_matches_layer_ideal_output_bit_for_bit(self, tiled_layer):
        rng = new_rng(2)
        flat = pm(rng, (40, 20))
        backend = get_backend("ideal")
        out = backend.run_layer(tiled_layer, flat, rng=rng)
        np.testing.assert_array_equal(out, tiled_layer.ideal_output(flat))

    def test_deterministic_across_calls(self, tiled_layer):
        rng = new_rng(3)
        flat = pm(rng, (8, 20))
        backend = get_backend("ideal")
        a = backend.run_layer(tiled_layer, flat, rng=new_rng(0))
        b = backend.run_layer(tiled_layer, flat, rng=new_rng(99))
        np.testing.assert_array_equal(a, b)


class TestFusedBatchedDistributionEquivalence:
    """The fused-batched Binomial draw must be distribution-equivalent
    to the legacy dense per-tile sampling, column by column."""

    def _window_count_moments(self, layer, activations, n_repeats, sampler):
        """Empirical mean/std of the summed window counts per column.

        ``sampler(activations) -> (K, N, cols_total)`` counts; we sum
        over K (what the comparator sees) and pool batch x repeats.
        """
        totals = []
        for _ in range(n_repeats):
            totals.append(sampler(activations).sum(axis=0))
        stacked = np.stack(totals, axis=0)  # (R, N, cols)
        flat = stacked.reshape(-1, stacked.shape[-1])
        return flat.mean(axis=0), flat.std(axis=0)

    def test_counts_match_dense_sampling_per_column(self, tiled_layer):
        layer = tiled_layer
        cfg = layer.config
        rng = new_rng(4)
        # One activation row, repeated: every repeat draws from the
        # same per-column law, so moments concentrate fast.
        row = pm(rng, (1, 20))
        activations = np.repeat(row, 16, axis=0)
        n_repeats = 150
        bits = cfg.window_bits

        def dense_counts(a):
            chunks = layer._split_activations(a)
            per_tile = []
            for i in range(layer.n_row_tiles):
                cols = []
                for j in range(layer.n_col_tiles):
                    window = layer.tiles[i][j].sample_window(chunks[i])
                    cols.append((window > 0).sum(axis=0))
                per_tile.append(np.concatenate(cols, axis=-1))
            return np.stack(per_tile, axis=0)

        fused_rng = new_rng(5)

        def fused_counts(a):
            norm = layer._normalize_activations(a).astype(np.float64)
            padded = np.zeros((norm.shape[0], layer.n_row_tiles * cfg.crossbar_size))
            padded[:, : layer.in_features] = norm
            strips = padded.reshape(
                norm.shape[0], layer.n_row_tiles, cfg.crossbar_size
            ).transpose(1, 0, 2)
            values = strips @ layer._fused_weights
            p = layer._fused_sampler._probabilities_from_values(values)
            return fused_rng.binomial(bits, p)

        dense_mean, dense_std = self._window_count_moments(
            layer, activations, n_repeats, dense_counts
        )
        fused_mean, fused_std = self._window_count_moments(
            layer, activations, n_repeats, fused_counts
        )

        # Analytic law: total = sum_k Binomial(L, p_k) per column.
        chunks = layer._split_activations(activations[:1])
        probs = np.concatenate(
            [
                np.concatenate(
                    [
                        layer.tiles[i][j].output_probabilities(chunks[i])
                        for j in range(layer.n_col_tiles)
                    ],
                    axis=-1,
                )
                for i in range(layer.n_row_tiles)
            ],
            axis=0,
        ).reshape(layer.n_row_tiles, -1)
        true_mean = bits * probs.sum(axis=0)
        true_std = np.sqrt(bits * (probs * (1 - probs)).sum(axis=0))

        n_samples = 16 * n_repeats
        tol = 5.0 * np.maximum(true_std, 0.05) / np.sqrt(n_samples)
        np.testing.assert_allclose(dense_mean, true_mean, atol=tol.max())
        np.testing.assert_allclose(fused_mean, true_mean, atol=tol.max())
        np.testing.assert_allclose(fused_mean, dense_mean, atol=2 * tol.max())
        # Standard deviations agree within 15% relative (loose but
        # catches e.g. accidentally correlated draws or a wrong law).
        mask = true_std > 0.1
        np.testing.assert_allclose(
            fused_std[mask], true_std[mask], rtol=0.15
        )
        np.testing.assert_allclose(
            dense_std[mask], true_std[mask], rtol=0.15
        )

    def test_pm_outputs_and_shapes(self, tiled_layer):
        rng = new_rng(6)
        flat = pm(rng, (24, 20))
        backend = get_backend("stochastic-fused-batched")
        out = backend.run_layer(tiled_layer, flat, rng=new_rng(7))
        assert out.shape == (24, 12)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_fused_batched_mean_output_tracks_dense(self, tiled_layer):
        """End-to-end +-1 outputs: per-column firing rates agree."""
        layer = tiled_layer
        rng = new_rng(8)
        row = pm(rng, (1, 20))
        activations = np.repeat(row, 32, axis=0)
        n_repeats = 60
        dense_backend = get_backend("stochastic-dense")
        fused_backend = get_backend("stochastic-fused-batched")
        fused_rng = new_rng(9)
        dense = np.mean(
            [
                dense_backend.run_layer(layer, activations, rng=fused_rng)
                for _ in range(n_repeats)
            ],
            axis=0,
        ).mean(axis=0)
        fused = np.mean(
            [
                fused_backend.run_layer(layer, activations, rng=fused_rng)
                for _ in range(n_repeats)
            ],
            axis=0,
        ).mean(axis=0)
        # Firing rates live in [-1, 1]; 32*60 samples per column give a
        # worst-case sigma of ~1/sqrt(1920) ~ 0.023 per mean.
        np.testing.assert_allclose(fused, dense, atol=0.15)

    def test_requires_exact_apc(self):
        rng = new_rng(10)
        cfg = HardwareConfig(crossbar_size=8, window_bits=8)
        layer = TiledLinearLayer(
            cfg, pm(rng, (16, 8)), seed=0, approximate_layers=1
        )
        with pytest.raises(ValueError, match="exact APC"):
            layer.forward_fused_batched(pm(rng, (4, 16)))


class TestPackedAndDenseBackends:
    def test_packed_matches_dense_statistically(self):
        """Same per-column firing-rate law from both bit-level paths."""
        rng = new_rng(11)
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=20.0, window_bits=16)
        layer = TiledLinearLayer(cfg, pm(rng, (20, 12)), seed=2,
                                 approximate_layers=0)
        row = pm(rng, (1, 20))
        activations = np.repeat(row, 32, axis=0)
        dense = get_backend("stochastic-dense")
        packed = get_backend("stochastic-packed")
        n_repeats = 60
        mean_dense = np.mean(
            [dense.run_layer(layer, activations, rng=rng) for _ in range(n_repeats)],
            axis=0,
        ).mean(axis=0)
        mean_packed = np.mean(
            [packed.run_layer(layer, activations, rng=rng) for _ in range(n_repeats)],
            axis=0,
        ).mean(axis=0)
        np.testing.assert_allclose(mean_packed, mean_dense, atol=0.15)

    def test_stats_updated_by_all_paths(self, tiled_layer):
        layer = tiled_layer
        rng = new_rng(12)
        flat = pm(rng, (4, 20))
        before = layer.n_passes
        layer.forward_dense(flat)
        layer.forward_packed(flat)
        layer.forward_fused_batched(flat)
        assert layer.n_passes == before + 3 * layer.n_row_tiles * layer.n_col_tiles
        assert layer.n_inferences >= 12


class TestReseedSampling:
    def test_reseed_replays_all_paths(self, tiled_layer):
        layer = tiled_layer
        rng = new_rng(13)
        flat = pm(rng, (16, 20))
        for method in ("forward_dense", "forward_packed", "forward",
                       "forward_fused_batched"):
            layer.reseed_sampling(42)
            a = getattr(layer, method)(flat)
            layer.reseed_sampling(42)
            b = getattr(layer, method)(flat)
            np.testing.assert_array_equal(a, b, err_msg=method)
