"""Tests for HardwareConfig and the crossbar synapse array simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.attenuation import AttenuationModel
from repro.hardware.config import HardwareConfig
from repro.hardware.crossbar import CrossbarArray


class TestHardwareConfig:
    def test_defaults(self):
        cfg = HardwareConfig()
        assert cfg.crossbar_size == 16
        assert cfg.gray_zone_ua == pytest.approx(2.4)

    def test_derived_quantities_consistent(self):
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=2.4)
        expected_i1 = float(cfg.attenuation.unit_current_ua(8))
        assert cfg.unit_current_ua == pytest.approx(expected_i1)
        assert cfg.value_gray_zone == pytest.approx(2.4 / expected_i1)

    def test_value_threshold(self):
        cfg = HardwareConfig(crossbar_size=4)
        assert cfg.value_threshold(cfg.unit_current_ua) == pytest.approx(1.0)

    def test_with_override(self):
        cfg = HardwareConfig(crossbar_size=16)
        other = cfg.with_(crossbar_size=72)
        assert other.crossbar_size == 72
        assert cfg.crossbar_size == 16  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareConfig(crossbar_size=0)
        with pytest.raises(ValueError):
            HardwareConfig(gray_zone_ua=0.0)
        with pytest.raises(ValueError):
            HardwareConfig(window_bits=0)
        with pytest.raises(ValueError):
            HardwareConfig(clock_rate_hz=-1)

    def test_frozen(self):
        cfg = HardwareConfig()
        with pytest.raises(AttributeError):
            cfg.crossbar_size = 4


def make_crossbar(rows=6, cols=4, cs=8, gz=2.4, seed=0, threshold=0.0):
    rng = np.random.default_rng(seed)
    weights = np.where(rng.random((rows, cols)) < 0.5, 1.0, -1.0)
    cfg = HardwareConfig(crossbar_size=cs, gray_zone_ua=gz)
    return CrossbarArray(cfg, weights, threshold_ua=threshold, seed=seed), weights


class TestCrossbarConstruction:
    def test_rejects_non_binary_weights(self):
        cfg = HardwareConfig(crossbar_size=4)
        with pytest.raises(ValueError):
            CrossbarArray(cfg, np.array([[0.5, 1.0]]))

    def test_rejects_oversized_weights(self):
        cfg = HardwareConfig(crossbar_size=2)
        with pytest.raises(ValueError):
            CrossbarArray(cfg, np.ones((3, 2)))

    def test_rejects_non_2d(self):
        cfg = HardwareConfig(crossbar_size=4)
        with pytest.raises(ValueError):
            CrossbarArray(cfg, np.ones(4))

    def test_threshold_broadcast(self):
        xbar, _ = make_crossbar(threshold=1.5)
        assert xbar.threshold_ua.shape == (4,)
        assert np.all(xbar.threshold_ua == 1.5)


class TestCrossbarAnalog:
    def test_column_values_are_matrix_product(self):
        xbar, weights = make_crossbar()
        a = np.where(np.random.default_rng(1).random((3, 6)) < 0.5, 1.0, -1.0)
        np.testing.assert_allclose(xbar.column_values(a), a @ weights)

    def test_zero_activation_contributes_nothing(self):
        """Zero rows model conv zero-padding: no current injected."""
        xbar, weights = make_crossbar()
        a = np.ones((1, 6))
        a_padded = a.copy()
        a_padded[0, 2] = 0.0
        diff = xbar.column_values(a) - xbar.column_values(a_padded)
        np.testing.assert_allclose(diff.ravel(), weights[2])

    def test_currents_scale_with_unit_current(self):
        xbar, _ = make_crossbar()
        a = np.ones((1, 6))
        np.testing.assert_allclose(
            xbar.column_currents_ua(a),
            xbar.column_values(a) * xbar.config.unit_current_ua,
        )

    def test_attenuation_reduces_current_for_larger_arrays(self):
        small, w = make_crossbar(cs=8)
        cfg_big = HardwareConfig(crossbar_size=144)
        big = CrossbarArray(cfg_big, w)
        a = np.ones((1, 6))
        assert np.all(
            np.abs(big.column_currents_ua(a)) < np.abs(small.column_currents_ua(a)) + 1e-12
        )

    def test_activation_validation(self):
        xbar, _ = make_crossbar()
        with pytest.raises(ValueError):
            xbar.column_values(np.full((1, 6), 0.5))
        with pytest.raises(ValueError):
            xbar.column_values(np.ones((1, 5)))

    def test_1d_activation_promoted(self):
        xbar, _ = make_crossbar()
        out = xbar.column_values(np.ones(6))
        assert out.shape == (1, 4)


class TestCrossbarStochastic:
    def test_probabilities_in_unit_interval(self):
        xbar, _ = make_crossbar()
        a = np.where(np.random.default_rng(2).random((5, 6)) < 0.5, 1.0, -1.0)
        p = xbar.output_probabilities(a)
        assert np.all((p >= 0) & (p <= 1))

    def test_expected_output_consistency(self):
        xbar, _ = make_crossbar()
        a = np.ones((2, 6))
        np.testing.assert_allclose(
            xbar.expected_output(a), 2 * xbar.output_probabilities(a) - 1
        )

    def test_large_sums_are_nearly_deterministic(self):
        """A full +1 column far exceeds the gray zone at small Cs."""
        cfg = HardwareConfig(crossbar_size=4, gray_zone_ua=2.4)
        xbar = CrossbarArray(cfg, np.ones((4, 1)), seed=0)
        p = xbar.output_probabilities(np.ones((1, 4)))
        assert p[0, 0] > 0.9999

    def test_sample_alphabet(self):
        xbar, _ = make_crossbar()
        a = np.ones((3, 6))
        out = xbar.sample_output(a)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_sample_window_shape(self):
        xbar, _ = make_crossbar()
        window = xbar.sample_window(np.ones((3, 6)), window_bits=5)
        assert window.shape == (5, 3, 4)

    def test_window_default_from_config(self):
        xbar, _ = make_crossbar()
        window = xbar.sample_window(np.ones((1, 6)))
        assert window.shape[0] == xbar.config.window_bits

    def test_sampling_statistics_match_probabilities(self):
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=40.0)
        xbar = CrossbarArray(cfg, np.ones((8, 1)), seed=0)
        a = np.ones((1, 8))
        p = xbar.output_probabilities(a)[0, 0]
        window = xbar.sample_window(a, window_bits=20000)
        assert (window > 0).mean() == pytest.approx(p, abs=0.02)

    def test_ideal_sign_output(self):
        xbar, weights = make_crossbar()
        a = np.where(np.random.default_rng(3).random((4, 6)) < 0.5, 1.0, -1.0)
        expected = np.where(a @ weights >= 0, 1.0, -1.0)
        np.testing.assert_array_equal(xbar.ideal_sign_output(a), expected)

    def test_threshold_shifts_ideal_decision(self):
        cfg = HardwareConfig(crossbar_size=4)
        unit = cfg.unit_current_ua
        xbar = CrossbarArray(cfg, np.ones((4, 1)), threshold_ua=2.5 * unit)
        # column value 2 < 2.5 -> -1 ; value 4 >= 2.5 -> +1
        a_two = np.array([[1.0, 1.0, 1.0, -1.0]])
        a_four = np.ones((1, 4))
        assert xbar.ideal_sign_output(a_two)[0, 0] == -1.0
        assert xbar.ideal_sign_output(a_four)[0, 0] == 1.0

    def test_invalid_window(self):
        xbar, _ = make_crossbar()
        with pytest.raises(ValueError):
            xbar.sample_window(np.ones((1, 6)), window_bits=0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=5))
def test_crossbar_probability_monotone_in_value(rows, cols):
    """Property: more +1 inputs can only raise P('1') for +1 weights."""
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=5.0)
    xbar = CrossbarArray(cfg, np.ones((rows, cols)))
    base = -np.ones((1, rows))
    probs = []
    for k in range(rows + 1):
        a = base.copy()
        a[0, :k] = 1.0
        probs.append(xbar.output_probabilities(a)[0, 0])
    assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))
