"""Tests for the experiment harnesses (cheap ones run fully; training-
based ones run at reduced scale and check shape properties)."""

import numpy as np
import pytest

from repro.experiments.fig4 import gray_zone_response
from repro.experiments.fig5 import attenuation_curve
from repro.experiments.table1 import PAPER_TABLE1, crossbar_hardware_table
from repro.experiments.clocking import best_reduction, clocking_optimization_report
from repro.experiments.ablations import accumulation_ablation


class TestFig4:
    def test_curve_structure(self):
        result = gray_zone_response(n_points=9, n_samples=500)
        assert len(result["points"]) == 9
        probs = [p["probability"] for p in result["points"]]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_sampled_tracks_analytic(self):
        result = gray_zone_response(n_points=9, n_samples=8000, seed=0)
        for point in result["points"]:
            assert point["sampled"] == pytest.approx(point["probability"], abs=0.03)

    def test_boundary_matches_paper_fig4(self):
        """Randomized switching confined to roughly +-2 uA."""
        result = gray_zone_response()
        assert 1.5 < result["boundary_ua"] < 2.5


class TestFig5:
    def test_power_law_fit_quality(self):
        result = attenuation_curve(seed=0)
        assert result["max_relative_fit_error"] < 0.15
        assert result["exponent"] > 0.3
        assert result["amplitude_ua"] > 10.0

    def test_monotone_attenuation(self):
        result = attenuation_curve(noise_fraction=0.0, seed=0)
        measured = [p["measured_ua"] for p in result["points"]]
        assert all(a > b for a, b in zip(measured, measured[1:]))

    def test_paper_sizes_present(self):
        result = attenuation_curve()
        sizes = [p["crossbar_size"] for p in result["points"]]
        assert sizes == [4, 8, 16, 18, 36, 72, 144]


class TestTable1:
    def test_every_row_matches_paper_exactly(self):
        rows = crossbar_hardware_table()
        for row in rows:
            paper = PAPER_TABLE1[row["size"]]
            assert row["latency_ps"] == pytest.approx(paper["latency_ps"])
            assert row["jj_count"] == paper["jj_count"]
            assert row["energy_aj"] == pytest.approx(paper["energy_aj"], rel=1e-6)

    def test_custom_sizes(self):
        rows = crossbar_hardware_table([10])
        assert rows[0]["jj_count"] == 12 * 100 + 48 * 10
        assert "paper_jj_count" not in rows[0]


class TestClockingExperiment:
    def test_report_contains_paper_reference(self):
        report = clocking_optimization_report(apc_inputs=(8,))
        assert report["paper"]["reductions"][8] == pytest.approx(0.208)
        assert report["memory_reduction"] == pytest.approx(0.20)

    def test_reductions_grow_with_phases(self):
        report = clocking_optimization_report(apc_inputs=(16,))
        assert best_reduction(report, 16) > best_reduction(report, 8) > 0

    def test_paper_scale_reduction_achieved(self):
        """At least one accumulation-module circuit must reach the
        paper's >= 20% band at 8 phases."""
        report = clocking_optimization_report(apc_inputs=(8, 16, 32))
        assert best_reduction(report, 8) > 0.18

    def test_best_reduction_validation(self):
        report = clocking_optimization_report(apc_inputs=(8,), phase_options=(4, 8))
        with pytest.raises(ValueError):
            best_reduction(report, 16)


class TestAccumulationAblation:
    def test_approximation_saves_jjs_but_undercounts(self):
        result = accumulation_ablation(n_inputs=16, n_trials=500)
        assert result["jj_saving_fraction"] > 0.2
        mid = next(r for r in result["rows"] if r["probability"] == 0.5)
        assert mid["mean_approx"] <= mid["mean_true"]
        assert mid["mean_abs_error"] > 0

    def test_low_density_nearly_exact(self):
        result = accumulation_ablation(
            n_inputs=16, probabilities=(0.05,), n_trials=500
        )
        assert result["rows"][0]["mean_abs_error"] < 0.3
