"""Tests for n-phase clocking and path-balancing buffer accounting."""

import pytest

from repro.circuits.apc import build_apc_netlist
from repro.circuits.clocking import (
    BUFFER_JJ,
    ClockingScheme,
    clocking_report,
    jj_reduction_vs_four_phase,
    path_balance,
    total_jj_count,
)
from repro.circuits.comparator import build_comparator_netlist
from repro.circuits.netlist import Netlist


class TestClockingScheme:
    def test_four_phase_slack_one(self):
        assert ClockingScheme(4).slack == 1

    def test_higher_phase_slack(self):
        assert ClockingScheme(8).slack == 2
        assert ClockingScheme(16).slack == 4

    def test_three_phase_minimum(self):
        assert ClockingScheme(3).slack == 1
        with pytest.raises(ValueError):
            ClockingScheme(2)

    def test_buffers_for_gap_four_phase(self):
        scheme = ClockingScheme(4)
        assert scheme.buffers_for_gap(1) == 0
        assert scheme.buffers_for_gap(2) == 1
        assert scheme.buffers_for_gap(5) == 4

    def test_buffers_for_gap_eight_phase(self):
        scheme = ClockingScheme(8)
        assert scheme.buffers_for_gap(1) == 0
        assert scheme.buffers_for_gap(2) == 0  # coasts across 2 stages
        assert scheme.buffers_for_gap(4) == 1
        assert scheme.buffers_for_gap(5) == 2

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            ClockingScheme(4).buffers_for_gap(0)

    def test_latency(self):
        scheme = ClockingScheme(4, stage_delay_s=5e-12)
        assert scheme.latency_s(10) == pytest.approx(50e-12)
        with pytest.raises(ValueError):
            scheme.latency_s(-1)


class TestPathBalancing:
    def make_unbalanced(self) -> Netlist:
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        prev = "a"
        for i in range(4):
            prev = nl.add_gate(f"c{i}", "buffer", [prev])
        nl.add_gate("top", "and2", [prev, "b"])  # b is 4 stages early
        nl.mark_output("top")
        return nl

    def test_four_phase_fills_every_stage(self):
        nl = self.make_unbalanced()
        assert path_balance(nl, ClockingScheme(4)) == 4

    def test_eight_phase_halves_buffers(self):
        nl = self.make_unbalanced()
        assert path_balance(nl, ClockingScheme(8)) == 2

    def test_sixteen_phase(self):
        nl = self.make_unbalanced()
        assert path_balance(nl, ClockingScheme(16)) == 1

    def test_total_jj_includes_buffers(self):
        nl = self.make_unbalanced()
        logic = nl.logic_jj_count()
        assert total_jj_count(nl, ClockingScheme(4)) == logic + 4 * BUFFER_JJ

    def test_reduction_monotone_in_phases(self):
        nl = build_apc_netlist(16, approximate_layers=0)
        r8 = jj_reduction_vs_four_phase(nl, 8)
        r16 = jj_reduction_vs_four_phase(nl, 16)
        assert 0 < r8 < r16 < 1

    def test_reduction_zero_for_four_phase(self):
        nl = build_apc_netlist(8)
        assert jj_reduction_vs_four_phase(nl, 4) == pytest.approx(0.0)


class TestClockingReport:
    def test_report_structure(self):
        nl = build_apc_netlist(8, approximate_layers=0)
        report = clocking_report(nl)
        assert set(report) == {4, 8, 16}
        for phases, row in report.items():
            assert row["total_jj"] > 0
            assert row["energy_per_cycle_j"] > 0
            assert 0 <= row["reduction_vs_4phase"] < 1

    def test_paper_scale_reductions_on_ripple_comparator(self):
        """Ripple structures are buffer-heavy: 8-phase clocking should
        recover a double-digit percentage, the regime the paper reports
        (>= 20.8% at 8 phases on its circuits)."""
        nl = build_comparator_netlist(8)
        report = clocking_report(nl)
        assert report[8]["reduction_vs_4phase"] > 0.15
        assert report[16]["reduction_vs_4phase"] > report[8]["reduction_vs_4phase"]
