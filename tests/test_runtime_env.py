"""Tests for the typed environment-variable boundary
(:mod:`repro.runtime.env`).

The accessors are the single sanctioned read path for every ``REPRO_*``
knob (enforced by the ``env-discipline`` lint rule); these tests pin
their parsing semantics: unset/blank means "not configured", errors are
:class:`EnvError` (a :class:`ValueError`) naming the variable, and an
undeclared variable cannot be read at all.
"""

from __future__ import annotations

import pytest

from repro.runtime.env import (
    ENV_CATALOG,
    EnvError,
    UndeclaredEnvVar,
    catalog_markdown,
    declared_variables,
    env_bool,
    env_float,
    env_int,
    env_path,
    env_raw,
    env_str,
)

VAR = "REPRO_MAX_POOL_WORKERS"  # any declared name works


class TestRawAndStr:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_raw(VAR) is None
        assert env_str(VAR) is None
        assert env_str(VAR, "fallback") == "fallback"

    def test_blank_means_unset(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert env_raw(VAR) is None

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(VAR, "  7  ")
        assert env_raw(VAR) == "7"

    def test_undeclared_variable_refused(self, monkeypatch):
        monkeypatch.setenv("REPRO_NOT_A_KNOB", "1")
        with pytest.raises(UndeclaredEnvVar, match="REPRO_NOT_A_KNOB"):
            env_raw("REPRO_NOT_A_KNOB")  # lint-static: allow[env-discipline]


class TestTypedParsing:
    def test_int(self, monkeypatch):
        monkeypatch.setenv(VAR, "4")
        assert env_int(VAR) == 4
        monkeypatch.delenv(VAR)
        assert env_int(VAR, 9) == 9

    def test_int_error_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(VAR, "banana")
        with pytest.raises(ValueError, match=VAR):
            env_int(VAR)
        with pytest.raises(EnvError, match="integer"):
            env_int(VAR)

    def test_int_minimum(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(EnvError, match=">= 1"):
            env_int(VAR, minimum=1)

    def test_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0.25")
        assert env_float("REPRO_RETRY_BACKOFF_S") == 0.25
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "-1")
        with pytest.raises(EnvError, match="REPRO_RETRY_BACKOFF_S"):
            env_float("REPRO_RETRY_BACKOFF_S", minimum=0.0)

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("False", False), ("no", False), ("OFF", False),
    ])
    def test_bool_spellings(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_SERIAL_FALLBACK", raw)
        assert env_bool("REPRO_SERIAL_FALLBACK") is expected

    def test_bool_rejects_other_spellings(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL_FALLBACK", "maybe")
        with pytest.raises(EnvError, match="REPRO_SERIAL_FALLBACK"):
            env_bool("REPRO_SERIAL_FALLBACK")
        monkeypatch.delenv("REPRO_SERIAL_FALLBACK")
        assert env_bool("REPRO_SERIAL_FALLBACK", True) is True

    def test_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_COST_COEFFICIENTS", "/tmp/coeffs.json")
        assert env_path("REPRO_COST_COEFFICIENTS") == "/tmp/coeffs.json"

    def test_env_error_is_a_value_error(self):
        # Pre-existing callers match ValueError; the subclass keeps them.
        assert issubclass(EnvError, ValueError)


class TestCatalog:
    def test_every_entry_is_consistent(self):
        for name, var in ENV_CATALOG.items():
            assert name == var.name
            assert name.startswith("REPRO_")
            assert var.kind in ("int", "float", "bool", "str", "path")
            assert var.description and var.consumer

    def test_declared_variables_sorted(self):
        names = declared_variables()
        assert list(names) == sorted(names)
        assert set(names) == set(ENV_CATALOG)

    def test_markdown_covers_every_variable(self):
        text = catalog_markdown()
        for name in ENV_CATALOG:
            assert f"`{name}`" in text
