"""Unified Engine API: round-trip parity, sessions, backends, results."""

import numpy as np
import pytest

from repro.api import (
    DEFAULT_MICRO_BATCH,
    Engine,
    EngineBuilder,
    available_backends,
    get_backend,
    register_backend,
)
from repro.autograd import Tensor, no_grad
from repro.hardware.cost import AcceleratorCostModel
from repro.mapping.compiler import compile_model
from repro.mapping.executor import evaluate_accuracy, network_workloads, run_network

from tests.test_mapping_compiler import quick_mlp, quick_vgg  # noqa: F401  (fixtures)

ALL_STOCHASTIC = ("stochastic", "stochastic-dense", "stochastic-packed",
                  "stochastic-fused-batched")
FIRST_CLASS = ("ideal",) + ALL_STOCHASTIC[1:]


class TestRoundTripParity:
    """Acceptance: Engine output matches the legacy executor exactly in
    ideal mode, for both supported topologies."""

    def test_mlp_ideal_matches_legacy_executor(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        engine = Engine(network)
        legacy = run_network(network, test.images, mode="ideal")
        result = engine.run(test.images, backend="ideal")
        np.testing.assert_array_equal(result.logits, legacy)

    def test_vgg_ideal_matches_legacy_executor(self, quick_vgg):
        model, _, test = quick_vgg
        network = compile_model(model)
        engine = Engine(network)
        images = test.images[:16]
        legacy = run_network(network, images, mode="ideal")
        result = engine.run(images, backend="ideal")
        np.testing.assert_array_equal(result.logits, legacy)

    def test_mlp_ideal_matches_software_model(self, quick_mlp):
        """Non-tautological anchor: the engine agrees with the software
        model evaluated deterministically (the shims share the engine,
        so this pins the whole chain, not just shim consistency)."""
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        with no_grad():
            software = model(Tensor(test.images)).data
        result = engine.run(test.images, backend="ideal")
        np.testing.assert_allclose(result.logits, software, rtol=1e-10)

    def test_vgg_ideal_matches_software_model(self, quick_vgg):
        model, _, test = quick_vgg
        engine = Engine.from_model(model)
        images = test.images[:16]
        with no_grad():
            software = model(Tensor(images)).data.argmax(axis=1)
        result = engine.run(images, backend="ideal")
        np.testing.assert_array_equal(result.predictions, software)

    def test_evaluate_matches_legacy_evaluate_accuracy(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        legacy = evaluate_accuracy(network, test.images, test.labels, mode="ideal")
        engine_acc = Engine(network).evaluate(test.images, test.labels,
                                              backend="ideal")
        assert engine_acc == legacy


class TestSharedSessionAcrossBackends:
    """Acceptance: all four first-class backends run the same batched
    request through one shared Session."""

    def test_all_backends_one_session(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        session = engine.session(seed=7)
        images, labels = test.images[:48], test.labels[:48]
        for backend in FIRST_CLASS:
            result = session.run(images, labels=labels, backend=backend)
            assert result.backend == backend
            assert result.logits.shape == (48, 10)
            assert result.batch_size == 48
            assert 0.0 <= result.accuracy <= 1.0

    def test_all_backends_one_session_vgg(self, quick_vgg):
        model, _, test = quick_vgg
        session = Engine.from_model(model).session(seed=3)
        images = test.images[:8]
        for backend in FIRST_CLASS:
            result = session.run(images, backend=backend)
            assert result.logits.shape == (8, 10)

    def test_stochastic_backends_sane_accuracy(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        ideal = engine.evaluate(test.images, test.labels, backend="ideal")
        for backend in ALL_STOCHASTIC:
            acc = engine.evaluate(test.images, test.labels, backend=backend)
            assert acc > 0.2, backend  # far above 10% chance
            assert acc <= ideal + 0.15, backend


class TestSessionSemantics:
    def test_same_seed_replays_identically(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        images = test.images[:32]
        for backend in ALL_STOCHASTIC:
            a = engine.session(seed=11).run(images, backend=backend)
            b = engine.session(seed=11).run(images, backend=backend)
            np.testing.assert_array_equal(a.logits, b.logits)

    def test_interleaved_sessions_do_not_clobber_each_other(self, quick_mlp):
        """Constructing or running another session on the same engine
        must not change what a seeded session produces — each run
        re-establishes its own sampler state on the shared layers."""
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        images = test.images[:24]
        for backend in ALL_STOCHASTIC:
            reference = engine.session(seed=11).run(images, backend=backend)
            victim = engine.session(seed=11)
            intruder = engine.session(seed=99)
            intruder.run(images, backend=backend)
            result = victim.run(images, backend=backend)
            np.testing.assert_array_equal(result.logits, reference.logits,
                                          err_msg=backend)

    def test_successive_runs_in_one_session_stay_stochastic(self, quick_mlp):
        model, _, test = quick_mlp
        session = Engine.from_model(model).session(seed=5)
        images = test.images[:64]
        a = session.run(images, backend="stochastic")
        b = session.run(images, backend="stochastic")
        assert not np.array_equal(a.logits, b.logits)

    def test_different_seeds_differ(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        images = test.images[:64]
        a = engine.session(seed=1).run(images, backend="stochastic-fused-batched")
        b = engine.session(seed=2).run(images, backend="stochastic-fused-batched")
        assert not np.array_equal(a.logits, b.logits)

    def test_micro_batching_invariant_for_ideal(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        whole = engine.run(test.images, backend="ideal", micro_batch=None)
        sharded = engine.run(test.images, backend="ideal", micro_batch=7)
        np.testing.assert_array_equal(whole.logits, sharded.logits)
        assert sharded.micro_batches == -(-len(test.images) // 7)
        assert whole.micro_batches == 1

    def test_run_many(self, quick_mlp):
        model, _, test = quick_mlp
        session = Engine.from_model(model).session(seed=0)
        results = session.run_many([test.images[:4], test.images[4:12]],
                                   backend="ideal")
        assert [r.batch_size for r in results] == [4, 8]

    def test_empty_request_returns_empty_logits(self, quick_mlp):
        """Legacy executor behavior: an N=0 batch yields (0, n_classes)."""
        model, _, test = quick_mlp
        network = compile_model(model)
        engine = Engine(network)
        for backend in ("ideal",) + ALL_STOCHASTIC:
            result = engine.run(test.images[:0], backend=backend)
            assert result.logits.shape == (0, 10), backend
            assert result.batch_size == 0
        assert run_network(network, test.images[:0], mode="ideal").shape == (0, 10)

    def test_invalid_micro_batch_rejected(self, quick_mlp):
        model, _, _ = quick_mlp
        engine = Engine.from_model(model)
        with pytest.raises(ValueError):
            engine.session(micro_batch=0)


class TestInferenceResultTelemetry:
    def test_workloads_match_legacy_network_workloads(self, quick_vgg):
        model, train, test = quick_vgg
        network = compile_model(model)
        engine = Engine(network)
        result = engine.run(test.images[:8], backend="ideal")
        assert result.workloads == network_workloads(network, train.image_shape)

    def test_workloads_feed_cost_model(self, quick_vgg):
        model, train, test = quick_vgg
        engine = Engine.from_model(model)
        result = engine.run(test.images[:8], backend="stochastic")
        cost = AcceleratorCostModel(engine.config, result.workloads)
        assert cost.energy_efficiency_tops_per_w() > 0

    def test_window_counts(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        n = 16
        stochastic = engine.run(test.images[:n], backend="stochastic")
        ideal = engine.run(test.images[:n], backend="ideal")
        assert ideal.total_windows == 0
        # MLP: 144->32 on Cs=16 crossbars = 9x2 tiles, plus head (software).
        layer = engine.tiled_layers[0]
        expected = n * layer.n_row_tiles * layer.n_col_tiles
        assert stochastic.total_windows == expected

    def test_telemetry_accumulates_across_micro_batches(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        whole = engine.run(test.images[:32], backend="stochastic",
                           micro_batch=None)
        sharded = engine.run(test.images[:32], backend="stochastic",
                             micro_batch=8)
        assert sharded.total_windows == whole.total_windows
        assert len(sharded.layers) == len(whole.layers)

    def test_summary_and_labels(self, quick_mlp):
        model, _, test = quick_mlp
        engine = Engine.from_model(model)
        result = engine.run(test.images[:16], labels=test.labels[:16],
                            backend="ideal")
        summary = result.summary()
        assert summary["backend"] == "ideal"
        assert summary["accuracy"] == result.accuracy
        assert result.wall_time_s > 0
        unlabelled = engine.run(test.images[:4], backend="ideal")
        assert unlabelled.accuracy is None


class TestBackendRegistry:
    def test_first_class_backends_registered(self):
        names = available_backends()
        for expected in ("ideal", "stochastic", "stochastic-dense",
                         "stochastic-packed", "stochastic-fused-batched"):
            assert expected in names

    def test_aliases_resolve(self):
        assert get_backend("exact").name == "ideal"
        assert get_backend("auto").name == "stochastic"

    def test_unknown_backend_rejected_with_listing(self, quick_mlp):
        with pytest.raises(KeyError, match="stochastic-packed"):
            get_backend("nonsense")
        model, _, _ = quick_mlp
        with pytest.raises(KeyError):
            Engine.from_model(model, backend="nonsense")

    def test_instance_passthrough(self):
        backend = get_backend("ideal")
        assert get_backend(backend) is backend

    def test_custom_backend_plugs_in(self, quick_mlp):
        @register_backend("test-constant-one", summary="test-only")
        class ConstantBackend:
            deterministic = True

            def run_layer(self, layer, flat, *, rng, validate=None):
                return np.ones((flat.shape[0], layer.out_features))

        try:
            model, _, test = quick_mlp
            engine = Engine.from_model(model, backend="test-constant-one")
            result = engine.run(test.images[:4])
            assert result.backend == "test-constant-one"
            assert result.logits.shape == (4, 10)
        finally:
            from repro.api import backends as backends_module

            backends_module._REGISTRY.pop("test-constant-one", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("ideal")(object)


class TestEngineBuilder:
    def test_fluent_build(self, quick_mlp):
        model, _, test = quick_mlp
        engine = (
            EngineBuilder()
            .model(model)
            .hardware(window_bits=4)
            .seed(5)
            .backend("ideal")
            .micro_batch(16)
            .build()
        )
        assert engine.config.window_bits == 4
        assert engine.config.crossbar_size == model.hardware.crossbar_size
        assert engine.backend == "ideal"
        assert engine.micro_batch == 16
        assert engine.run(test.images[:4]).logits.shape == (4, 10)

    def test_hardware_calls_accumulate(self, quick_mlp):
        """A later overrides-only hardware() call refines, not discards,
        the previously supplied base config."""
        model, _, _ = quick_mlp
        base = model.hardware.with_(gray_zone_ua=99.0)
        engine = (
            EngineBuilder()
            .model(model)
            .hardware(base)
            .hardware(window_bits=2)
            .build()
        )
        assert engine.config.gray_zone_ua == 99.0
        assert engine.config.window_bits == 2

    def test_builder_from_engine_staticmethod(self, quick_mlp):
        model, _, _ = quick_mlp
        engine = Engine.builder().model(model).build()
        assert engine.backend == "stochastic"
        assert engine.micro_batch == DEFAULT_MICRO_BATCH

    def test_network_exclusive_with_model(self, quick_mlp):
        model, _, _ = quick_mlp
        network = compile_model(model)
        with pytest.raises(ValueError):
            EngineBuilder().network(network).model(model).build()

    def test_builder_needs_a_source(self):
        with pytest.raises(ValueError):
            EngineBuilder().build()

    def test_builder_rejects_bad_backend_early(self, quick_mlp):
        with pytest.raises(KeyError):
            EngineBuilder().backend("bogus")
