"""Tests for Module/Parameter containers and the standard layer zoo."""

import numpy as np
import pytest

from repro.autograd import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    HardTanh,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)


class TestModuleTree:
    def test_parameter_registration(self):
        lin = Linear(3, 2)
        names = [n for n, _ in lin.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_discovery(self):
        seq = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        params = seq.parameters()
        assert len(params) == 4  # two weights + two biases

    def test_zero_grad_clears(self):
        lin = Linear(2, 2)
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), BatchNorm1d(2))
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, seed=0)
        b = Linear(3, 2, seed=1)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_missing_key_raises(self):
        lin = Linear(3, 2)
        with pytest.raises(KeyError):
            lin.load_state_dict({})

    def test_state_dict_shape_mismatch_raises(self):
        lin = Linear(3, 2)
        state = lin.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm1d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_sequential_iteration_and_indexing(self):
        layers = [Linear(2, 2), ReLU()]
        seq = Sequential(*layers)
        assert len(seq) == 2
        assert seq[0] is layers[0]
        assert list(seq) == layers


class TestLinear:
    def test_forward_matches_manual(self, rng):
        lin = Linear(4, 3, seed=0)
        x = rng.normal(size=(5, 4))
        expected = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, expected, rtol=1e-12)

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False)
        assert lin.bias is None
        out = lin(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.data, np.zeros((1, 3)))


class TestConv2dLayer:
    def test_shapes(self, rng):
        conv = Conv2d(3, 8, kernel_size=3, padding=1, seed=0)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_stride_halves_spatial(self, rng):
        conv = Conv2d(1, 1, kernel_size=2, stride=2, seed=0)
        out = conv(Tensor(rng.normal(size=(1, 1, 8, 8))))
        assert out.shape == (1, 1, 4, 4)


class TestBatchNorm:
    def test_normalizes_batch_statistics(self, rng):
        bn = BatchNorm1d(6)
        x = rng.normal(loc=5.0, scale=3.0, size=(128, 6))
        out = bn(Tensor(x))
        assert np.abs(out.data.mean(axis=0)).max() < 1e-8
        np.testing.assert_allclose(out.data.std(axis=0), np.ones(6), atol=1e-6)

    def test_running_stats_update(self, rng):
        bn = BatchNorm1d(2, momentum=0.5)
        x = rng.normal(loc=4.0, size=(64, 2))
        bn(Tensor(x))
        assert np.all(bn.running_mean > 1.0)  # moved toward 4

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(3)
        for _ in range(30):
            bn(Tensor(rng.normal(loc=2.0, size=(64, 3))))
        bn.eval()
        x = rng.normal(loc=2.0, size=(8, 3))
        out = bn(Tensor(x))
        expected = (x - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(out.data, expected, rtol=1e-6)

    def test_2d_shape_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(np.zeros((2, 3))))
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4, 4))))

    def test_2d_normalizes_per_channel(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(loc=1.0, scale=2.0, size=(8, 4, 5, 5))
        out = bn(Tensor(x))
        means = out.data.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(means, np.zeros(4), atol=1e-10)

    def test_inference_affine_folding(self, rng):
        """inference_affine must reproduce eval-mode BN exactly."""
        bn = BatchNorm1d(3)
        for _ in range(10):
            bn(Tensor(rng.normal(size=(32, 3))))
        bn.weight.data = rng.normal(size=3)
        bn.bias.data = rng.normal(size=3)
        bn.eval()
        x = rng.normal(size=(16, 3))
        scale, shift = bn.inference_affine()
        np.testing.assert_allclose(
            bn(Tensor(x)).data, x * scale + shift, rtol=1e-10
        )

    def test_gradients_flow_to_gamma_beta(self, rng):
        bn = BatchNorm1d(3)
        out = bn(Tensor(rng.normal(size=(16, 3))))
        (out * out).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_last_stats_stashed(self, rng):
        bn = BatchNorm1d(3)
        x = rng.normal(loc=7.0, size=(64, 3))
        bn(Tensor(x))
        np.testing.assert_allclose(bn.last_mean, x.mean(axis=0), rtol=1e-10)


class TestActivationsAndShapes:
    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 1.0])))
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_hardtanh_custom_bounds(self):
        out = HardTanh(-2.0, 2.0)(Tensor(np.array([-3.0, 0.0, 3.0])))
        np.testing.assert_allclose(out.data, [-2.0, 0.0, 2.0])

    def test_identity(self):
        x = Tensor(np.array([1.0]))
        assert Identity()(x) is x

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_maxpool_layer(self):
        out = MaxPool2d(2)(Tensor(np.arange(16.0).reshape(1, 1, 4, 4)))
        assert out.shape == (1, 1, 2, 2)


class TestParameter:
    def test_requires_grad_by_default(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_custom_module_forward_required(self):
        class Broken(Module):
            pass

        with pytest.raises(NotImplementedError):
            Broken()(Tensor([1.0]))
