"""Tests for hardware-faithful execution, incl. software equivalence."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import compile_model
from repro.mapping.executor import (
    evaluate_accuracy,
    network_workloads,
    run_network,
)

from tests.test_mapping_compiler import quick_mlp, quick_vgg  # noqa: F401  (fixtures)


class TestIdealEquivalence:
    """The central correctness property: the compiled network in ideal
    mode must agree with the software model evaluated deterministically
    — BN matching, gamma flips, tiling, and lowering are all exact."""

    def test_mlp_bit_exact(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        with no_grad():
            software = model(Tensor(test.images)).data.argmax(axis=1)
        hardware = network.predict(test.images, mode="ideal")
        np.testing.assert_array_equal(software, hardware)

    def test_vgg_bit_exact(self, quick_vgg):
        model, _, test = quick_vgg
        network = compile_model(model)
        images = test.images[:24]
        with no_grad():
            software = model(Tensor(images)).data.argmax(axis=1)
        hardware = network.predict(images, mode="ideal")
        np.testing.assert_array_equal(software, hardware)

    def test_ideal_logits_match_not_just_argmax(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        images = test.images[:16]
        with no_grad():
            software = model(Tensor(images)).data
        hardware = run_network(network, images, mode="ideal")
        np.testing.assert_allclose(hardware, software, rtol=1e-10)


class TestStochasticExecution:
    def test_stochastic_accuracy_reasonable(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        acc_ideal = evaluate_accuracy(network, test.images, test.labels, mode="ideal")
        acc_stoch = evaluate_accuracy(
            network, test.images, test.labels, mode="stochastic"
        )
        assert acc_stoch > 0.2  # far above 10% chance
        assert acc_stoch <= acc_ideal + 0.1

    def test_longer_window_not_worse(self, quick_mlp):
        model, _, test = quick_mlp
        images, labels = test.images[:80], test.labels[:80]
        accs = {}
        for window in (1, 32):
            network = compile_model(
                model, model.hardware.with_(window_bits=window)
            )
            accs[window] = evaluate_accuracy(network, images, labels)
        assert accs[32] >= accs[1] - 0.05

    def test_invalid_mode_rejected(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        with pytest.raises(ValueError):
            run_network(network, test.images[:2], mode="quantum")

    def test_compiled_network_forward_alias(self, quick_mlp):
        model, _, test = quick_mlp
        network = compile_model(model)
        logits = network.forward(test.images[:4], mode="ideal")
        assert logits.shape == (4, 10)


class TestWorkloads:
    def test_mlp_workloads(self, quick_mlp):
        model, train, _ = quick_mlp
        network = compile_model(model)
        workloads = network_workloads(network, train.image_shape)
        assert [w.in_features for w in workloads] == [144, 32]
        assert all(w.positions == 1 for w in workloads)

    def test_vgg_workloads_have_spatial_positions(self, quick_vgg):
        model, train, _ = quick_vgg
        network = compile_model(model)
        workloads = network_workloads(network, train.image_shape)
        conv_loads = [w for w in workloads if w.positions > 1]
        assert conv_loads[0].positions == 16 * 16
        # After the first pool the positions shrink by 4x.
        assert conv_loads[2].positions == 8 * 8

    def test_workloads_feed_cost_model(self, quick_vgg):
        from repro.hardware.cost import AcceleratorCostModel

        model, train, _ = quick_vgg
        network = compile_model(model)
        workloads = network_workloads(network, train.image_shape)
        cost = AcceleratorCostModel(network.config, workloads)
        assert cost.energy_efficiency_tops_per_w() > 0

    def test_thermometer_multiplies_channels(self, quick_vgg):
        model, train, _ = quick_vgg
        network = compile_model(model)
        workloads = network_workloads(network, train.image_shape)
        assert workloads[0].in_features == 3 * 4 * 9  # c * levels * k^2


class TestPoolStageSemantics:
    def test_pool_of_pm_ones_is_or(self):
        from repro.mapping.compiler import PoolStage
        from repro.mapping.executor import _run_pool

        x = -np.ones((1, 1, 4, 4))
        x[0, 0, 0, 1] = 1.0
        out = _run_pool(PoolStage(kernel=2), x)
        assert out[0, 0, 0, 0] == 1.0  # any +1 in the window wins
        assert out[0, 0, 1, 1] == -1.0

    def test_pool_shape_validation(self):
        from repro.mapping.compiler import PoolStage
        from repro.mapping.executor import _run_pool

        with pytest.raises(ValueError):
            _run_pool(PoolStage(kernel=2), np.ones((1, 1, 5, 5)))
