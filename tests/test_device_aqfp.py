"""Tests for the AQFP device physics: junctions, buffers, gray zones."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.aqfp import AqfpBuffer, ValueDomainBuffer
from repro.device.josephson import (
    FLUX_QUANTUM_WB,
    JosephsonJunction,
    gray_zone_width,
    thermal_current_scale,
)


class TestJosephsonJunction:
    def test_josephson_energy_formula(self):
        jj = JosephsonJunction(critical_current_ua=50.0)
        expected = 50e-6 * FLUX_QUANTUM_WB / (2 * math.pi)
        assert jj.josephson_energy_j == pytest.approx(expected)

    def test_switching_energy_order_of_magnitude(self):
        # Ic * Phi0 for 50 uA is ~1e-19 J — the SFQ-style bound; adiabatic
        # operation is far below it.
        jj = JosephsonJunction(critical_current_ua=50.0)
        assert 1e-20 < jj.switching_energy_j() < 1e-18

    def test_thermal_ratio_small_at_4k(self):
        jj = JosephsonJunction(critical_current_ua=50.0)
        assert jj.thermal_ratio(4.2) < 0.01  # junction is stable

    def test_invalid_critical_current(self):
        with pytest.raises(ValueError):
            JosephsonJunction(critical_current_ua=0.0)

    def test_negative_temperature_rejected(self):
        jj = JosephsonJunction()
        with pytest.raises(ValueError):
            jj.thermal_ratio(-1.0)


class TestGrayZoneWidth:
    def test_matches_reference_at_4p2k(self):
        assert gray_zone_width(4.2) == pytest.approx(2.4)

    def test_thermal_scaling_two_thirds_power(self):
        ratio = gray_zone_width(8.4) / gray_zone_width(4.2)
        assert ratio == pytest.approx(2 ** (2 / 3), rel=1e-9)

    def test_quantum_saturation_at_low_temperature(self):
        assert gray_zone_width(0.0) == gray_zone_width(0.3)
        assert gray_zone_width(0.01) > 0

    def test_monotone_above_crossover(self):
        temps = [0.5, 1.0, 2.0, 4.2, 10.0]
        widths = [gray_zone_width(t) for t in temps]
        assert all(a < b for a, b in zip(widths, widths[1:]))

    def test_thermal_current_scale_positive(self):
        assert thermal_current_scale(JosephsonJunction(), 4.2) > 0

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            gray_zone_width(-0.1)


class TestAqfpBuffer:
    def test_probability_half_at_threshold(self):
        buf = AqfpBuffer(gray_zone_ua=2.4, threshold_ua=1.0)
        assert buf.probability_of_one(1.0) == pytest.approx(0.5)

    def test_probability_monotone_in_current(self):
        buf = AqfpBuffer()
        currents = np.linspace(-5, 5, 21)
        p = buf.probability_of_one(currents)
        assert np.all(np.diff(p) > 0)

    def test_probability_saturates(self):
        buf = AqfpBuffer(gray_zone_ua=2.4)
        assert buf.probability_of_one(10.0) > 0.999999
        assert buf.probability_of_one(-10.0) < 1e-6

    def test_paper_equation_1_exact(self):
        """P = 0.5 + 0.5 erf(sqrt(pi)(I - Ith)/dI) — spot check."""
        from scipy import special

        buf = AqfpBuffer(gray_zone_ua=3.0, threshold_ua=0.5)
        i = 1.7
        expected = 0.5 + 0.5 * special.erf(math.sqrt(math.pi) * (i - 0.5) / 3.0)
        assert buf.probability_of_one(i) == pytest.approx(expected, rel=1e-12)

    def test_expected_output_consistent_with_probability(self):
        buf = AqfpBuffer()
        i = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(
            buf.expected_output(i), 2 * buf.probability_of_one(i) - 1, rtol=1e-12
        )

    def test_boundary_near_2ua_for_default_width(self):
        """Paper Fig. 4: randomized switching confined to about +-2 uA."""
        buf = AqfpBuffer(gray_zone_ua=2.4)
        boundary = buf.gray_zone_boundary_ua(confidence=0.99)
        assert 1.5 < boundary < 2.5

    def test_sampling_matches_probability(self):
        buf = AqfpBuffer(gray_zone_ua=2.4, seed=0)
        samples = buf.sample(np.full(20000, 0.8))
        empirical = (samples > 0).mean()
        assert empirical == pytest.approx(buf.probability_of_one(0.8), abs=0.02)

    def test_sample_window_shape_and_alphabet(self):
        buf = AqfpBuffer(seed=0)
        window = buf.sample_window(np.zeros((3, 2)), window_bits=7)
        assert window.shape == (7, 3, 2)
        assert set(np.unique(window)) <= {-1.0, 1.0}

    def test_sample_deterministic_with_seed(self):
        a = AqfpBuffer(seed=5).sample(np.zeros(10))
        b = AqfpBuffer(seed=5).sample(np.zeros(10))
        np.testing.assert_array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AqfpBuffer(gray_zone_ua=0.0)
        with pytest.raises(ValueError):
            AqfpBuffer().sample_window(np.zeros(2), window_bits=0)
        with pytest.raises(ValueError):
            AqfpBuffer().gray_zone_boundary_ua(confidence=0.4)

    def test_threshold_shifts_curve(self):
        base = AqfpBuffer(gray_zone_ua=2.4, threshold_ua=0.0)
        shifted = AqfpBuffer(gray_zone_ua=2.4, threshold_ua=1.0)
        assert shifted.probability_of_one(1.0) == pytest.approx(
            base.probability_of_one(0.0)
        )


class TestValueDomainBuffer:
    def test_from_current_domain_conversion(self):
        """Eq. 4: dVin = dIin / I1(Cs)."""
        current = AqfpBuffer(gray_zone_ua=2.4, threshold_ua=1.2)
        value = ValueDomainBuffer.from_current_domain(current, unit_current_ua=4.0)
        assert value.gray_zone_value == pytest.approx(0.6)
        assert value.threshold_value == pytest.approx(0.3)

    def test_probability_equivalence_between_domains(self):
        """Pv(x) must equal P(x * I1) — the two domains are one law."""
        current = AqfpBuffer(gray_zone_ua=2.4, threshold_ua=1.2)
        unit = 3.5
        value = ValueDomainBuffer.from_current_domain(current, unit)
        xs = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(
            value.probability_of_one(xs),
            current.probability_of_one(xs * unit),
            rtol=1e-12,
        )

    def test_expected_output_is_erf(self):
        from scipy import special

        buf = ValueDomainBuffer(gray_zone_value=0.8)
        x = 0.3
        expected = special.erf(math.sqrt(math.pi) * x / 0.8)
        assert buf.expected_output(x) == pytest.approx(expected)

    def test_sample_window_shape(self):
        buf = ValueDomainBuffer(gray_zone_value=1.0, seed=0)
        assert buf.sample_window(np.zeros(4), 5).shape == (5, 4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ValueDomainBuffer(gray_zone_value=-1.0)
        with pytest.raises(ValueError):
            ValueDomainBuffer.from_current_domain(AqfpBuffer(), unit_current_ua=0.0)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=20.0),
    st.floats(min_value=-10.0, max_value=10.0),
)
def test_probability_complement_symmetry(gray_zone, current):
    """Property: P(Ith + d) + P(Ith - d) == 1 (erf antisymmetry)."""
    buf = AqfpBuffer(gray_zone_ua=gray_zone, threshold_ua=0.0)
    total = buf.probability_of_one(current) + buf.probability_of_one(-current)
    assert total == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.5, max_value=10.0), st.floats(min_value=0.5, max_value=50.0))
def test_value_domain_roundtrip(gray_zone, unit):
    """Property: converting to the value domain preserves probabilities."""
    current = AqfpBuffer(gray_zone_ua=gray_zone)
    value = ValueDomainBuffer.from_current_domain(current, unit)
    x = 1.234
    assert value.probability_of_one(x) == pytest.approx(
        float(current.probability_of_one(x * unit)), rel=1e-9
    )
