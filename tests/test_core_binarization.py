"""Tests for weight/activation binarization and their custom gradients."""

import math

import numpy as np
import pytest
from scipy import special

from repro.autograd import Tensor
from repro.core.binarization import (
    binarize_weights,
    deterministic_sign,
    expected_binary_activation,
    randomized_sign,
)


class TestWeightBinarize:
    def test_forward_is_sign_with_plus_at_zero(self):
        w = Tensor(np.array([-0.5, 0.0, 0.7]))
        np.testing.assert_array_equal(binarize_weights(w).data, [-1.0, 1.0, 1.0])

    def test_ste_passes_gradient_inside_unit_interval(self):
        w = Tensor(np.array([-0.5, 0.5]), requires_grad=True)
        binarize_weights(w).sum().backward()
        np.testing.assert_allclose(w.grad, [1.0, 1.0])

    def test_ste_clips_gradient_outside_unit_interval(self):
        w = Tensor(np.array([-2.0, 2.0, 0.9]), requires_grad=True)
        binarize_weights(w).sum().backward()
        np.testing.assert_allclose(w.grad, [0.0, 0.0, 1.0])

    def test_deterministic_sign_alias(self):
        x = Tensor(np.array([-1.0, 1.0]))
        np.testing.assert_array_equal(deterministic_sign(x).data, [-1.0, 1.0])


class TestRandomizedSign:
    def test_output_alphabet(self):
        x = Tensor(np.zeros(100))
        out = randomized_sign(x, gray_zone=1.0, seed=0)
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_sampling_statistics_follow_eq7(self):
        """P(+1) = 0.5 + 0.5 erf(sqrt(pi) x / dVin)."""
        value = 0.3
        x = Tensor(np.full(40000, value))
        out = randomized_sign(x, gray_zone=1.0, seed=1)
        expected = 0.5 + 0.5 * special.erf(math.sqrt(math.pi) * value)
        assert (out.data > 0).mean() == pytest.approx(expected, abs=0.01)

    def test_deterministic_mode_is_sign(self):
        x = Tensor(np.array([-0.2, 0.0, 0.2]))
        out = randomized_sign(x, gray_zone=1.0, stochastic=False)
        np.testing.assert_array_equal(out.data, [-1.0, 1.0, 1.0])

    def test_negative_scale_flips_probability(self):
        """Eq. 15: negative BN slope inverts the output distribution."""
        x = Tensor(np.full(40000, 0.5))
        pos = randomized_sign(x, gray_zone=1.0, scale=1.0, seed=2)
        neg = randomized_sign(x, gray_zone=1.0, scale=-1.0, seed=3)
        p_pos = (pos.data > 0).mean()
        p_neg = (neg.data > 0).mean()
        assert p_pos + p_neg == pytest.approx(1.0, abs=0.02)

    def test_threshold_shifts_decision(self):
        x = Tensor(np.full(40000, 0.5))
        out = randomized_sign(x, gray_zone=1.0, threshold=0.5, seed=4)
        assert (out.data > 0).mean() == pytest.approx(0.5, abs=0.02)

    def test_backward_is_erf_derivative(self):
        """Eq. 10: dE[ab]/dx = 2 exp(-pi x^2 / dVin^2) / dVin * scale."""
        values = np.array([-1.0, -0.3, 0.0, 0.3, 1.0])
        gray = 0.8
        x = Tensor(values, requires_grad=True)
        randomized_sign(x, gray_zone=gray, seed=0).sum().backward()
        z = math.sqrt(math.pi) * values / gray
        expected = 2.0 * np.exp(-z * z) / gray
        np.testing.assert_allclose(x.grad, expected, rtol=1e-10)

    def test_backward_scale_factor(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        randomized_sign(x, gray_zone=1.0, scale=3.0, seed=0).sum().backward()
        assert x.grad[0] == pytest.approx(6.0)  # 2 * scale / gray

    def test_window_majority_reduces_variance(self):
        """Majority over L samples concentrates toward sign(E[ab])."""
        value = 0.2
        x = Tensor(np.full(5000, value))
        single = randomized_sign(x, gray_zone=1.0, seed=5, window_bits=1)
        wide = randomized_sign(x, gray_zone=1.0, seed=6, window_bits=33)
        assert (wide.data > 0).mean() > (single.data > 0).mean()

    def test_window_tie_resolves_positive(self):
        x = Tensor(np.zeros(2000))
        out = randomized_sign(x, gray_zone=1.0, seed=7, window_bits=2)
        # ties (1 of 2 bits) resolve to +1, so P(+1) = p^2 + 2p(1-p) = 0.75
        assert (out.data > 0).mean() == pytest.approx(0.75, abs=0.03)

    def test_validation(self):
        x = Tensor(np.zeros(3))
        with pytest.raises(ValueError):
            randomized_sign(x, gray_zone=0.0)
        with pytest.raises(ValueError):
            randomized_sign(x, gray_zone=1.0, window_bits=0)

    def test_seeded_reproducibility(self):
        x = Tensor(np.zeros(50))
        a = randomized_sign(x, gray_zone=1.0, seed=9)
        b = randomized_sign(x, gray_zone=1.0, seed=9)
        np.testing.assert_array_equal(a.data, b.data)


class TestExpectedBinaryActivation:
    def test_matches_erf_formula(self):
        values = np.linspace(-2, 2, 9)
        expected = special.erf(math.sqrt(math.pi) * (values - 0.1) / 0.7)
        np.testing.assert_allclose(
            expected_binary_activation(values, gray_zone=0.7, threshold=0.1),
            expected,
        )

    def test_antisymmetric_around_threshold(self):
        a = expected_binary_activation(np.array([1.5]), 1.0, threshold=1.0)
        b = expected_binary_activation(np.array([0.5]), 1.0, threshold=1.0)
        assert a[0] == pytest.approx(-b[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_binary_activation(np.zeros(2), gray_zone=-1.0)
