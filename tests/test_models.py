"""Tests for the model zoo: MLP, VGG-small, ResNet-18."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.hardware.config import HardwareConfig
from repro.models import Mlp, ResNet18, VggSmall
from repro.models.common import InputBinarize, ThermometerEncode, set_sample_in_eval


class TestInputEncodings:
    def test_input_binarize_signs(self):
        out = InputBinarize()(Tensor(np.array([[-0.5, 0.0, 0.5]])))
        np.testing.assert_array_equal(out.data, [[-1.0, 1.0, 1.0]])

    def test_thermometer_channel_expansion(self, rng):
        enc = ThermometerEncode(levels=4)
        x = Tensor(rng.uniform(-1, 1, size=(2, 3, 5, 5)))
        out = enc(x)
        assert out.shape == (2, 12, 5, 5)
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_thermometer_monotone_planes(self):
        """Higher-threshold planes can only turn off, never on."""
        enc = ThermometerEncode(levels=4)
        x = Tensor(np.full((1, 1, 2, 2), 0.3))
        out = enc(x).data.reshape(4, -1)
        ones_per_plane = (out > 0).sum(axis=1)
        assert all(a >= b for a, b in zip(ones_per_plane, ones_per_plane[1:]))

    def test_thermometer_preserves_amplitude_ordering(self):
        enc = ThermometerEncode(levels=8)
        weak = enc(Tensor(np.full((1, 1, 1, 1), 0.1))).data.sum()
        strong = enc(Tensor(np.full((1, 1, 1, 1), 0.9))).data.sum()
        assert strong > weak

    def test_thermometer_validation(self):
        with pytest.raises(ValueError):
            ThermometerEncode(levels=0)
        with pytest.raises(ValueError):
            ThermometerEncode()(Tensor(np.zeros((2, 3))))


class TestMlp:
    def test_forward_shapes(self, rng):
        model = Mlp(in_features=144, hidden=(32, 16), seed=0)
        model.train()
        out = model(Tensor(rng.uniform(-1, 1, size=(4, 1, 12, 12))))
        assert out.shape == (4, 10)

    def test_accepts_flat_input(self, rng):
        model = Mlp(in_features=20, hidden=(8,), seed=0)
        model.train()
        assert model(Tensor(rng.uniform(-1, 1, size=(3, 20)))).shape == (3, 10)

    def test_requires_hidden_layer(self):
        with pytest.raises(ValueError):
            Mlp(in_features=10, hidden=())

    def test_gradients_reach_all_parameters(self, rng):
        model = Mlp(in_features=20, hidden=(16, 8), seed=0)
        model.train()
        logits = model(Tensor(rng.uniform(-1, 1, size=(8, 20))))
        F.cross_entropy(logits, np.zeros(8, dtype=int)).backward()
        missing = [
            name
            for name, p in model.named_parameters()
            if p.grad is None or not np.any(p.grad)
        ]
        # BN biases of saturated cells can legitimately have small grads,
        # but nothing should be structurally disconnected (None).
        assert not [n for n, p in model.named_parameters() if p.grad is None], missing

    def test_deterministic_variant(self, rng):
        model = Mlp(in_features=20, hidden=(8,), stochastic=False, seed=0)
        model.train()
        x = Tensor(rng.uniform(-1, 1, size=(4, 20)))
        a = model(x).data
        model.zero_grad()
        b = model(x).data
        np.testing.assert_allclose(a, b)  # BN batch stats identical here


class TestVggSmall:
    def test_forward_shapes(self, rng):
        model = VggSmall(image_size=16, seed=0)
        model.train()
        out = model(Tensor(rng.uniform(-1, 1, size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_width_multiplier_scales_channels(self):
        small = VggSmall(image_size=16, width_multiplier=0.0625, seed=0)
        big = VggSmall(image_size=16, width_multiplier=0.25, seed=0)
        assert big.flat_features > small.flat_features

    def test_paper_scale_plan(self):
        model = VggSmall(image_size=32, width_multiplier=1.0, seed=0)
        convs = [c for c in model.features if hasattr(c, "out_channels")]
        assert [c.out_channels for c in convs] == [128, 128, 256, 256, 512, 512]

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            VggSmall(image_size=4, seed=0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            VggSmall(width_multiplier=0.0)

    def test_sign_input_mode(self, rng):
        model = VggSmall(image_size=16, input_levels=1, seed=0)
        model.train()
        out = model(Tensor(rng.uniform(-1, 1, size=(1, 3, 16, 16))))
        assert out.shape == (1, 10)


class TestResNet18:
    def test_forward_shapes(self, rng):
        model = ResNet18(image_size=16, seed=0)
        model.train()
        out = model(Tensor(rng.uniform(-1, 1, size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_has_eight_blocks(self):
        model = ResNet18(image_size=16, seed=0)
        assert len(model.blocks) == 8

    def test_projection_blocks_at_stage_boundaries(self):
        model = ResNet18(image_size=16, seed=0)
        projections = [b.needs_projection for b in model.blocks]
        assert projections == [False, False, True, False, True, False, True, False]

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            ResNet18(image_size=4, seed=0)

    def test_gradients_flow_through_blocks(self, rng):
        model = ResNet18(image_size=16, width_multiplier=0.0625, seed=0)
        model.train()
        logits = model(Tensor(rng.uniform(-1, 1, size=(2, 3, 16, 16))))
        F.cross_entropy(logits, np.array([0, 1])).backward()
        assert model.stem.weight.grad is not None
        assert model.blocks[-1].cell1.weight.grad is not None


class TestSampleInEvalToggle:
    def test_toggle_reaches_all_cells(self):
        model = VggSmall(image_size=16, seed=0)
        set_sample_in_eval(model, True)
        cells = [m for m in model.modules() if hasattr(m, "sample_in_eval")]
        assert cells and all(c.sample_in_eval for c in cells)
        set_sample_in_eval(model, False)
        assert all(not c.sample_in_eval for c in cells)
