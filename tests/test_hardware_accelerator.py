"""Tests for the tiled accelerator (multi-crossbar + SC accumulation)."""

import numpy as np
import pytest

from repro.hardware.accelerator import AqfpAccelerator, TiledLinearLayer
from repro.hardware.config import HardwareConfig


def make_layer(in_features=40, out_features=20, cs=16, gz=2.4, window=16, seed=0):
    rng = np.random.default_rng(seed)
    weights = np.where(rng.random((in_features, out_features)) < 0.5, 1.0, -1.0)
    cfg = HardwareConfig(crossbar_size=cs, gray_zone_ua=gz, window_bits=window)
    return TiledLinearLayer(cfg, weights, seed=seed), weights


class TestTiling:
    def test_tile_grid_dimensions(self):
        layer, _ = make_layer(40, 20, cs=16)
        assert layer.n_row_tiles == 3  # ceil(40/16)
        assert layer.n_col_tiles == 2  # ceil(20/16)
        assert len(layer.tiles) == 3
        assert len(layer.tiles[0]) == 2

    def test_tiles_partition_weights_exactly(self):
        layer, weights = make_layer(40, 20, cs=16)
        reassembled = np.concatenate(
            [np.concatenate([t.weights for t in row], axis=1) for row in layer.tiles],
            axis=0,
        )
        np.testing.assert_array_equal(reassembled, weights)

    def test_single_tile_case(self):
        layer, _ = make_layer(8, 8, cs=16)
        assert layer.n_row_tiles == layer.n_col_tiles == 1

    def test_threshold_divided_across_row_tiles(self):
        """Paper Sec. 5.2: Ith divided evenly over the K crossbars."""
        rng = np.random.default_rng(0)
        weights = np.where(rng.random((32, 4)) < 0.5, 1.0, -1.0)
        cfg = HardwareConfig(crossbar_size=16)
        thresholds = np.array([4.0, -2.0, 0.0, 8.0])
        layer = TiledLinearLayer(cfg, weights, threshold_ua=thresholds, seed=0)
        for row in layer.tiles:
            np.testing.assert_allclose(row[0].threshold_ua, thresholds / 2)

    def test_rejects_bad_weights(self):
        cfg = HardwareConfig(crossbar_size=8)
        with pytest.raises(ValueError):
            TiledLinearLayer(cfg, np.full((4, 4), 0.5))
        with pytest.raises(ValueError):
            TiledLinearLayer(cfg, np.ones(4))


class TestForward:
    def test_output_shape_and_alphabet(self):
        layer, _ = make_layer()
        a = np.where(np.random.default_rng(1).random((5, 40)) < 0.5, 1.0, -1.0)
        out = layer(a)
        assert out.shape == (5, 20)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_activation_validation(self):
        layer, _ = make_layer()
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 39)))

    def test_ideal_output_is_sign_of_full_product(self):
        layer, weights = make_layer()
        a = np.where(np.random.default_rng(2).random((6, 40)) < 0.5, 1.0, -1.0)
        expected = np.where(a @ weights >= 0, 1.0, -1.0)
        np.testing.assert_array_equal(layer.ideal_output(a), expected)

    def test_ideal_output_respects_thresholds(self):
        rng = np.random.default_rng(0)
        weights = np.where(rng.random((32, 4)) < 0.5, 1.0, -1.0)
        cfg = HardwareConfig(crossbar_size=16)
        thr_values = np.array([3.0, -3.0, 0.0, 1.0])
        layer = TiledLinearLayer(
            cfg, weights, threshold_ua=thr_values * cfg.unit_current_ua, seed=0
        )
        a = np.where(rng.random((8, 32)) < 0.5, 1.0, -1.0)
        expected = np.where(a @ weights >= thr_values, 1.0, -1.0)
        np.testing.assert_array_equal(layer.ideal_output(a), expected)

    def test_stochastic_agrees_with_ideal_when_noise_negligible(self):
        """Tiny gray zone + single tile -> hardware equals ideal.

        Odd fan-in guarantees no exactly-zero column sums (which would
        be legitimate coin flips for the device)."""
        layer, weights = make_layer(in_features=13, out_features=6, cs=16, gz=0.01)
        a = np.where(np.random.default_rng(3).random((10, 13)) < 0.5, 1.0, -1.0)
        np.testing.assert_array_equal(layer(a), layer.ideal_output(a))

    def test_long_window_recovers_ideal_decision_multi_tile(self):
        """In the dithering regime, longer windows converge on the true
        sign of the cross-tile sum — the SC accumulation module's job."""
        layer, weights = make_layer(
            in_features=48, out_features=8, cs=16, gz=60.0, window=512, seed=4
        )
        rng = np.random.default_rng(5)
        a = np.where(rng.random((20, 48)) < 0.5, 1.0, -1.0)
        ideal = layer.ideal_output(a)
        out = layer(a)
        clear = np.abs(a @ weights) >= 6  # decisions with margin
        agreement = (out == ideal)[clear].mean()
        assert agreement > 0.95

    def test_expected_preactivation_sign_tracks_ideal(self):
        layer, weights = make_layer(gz=5.0)
        a = np.where(np.random.default_rng(6).random((10, 40)) < 0.5, 1.0, -1.0)
        expected_sign = np.where(layer.expected_preactivation(a) >= 0, 1.0, -1.0)
        ideal = layer.ideal_output(a)
        margin = np.abs(a @ weights) >= 4
        assert (expected_sign == ideal)[margin].mean() > 0.95

    def test_pass_counters(self):
        layer, _ = make_layer(40, 20, cs=16)
        a = np.ones((3, 40))
        layer(a)
        assert layer.n_passes == 3 * 2  # row tiles x col tiles
        assert layer.n_inferences == 3

    def test_seeded_reproducibility(self):
        a = np.ones((4, 40))
        l1, _ = make_layer(seed=9)
        l2, _ = make_layer(seed=9)
        np.testing.assert_array_equal(l1(a), l2(a))


class TestAqfpAccelerator:
    def test_pipeline_forwarding(self):
        l1, _ = make_layer(in_features=24, out_features=16, cs=16, gz=0.01)
        l2, _ = make_layer(in_features=16, out_features=8, cs=16, gz=0.01, seed=1)
        acc = AqfpAccelerator([l1, l2])
        a = np.where(np.random.default_rng(0).random((5, 24)) < 0.5, 1.0, -1.0)
        out = acc(a)
        assert out.shape == (5, 8)
        assert len(acc) == 2

    def test_append(self):
        acc = AqfpAccelerator()
        layer, _ = make_layer()
        acc.append(layer)
        assert len(acc) == 1
