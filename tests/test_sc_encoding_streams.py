"""Tests for stochastic-number encodings and stream generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc.encoding import (
    bipolar_decode,
    bipolar_encode,
    bipolar_probability,
    from_wire,
    to_wire,
    unipolar_decode,
    unipolar_encode,
    unipolar_probability,
)
from repro.sc.streams import Lfsr, StreamGenerator, stochastic_cross_correlation


class TestProbabilities:
    def test_unipolar_identity(self):
        np.testing.assert_allclose(unipolar_probability(0.4), 0.4)

    def test_bipolar_mapping_paper_examples(self):
        """Paper Sec. 2.3: 0.4 -> 7/10, -0.6 -> 2/10."""
        assert bipolar_probability(0.4) == pytest.approx(0.7)
        assert bipolar_probability(-0.6) == pytest.approx(0.2)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            unipolar_probability(1.5)
        with pytest.raises(ValueError):
            unipolar_probability(-0.1)
        with pytest.raises(ValueError):
            bipolar_probability(1.5)


class TestEncodingDecoding:
    def test_unipolar_roundtrip_statistics(self):
        stream = unipolar_encode(0.3, 20000, seed=0)
        assert unipolar_decode(stream) == pytest.approx(0.3, abs=0.02)

    def test_bipolar_roundtrip_statistics(self):
        stream = bipolar_encode(-0.4, 20000, seed=0)
        assert bipolar_decode(stream) == pytest.approx(-0.4, abs=0.02)

    def test_vectorized_encoding(self):
        values = np.array([0.1, 0.5, 0.9])
        stream = unipolar_encode(values, 8, seed=0)
        assert stream.shape == (8, 3)

    def test_bipolar_decode_wire_encoding(self):
        wire = np.array([[1.0], [-1.0], [1.0], [1.0]])
        assert bipolar_decode(wire) == pytest.approx(0.5)

    def test_wire_conversions_roundtrip(self):
        bits = np.array([0, 1, 1, 0], dtype=np.int8)
        np.testing.assert_array_equal(from_wire(to_wire(bits)), bits)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            unipolar_encode(0.5, 0)
        with pytest.raises(ValueError):
            bipolar_encode(0.5, 0)


class TestLfsr:
    @pytest.mark.parametrize("width", [4, 5, 6, 7, 8])
    def test_maximal_period(self, width):
        """The Fibonacci taps must visit all 2^w - 1 non-zero states."""
        lfsr = Lfsr(width=width, seed_state=1)
        seen = set()
        for _ in range(lfsr.period):
            seen.add(lfsr.next_word())
        assert len(seen) == lfsr.period

    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(width=8, seed_state=0)

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            Lfsr(width=3)

    def test_uniform_range(self):
        samples = Lfsr(width=16).uniform(1000)
        assert np.all((samples >= 0) & (samples < 1))
        assert abs(samples.mean() - 0.5) < 0.05

    def test_encode_unipolar_statistics(self):
        stream = Lfsr(width=16).encode_unipolar(0.7, 4000)
        assert stream.mean() == pytest.approx(0.7, abs=0.03)

    def test_encode_bipolar_statistics(self):
        stream = Lfsr(width=16).encode_bipolar(-0.2, 4000)
        assert 2 * stream.mean() - 1 == pytest.approx(-0.2, abs=0.03)

    def test_words_count_validation(self):
        with pytest.raises(ValueError):
            Lfsr().words(-1)


class TestStreamGenerator:
    def test_seeded_reproducibility(self):
        a = StreamGenerator(seed=1).bipolar(0.3, 100)
        b = StreamGenerator(seed=1).bipolar(0.3, 100)
        np.testing.assert_array_equal(a, b)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            StreamGenerator().unipolar(0.5, 0)


class TestStochasticCrossCorrelation:
    def test_identical_streams_scc_one(self):
        x = np.array([1, 0, 1, 1, 0, 1] * 10)
        assert stochastic_cross_correlation(x, x) == pytest.approx(1.0)

    def test_complementary_streams_scc_minus_one(self):
        x = np.array([1, 0] * 50)
        assert stochastic_cross_correlation(x, 1 - x) == pytest.approx(-1.0)

    def test_independent_streams_near_zero(self):
        rng = np.random.default_rng(0)
        x = (rng.random(50000) < 0.5).astype(int)
        y = (rng.random(50000) < 0.5).astype(int)
        assert abs(stochastic_cross_correlation(x, y)) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_cross_correlation(np.array([1, 0]), np.array([1]))
        with pytest.raises(ValueError):
            stochastic_cross_correlation(np.array([]), np.array([]))


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=-1.0, max_value=1.0))
def test_bipolar_probability_inverse(value):
    """Property: decode(P) inverts the bipolar encoding map."""
    p = float(bipolar_probability(value))
    assert 2 * p - 1 == pytest.approx(value, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=200, max_value=800))
def test_unipolar_encode_mean_tracks_value(value, length):
    """Property: empirical ones density approaches the encoded value."""
    stream = unipolar_encode(value, length, seed=42)
    assert float(stream.mean()) == pytest.approx(value, abs=0.15)
