"""Equivalence tests for the bit-packed / fused-count sampling engine.

Three layers of guarantees:

* the packed-word APC is *bit-exact* against the unpacked counters on
  the same bits (including the approximate undercount),
* the fused ``Binomial(L, p)`` count sampler matches the moments of
  counted ``sample_window`` bits (the distributions are identical, so
  empirical moments must agree within sampling error),
* ``TiledLinearLayer.forward`` keeps the same per-column
  sign-probability as the pre-refactor bit-level simulation.
"""

import numpy as np
import pytest
from scipy import stats

from repro.circuits.apc import ApproximateParallelCounter, ExactPopcount
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.hardware.crossbar import CrossbarArray
from repro.sc.accumulate import ScAccumulationModule
from repro.sc.arithmetic import (
    sc_multiply_bipolar,
    sc_multiply_unipolar,
    sc_scaled_add,
)
from repro.sc.packed import (
    PackedStream,
    pack_bits,
    packed_word_count,
    popcount_words,
    unpack_bits,
)


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


class TestPackedPrimitives:
    @pytest.mark.parametrize("n_bits", [1, 7, 63, 64, 65, 100, 128, 130])
    def test_pack_unpack_roundtrip(self, n_bits):
        rng = np.random.default_rng(n_bits)
        bits = (rng.random((n_bits, 3, 4)) < 0.4).astype(np.int8)
        words = pack_bits(bits, axis=0)
        assert words.shape == (packed_word_count(n_bits), 3, 4)
        np.testing.assert_array_equal(unpack_bits(words, n_bits, axis=0), bits)

    def test_pack_accepts_bipolar_encoding(self):
        rng = np.random.default_rng(0)
        bipolar = pm(rng, (70, 5))
        ones = (bipolar > 0).astype(np.int8)
        np.testing.assert_array_equal(
            pack_bits(bipolar, axis=0), pack_bits(ones, axis=0)
        )

    def test_unpack_bipolar(self):
        bits = np.array([1, 0, 0, 1, 1], dtype=np.int8)
        ps = PackedStream.pack(bits)
        np.testing.assert_array_equal(
            ps.unpack(bipolar=True), np.array([1, -1, -1, 1, 1], dtype=np.int8)
        )

    def test_tail_bits_are_zero(self):
        words = pack_bits(np.ones((70, 2), dtype=np.int8), axis=0)
        # 70 bits -> word 0 full, word 1 has 6 valid bits.
        assert np.all(words[1] == np.uint64((1 << 6) - 1))

    @pytest.mark.parametrize("n_bits", [5, 64, 100])
    def test_popcount(self, n_bits):
        rng = np.random.default_rng(n_bits)
        bits = rng.random((n_bits, 6)) < 0.5
        ps = PackedStream.pack(bits, axis=0)
        np.testing.assert_array_equal(ps.popcount(), bits.sum(axis=0))
        np.testing.assert_array_equal(
            popcount_words(ps.words).sum(axis=0), bits.sum(axis=0)
        )

    @pytest.mark.parametrize("n_bits", [60, 64, 100])
    def test_packed_gate_ops_match_int8_ops(self, n_bits):
        rng = np.random.default_rng(1)
        xb = (rng.random((n_bits, 8)) < 0.5).astype(np.int8)
        yb = (rng.random((n_bits, 8)) < 0.5).astype(np.int8)
        xp, yp = PackedStream.pack(xb), PackedStream.pack(yb)

        np.testing.assert_array_equal(
            sc_multiply_unipolar(xp, yp).unpack(), sc_multiply_unipolar(xb, yb)
        )
        np.testing.assert_array_equal(
            sc_multiply_bipolar(xp, yp).unpack(), sc_multiply_bipolar(xb, yb)
        )
        # XNOR must not leak ones into the tail padding.
        assert sc_multiply_bipolar(xp, yp).popcount().max() <= n_bits

    def test_packed_mux_is_scaled_add(self):
        rng = np.random.default_rng(2)
        n_bits = 4096
        xb = (rng.random(n_bits) < 0.9).astype(np.int8)
        yb = (rng.random(n_bits) < 0.1).astype(np.int8)
        out = sc_scaled_add([PackedStream.pack(xb), PackedStream.pack(yb)], seed=3)
        assert isinstance(out, PackedStream)
        assert out.n_bits == n_bits
        # E[out] = (0.9 + 0.1) / 2 = 0.5; 4096 bits -> sigma ~ 0.008.
        assert abs(out.popcount() / n_bits - 0.5) < 0.05

    def test_mismatched_streams_rejected(self):
        a = PackedStream.pack(np.ones(10, dtype=np.int8))
        b = PackedStream.pack(np.ones(12, dtype=np.int8))
        with pytest.raises(ValueError):
            sc_multiply_unipolar(a, b)


class TestPackedApcBitExact:
    """Packed APC vs ExactPopcount and the unpacked approximate APC."""

    @pytest.mark.parametrize("n_lines", [1, 2, 5, 8, 17])
    @pytest.mark.parametrize("window", [1, 7, 64, 100, 192])
    @pytest.mark.parametrize("layers", [0, 1, 2])
    def test_count_packed_matches_unpacked(self, n_lines, window, layers):
        rng = np.random.default_rng(n_lines * 1000 + window + layers)
        bits = rng.random((n_lines, window, 5)) < 0.5
        words = pack_bits(bits, axis=1)
        apc = ApproximateParallelCounter(layers)
        reference = apc.count(bits, axis=0).sum(axis=0)
        np.testing.assert_array_equal(apc.count_packed(words), reference)

    @pytest.mark.parametrize("window", [7, 64, 100])
    def test_exact_layers_match_exact_popcount(self, window):
        rng = np.random.default_rng(window)
        bits = rng.random((6, window, 4)) < 0.5
        words = pack_bits(bits, axis=1)
        total = ExactPopcount().count(bits.reshape(-1, 4), axis=0)
        np.testing.assert_array_equal(
            ApproximateParallelCounter(0).count_packed(words), total
        )

    def test_accumulate_packed_bit_exact_vs_accumulate(self):
        """Same sampled bits through both representations -> identical output."""
        module = ScAccumulationModule(
            n_crossbars=3, window_bits=100, approximate_layers=1
        )
        rng = np.random.default_rng(9)
        bits = rng.random((3, 100, 4, 6)) < 0.5
        streams = np.where(bits, 1.0, -1.0)
        np.testing.assert_array_equal(
            module.accumulate(streams),
            module.accumulate_packed(pack_bits(bits, axis=1)),
        )

    def test_count_window_packed_shape_validation(self):
        module = ScAccumulationModule(n_crossbars=2, window_bits=70)
        ok = np.zeros((2, 2, 3), dtype=np.uint64)
        assert module.count_window_packed(ok).shape == (3,)
        with pytest.raises(ValueError):
            module.count_window_packed(np.zeros((3, 2, 3), dtype=np.uint64))
        with pytest.raises(ValueError):
            module.count_window_packed(np.zeros((2, 1, 3), dtype=np.uint64))


class TestFusedCountSampling:
    def test_counts_match_window_moments(self):
        """Binomial fast path vs counted Bernoulli bits: same distribution."""
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=20.0, window_bits=16)
        rng = np.random.default_rng(0)
        weights = pm(rng, (8, 8))
        activations = pm(rng, (2, 8))
        trials = 2000

        fast = CrossbarArray(cfg, weights, seed=1)
        slow = CrossbarArray(cfg, weights, seed=2)
        counts_fast = np.stack(
            [fast.sample_window_counts(activations) for _ in range(trials)]
        )
        counts_slow = np.stack(
            [(slow.sample_window(activations) > 0).sum(axis=0) for _ in range(trials)]
        )

        p = fast.output_probabilities(activations)
        mean_exact = 16 * p
        np.testing.assert_allclose(counts_fast.mean(axis=0), mean_exact, atol=0.35)
        np.testing.assert_allclose(counts_slow.mean(axis=0), mean_exact, atol=0.35)
        var_exact = 16 * p * (1 - p)
        np.testing.assert_allclose(counts_fast.var(axis=0), var_exact, atol=0.5)
        np.testing.assert_allclose(counts_slow.var(axis=0), var_exact, atol=0.5)

    def test_counts_bounded_by_window(self):
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=50.0, window_bits=24)
        rng = np.random.default_rng(3)
        xbar = CrossbarArray(cfg, pm(rng, (8, 4)), seed=4)
        counts = xbar.sample_window_counts(pm(rng, (16, 8)))
        assert counts.min() >= 0 and counts.max() <= 24

    def test_deterministic_probabilities_give_deterministic_counts(self):
        """Tiny gray zone -> p in {0, 1} -> counts exactly 0 or L."""
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=0.01, window_bits=16)
        rng = np.random.default_rng(5)
        weights = pm(rng, (7, 4))  # odd fan-in: no zero column sums
        xbar = CrossbarArray(cfg, weights, seed=6)
        a = pm(rng, (10, 7))
        counts = xbar.sample_window_counts(a)
        expected = np.where(a @ weights >= 0, 16, 0)
        np.testing.assert_array_equal(counts, expected)

    def test_window_bits_validation(self):
        cfg = HardwareConfig(crossbar_size=4)
        xbar = CrossbarArray(cfg, np.ones((4, 4)))
        with pytest.raises(ValueError):
            xbar.sample_window_counts(np.ones((1, 4)), window_bits=0)

    def test_long_window_mid_probability_not_degenerate(self):
        """Regression: a q**n-anchored CDF build underflows to zero for
        L=1024 with mid-range p, pinning every sample at L. The table
        sampler must keep the true spread (SC-AQFP runs L=1024)."""
        cfg = HardwareConfig(crossbar_size=8, gray_zone_ua=30.0, window_bits=1024)
        rng = np.random.default_rng(11)
        xbar = CrossbarArray(cfg, pm(rng, (8, 6)), seed=12)
        a = pm(rng, (4, 8))
        p = xbar.output_probabilities(a)
        counts = np.stack([xbar.sample_window_counts(a) for _ in range(200)])
        mid = (p > 0.2) & (p < 0.8)
        assert mid.any()  # the gray zone guarantees dithering columns
        np.testing.assert_allclose(
            counts.mean(axis=0)[mid], (1024 * p)[mid], rtol=0.05
        )
        assert counts.std(axis=0)[mid].min() > 5.0


class TestForwardSignProbability:
    """The refactored forward keeps the per-column sign-probability."""

    def _layer(self, approximate_layers=0, seed=0):
        cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=25.0, window_bits=8)
        rng = np.random.default_rng(42)
        weights = pm(rng, (40, 12))
        layer = TiledLinearLayer(
            cfg, weights, seed=seed, approximate_layers=approximate_layers
        )
        activations = pm(rng, (6, 40))
        return layer, activations

    @staticmethod
    def _bitlevel_reference_forward(layer, activations):
        """The pre-refactor execution: stack raw windows, accumulate bits."""
        chunks = layer._split_activations(activations)
        outputs = []
        for j in range(layer.n_col_tiles):
            streams = np.stack(
                [
                    layer.tiles[i][j].sample_window(chunks[i])
                    for i in range(layer.n_row_tiles)
                ],
                axis=0,
            )
            outputs.append(layer.module.accumulate(streams))
        return np.concatenate(outputs, axis=-1)

    def test_fused_forward_matches_bitlevel_sign_probability(self):
        layer, activations = self._layer()
        trials = 400
        p_fused = np.mean(
            [layer.forward(activations) > 0 for _ in range(trials)], axis=0
        )
        p_bits = np.mean(
            [
                self._bitlevel_reference_forward(layer, activations) > 0
                for _ in range(trials)
            ],
            axis=0,
        )
        # Both estimators have sigma <= 0.025 per entry at 400 trials.
        np.testing.assert_allclose(p_fused, p_bits, atol=0.12)

    def test_single_tile_matches_analytic_binomial_tail(self):
        """K=1: P(out=+1) = P(Binomial(L, p) >= L/2), computable exactly."""
        cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=25.0, window_bits=8)
        rng = np.random.default_rng(7)
        weights = pm(rng, (16, 6))
        layer = TiledLinearLayer(cfg, weights, seed=8)
        activations = pm(rng, (4, 16))
        p_bit = layer.tiles[0][0].output_probabilities(activations)
        analytic = stats.binom.sf(layer.module.reference - 1, 8, p_bit)
        trials = 500
        empirical = np.mean(
            [layer.forward(activations) > 0 for _ in range(trials)], axis=0
        )
        np.testing.assert_allclose(empirical, analytic, atol=0.1)

    def test_approximate_path_still_undercounts(self):
        """Bit-level packed path keeps the OR-compression semantics:
        the approximate layer undercounts, biasing outputs toward -1."""
        exact, activations = self._layer(approximate_layers=0, seed=1)
        approx, _ = self._layer(approximate_layers=1, seed=1)
        trials = 300
        p_exact = np.mean(
            [exact.forward(activations) > 0 for _ in range(trials)], axis=0
        )
        p_approx = np.mean(
            [approx.forward(activations) > 0 for _ in range(trials)], axis=0
        )
        assert p_approx.mean() <= p_exact.mean() + 0.02

    def test_accumulate_counts_rejects_approximate_module(self):
        module = ScAccumulationModule(
            n_crossbars=2, window_bits=8, approximate_layers=1
        )
        with pytest.raises(ValueError):
            module.accumulate_counts(np.zeros((2, 3)))

    def test_validation_flag_gates_alphabet_scan(self):
        cfg = HardwareConfig(crossbar_size=4)
        xbar = CrossbarArray(cfg, np.ones((4, 4)))
        bad = np.full((1, 4), 0.5)
        with pytest.raises(ValueError):
            xbar.sample_window_counts(bad)
        # Explicit opt-out (the executor's trusted interior layers).
        counts = xbar.sample_window_counts(bad, validate=False)
        assert counts.shape == (1, 4)
        # Config-level opt-out.
        relaxed = CrossbarArray(cfg.with_(validate_inputs=False), np.ones((4, 4)))
        assert relaxed.sample_window_counts(bad).shape == (1, 4)

    def test_int8_activations_equivalent_to_float(self):
        layer, activations = self._layer()
        a8 = activations.astype(np.int8)

        def reseed_tiles(base):
            samplers = [layer._fused_sampler] if layer._fused_sampler else [
                t for row in layer.tiles for t in row
            ]
            for k, sampler in enumerate(samplers):
                sampler.reseed(base + k)

        reseed_tiles(123)
        out_float = layer.forward(activations)
        reseed_tiles(123)
        out_int8 = layer.forward(a8)
        np.testing.assert_array_equal(out_float, out_int8)
