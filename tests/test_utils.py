"""Tests for repro.utils: RNG management and numeric helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    clip_unit_interval,
    erf,
    is_power_of_two,
    linear_interpolate,
    new_rng,
    spawn_rng,
)
from repro.utils.rng import RngMixin


class TestNewRng:
    def test_same_seed_same_stream(self):
        assert new_rng(7).random() == new_rng(7).random()

    def test_different_seeds_differ(self):
        assert new_rng(1).random() != new_rng(2).random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_children_are_independent_generators(self):
        children = spawn_rng(new_rng(0), 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_deterministic_given_parent_seed(self):
        a = [g.random() for g in spawn_rng(new_rng(5), 4)]
        b = [g.random() for g in spawn_rng(new_rng(5), 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn_rng(new_rng(0), 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(new_rng(0), -1)


class TestRngMixin:
    def test_lazy_rng_creation(self):
        obj = RngMixin()
        assert isinstance(obj.rng, np.random.Generator)

    def test_seeded_reproducibility(self):
        a, b = RngMixin(seed=3), RngMixin(seed=3)
        assert a.rng.random() == b.rng.random()

    def test_reseed(self):
        obj = RngMixin(seed=1)
        first = obj.rng.random()
        obj.reseed(1)
        assert obj.rng.random() == first


class TestNumericHelpers:
    def test_erf_matches_scipy(self):
        from scipy import special

        x = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(erf(x), special.erf(x))

    def test_clip_unit_interval(self):
        out = clip_unit_interval(np.array([-0.1, 0.5, 1.2]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    @pytest.mark.parametrize(
        "n,expected",
        [(1, True), (2, True), (16, True), (0, False), (3, False), (-4, False)],
    )
    def test_is_power_of_two(self, n, expected):
        assert is_power_of_two(n) is expected

    def test_linear_interpolate_endpoints(self):
        assert linear_interpolate(0.0, 0.0, 1.0, 5.0, 9.0) == 5.0
        assert linear_interpolate(1.0, 0.0, 1.0, 5.0, 9.0) == 9.0

    def test_linear_interpolate_midpoint(self):
        assert linear_interpolate(0.5, 0.0, 1.0, 0.0, 10.0) == pytest.approx(5.0)

    def test_linear_interpolate_degenerate_interval(self):
        assert linear_interpolate(3.0, 2.0, 2.0, 4.0, 8.0) == pytest.approx(6.0)

    @given(st.integers(min_value=1, max_value=60))
    def test_powers_of_two_property(self, k):
        assert is_power_of_two(2**k)
        if 2**k + 1 != 2:
            assert not is_power_of_two(2**k + 1) or k == 0
