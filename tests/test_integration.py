"""End-to-end integration: train -> compile -> deploy -> co-optimize.

These tests exercise the full SupeRBNN pipeline on the session-scoped
trained model (see conftest) plus a few fresh small runs, asserting the
paper's qualitative claims rather than point values.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.loaders import DataLoader
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel
from repro.mapping.compiler import compile_model
from repro.mapping.executor import evaluate_accuracy, network_workloads
from repro.models.mlp import Mlp


class TestFullPipeline:
    def test_software_model_learns(self, trained_mlp_session):
        _, _, _, accuracy = trained_mlp_session
        assert accuracy > 0.5  # 10-class task, chance = 0.1

    def test_ideal_hardware_equals_software(self, trained_mlp_session):
        model, _, test, _ = trained_mlp_session
        network = compile_model(model)
        with no_grad():
            software = model(Tensor(test.images)).data.argmax(axis=1)
        np.testing.assert_array_equal(
            network.predict(test.images, mode="ideal"), software
        )

    def test_stochastic_hardware_close_to_software(self, trained_mlp_session):
        model, _, test, accuracy = trained_mlp_session
        network = compile_model(model)
        hw_acc = evaluate_accuracy(network, test.images, test.labels)
        assert hw_acc > accuracy - 0.25
        assert hw_acc > 0.3

    def test_window_sweep_shape(self, trained_mlp_session):
        """Fig. 10 shape: accuracy at L=32 is not worse than L=1.

        Each evaluation of 120 images has a sampling sigma of ~0.045,
        so a single draw per window is a coin flip on a small trained
        model; average a few stochastic passes before comparing.
        """
        model, _, test, _ = trained_mlp_session
        images, labels = test.images[:120], test.labels[:120]
        acc = {}
        for window in (1, 32):
            network = compile_model(model, model.hardware.with_(window_bits=window))
            acc[window] = np.mean(
                [evaluate_accuracy(network, images, labels) for _ in range(5)]
            )
        assert acc[32] >= acc[1] - 0.05

    def test_cost_model_on_compiled_network(self, trained_mlp_session):
        model, train, _, _ = trained_mlp_session
        network = compile_model(model)
        workloads = network_workloads(network, train.image_shape)
        cost = AcceleratorCostModel(network.config, workloads)
        summary = cost.summary()
        assert summary["tops_per_w"] > 1e4  # superconducting territory
        assert summary["tops_per_w_cooled"] == pytest.approx(
            summary["tops_per_w"] / 400.0
        )

    def test_deploy_under_different_crossbar_size(self, trained_mlp_session):
        """Train at Cs=16, deploy at Cs=72: the compiler retiles and
        rescales thresholds via the new I1(Cs)."""
        model, _, test, _ = trained_mlp_session
        network = compile_model(model, model.hardware.with_(crossbar_size=72))
        with no_grad():
            software = model(Tensor(test.images)).data.argmax(axis=1)
        np.testing.assert_array_equal(
            network.predict(test.images, mode="ideal"), software
        )


class TestRandomizedVsDeterministicTraining:
    """The core ablation (Sec. 5.1): randomized-aware training should
    degrade less when deployed on the stochastic device."""

    @pytest.fixture(scope="class")
    def ablation(self):
        from repro.data.synthetic import make_mnist_like

        data = make_mnist_like(n_samples=900, seed=0)
        train, test = data.split(0.8, seed=1)
        hardware = HardwareConfig(crossbar_size=16, gray_zone_ua=15.0, window_bits=4)
        results = {}
        for label, stochastic in (("randomized", True), ("deterministic", False)):
            model = Mlp(
                in_features=144,
                hidden=(48,),
                hardware=hardware,
                stochastic=stochastic,
                seed=0,
            )
            trainer = Trainer(model, TrainingConfig(epochs=12, warmup_epochs=2))
            trainer.fit(DataLoader(train, 64, seed=2))
            software = trainer.evaluate(DataLoader(test, 256, shuffle=False))
            model.eval()
            network = compile_model(model, hardware)
            hardware_acc = evaluate_accuracy(
                network, test.images, test.labels, mode="stochastic"
            )
            results[label] = {"software": software, "hardware": hardware_acc}
        return results

    def test_both_variants_learn(self, ablation):
        assert ablation["randomized"]["software"] > 0.4
        assert ablation["deterministic"]["software"] > 0.4

    def test_randomized_training_usable_on_hardware(self, ablation):
        assert ablation["randomized"]["hardware"] > 0.35

    def test_randomized_training_degrades_no_more(self, ablation):
        """Hardware drop of the randomized-aware model must not exceed
        the deterministic baseline's drop by a margin."""
        drop_rand = (
            ablation["randomized"]["software"] - ablation["randomized"]["hardware"]
        )
        drop_det = (
            ablation["deterministic"]["software"]
            - ablation["deterministic"]["hardware"]
        )
        assert drop_rand <= drop_det + 0.10


class TestCooptIntegration:
    def test_optimize_then_deploy(self, trained_mlp_session):
        from repro.core.coopt import optimize_hardware_config

        model, _, test, _ = trained_mlp_session
        result = optimize_hardware_config(
            gray_zones_ua=[2.4, 10.0, 40.0],
            crossbar_sizes=[8, 16, 72],
            max_energy_per_cycle_aj=400.0,
            window_bits=8,
        )
        assert result.best_config.crossbar_size in (8, 16, 72)
        network = compile_model(model, result.best_config)
        acc = evaluate_accuracy(network, test.images[:100], test.labels[:100])
        assert acc > 0.2
