"""Runtime planning + scheduling: ExecutionPlan DAGs, scheduler
registry, tile-parallel determinism, and the shared-memory transport."""

import numpy as np
import pytest

from repro.api import Engine
from repro.hardware.accelerator import TiledLinearLayer
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import (
    CompiledNetwork,
    HeadStage,
    LinearStage,
    SignStage,
    compile_model,
)
from repro.runtime import (
    ActivationRing,
    ExecutionPlan,
    SerialScheduler,
    ShardParallelScheduler,
    TileParallelScheduler,
    available_schedulers,
    compile_plan,
    concat_plans,
    plan_shards,
    resolve_scheduler,
)
from repro.runtime import transport as transport_mod
from repro.utils.rng import new_rng

from tests.test_mapping_compiler import quick_vgg  # noqa: F401  (fixture)


def pm(rng, shape):
    return np.where(rng.random(shape) < 0.5, 1.0, -1.0)


@pytest.fixture(scope="module")
def tiled_engine():
    """A crossbar engine whose linear stage spans 4x3 tiles, so plans
    have real column-tile fan-out."""
    rng = new_rng(0)
    cfg = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    layer = TiledLinearLayer(cfg, pm(rng, (64, 48)), seed=1)
    head = HeadStage(
        weight=pm(rng, (10, 48)),
        alpha=np.ones(10),
        gamma=np.ones(10),
        beta=np.zeros(10),
        mean=np.zeros(10),
        var=np.ones(10),
        eps=1e-5,
    )
    network = CompiledNetwork([SignStage(), LinearStage(layer=layer), head], cfg)
    return Engine(network, micro_batch=8)


@pytest.fixture(scope="module")
def request_images():
    return new_rng(99).standard_normal((40, 64))


class TestExecutionPlan:
    def test_tasks_cover_shards_stages_and_tiles(self, tiled_engine):
        network = tiled_engine.network
        shard_plan = plan_shards(20, 8, rng=new_rng(0))
        plan = compile_plan(network, shard_plan, input_shape=(64,))
        assert isinstance(plan, ExecutionPlan)
        assert len(plan) == 3  # 8 + 8 + 4 rows
        layer = network.stages[1].layer
        # per shard: 1 encode + n_col_tiles linear + 1 head
        expected = len(shard_plan) * (2 + layer.n_col_tiles)
        assert len(plan.tasks) == expected
        assert plan.tile_width(1) == layer.n_col_tiles
        assert plan.tile_width(0) == plan.tile_width(2) == 1

    def test_dependencies_chain_within_shard_only(self, tiled_engine):
        plan = compile_plan(
            tiled_engine.network, plan_shards(16, 8, rng=new_rng(0)),
            input_shape=(64,),
        )
        by_id = {t.id: t for t in plan.tasks}
        for task in plan.tasks:
            for dep in task.deps:
                parent = by_id[dep]
                assert parent.shard == task.shard
                assert parent.stage == task.stage - 1
        # topological order: every dep precedes its dependent
        for task in plan.tasks:
            assert all(dep < task.id for dep in task.deps)

    def test_costs_match_window_telemetry(self, tiled_engine, request_images):
        """Plan cost estimates must equal what the telemetry measures —
        they derive from the same LayerWorkload geometry."""
        session = tiled_engine.session(seed=3)
        plan = session.preview_plan(request_images)
        result = session.run(request_images)
        assert plan.total_cost == result.total_windows
        # critical path: shards and tiles parallel, stages serial
        assert 0 < plan.critical_path_cost() <= plan.total_cost

    def test_stage_workloads_recorded(self, tiled_engine):
        plan = compile_plan(
            tiled_engine.network, plan_shards(8, 8, rng=new_rng(0)),
            input_shape=(64,),
        )
        kinds = [None if w is None else w for w in plan.stage_workloads]
        assert kinds[0] is None  # encode carries no workload
        assert plan.stage_workloads[1].in_features == 64
        assert plan.stage_workloads[1].out_features == 48
        assert plan.stage_workloads[2].out_features == 10

    def test_conv_geometry_positions(self, quick_vgg):
        model, _, test = quick_vgg
        engine = Engine.from_model(model, micro_batch=8)
        x = test.images[:4]
        plan = engine.session(seed=0).preview_plan(x)
        conv_tasks = [t for t in plan.tasks if t.kind == "conv"]
        assert conv_tasks, "VGG plan must contain conv tasks"
        assert all(t.cost > 0 for t in conv_tasks)

    def test_preview_plan_does_not_advance_session(self, tiled_engine, request_images):
        a = tiled_engine.session(seed=11)
        b = tiled_engine.session(seed=11)
        a.preview_plan(request_images)  # must not consume generator state
        ra = a.run(request_images)
        rb = b.run(request_images)
        np.testing.assert_array_equal(ra.logits, rb.logits)

    def test_concat_plans_preserves_seeds_and_offsets(self):
        a = plan_shards(10, 4, rng=new_rng(1))
        b = plan_shards(6, 4, rng=new_rng(2))
        combined = concat_plans([a, b])
        assert combined.batch_size == 16
        assert [s.seed for s in combined.shards] == [
            s.seed for s in a.shards
        ] + [s.seed for s in b.shards]
        assert [s.start for s in combined.shards] == [0, 4, 8, 10, 14]
        assert [s.index for s in combined.shards] == list(range(5))


class TestSchedulerRegistry:
    def test_first_class_schedulers_registered(self):
        names = available_schedulers()
        for name in ("serial", "shard-parallel", "tile-parallel"):
            assert name in names

    def test_resolve_by_name_and_instance(self):
        serial, owned = resolve_scheduler("serial")
        assert isinstance(serial, SerialScheduler) and not owned
        again, _ = resolve_scheduler("serial")
        assert serial is again  # stateless: shared instance
        tile, owned = resolve_scheduler("tile-parallel")
        assert isinstance(tile, TileParallelScheduler) and owned
        tile.close()
        passthrough, owned = resolve_scheduler(tile)
        assert passthrough is tile and not owned

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError):
            resolve_scheduler("nonsense")

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            TileParallelScheduler(workers=0)
        with pytest.raises(ValueError):
            ShardParallelScheduler(workers=0)
        with pytest.raises(ValueError):
            ShardParallelScheduler(transport="carrier-pigeon")

    def test_worker_cap_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_POOL_WORKERS", "2")
        sched = ShardParallelScheduler(workers=8)
        assert sched.workers == 2
        sched.close()


class TestTileParallelScheduler:
    def test_bit_identical_to_serial_packed(self, tiled_engine, request_images):
        """Column tiles draw from their own generators, so concurrent
        tile execution replays the serial packed path bit for bit."""
        serial = tiled_engine.session(seed=7, backend="stochastic-packed").run(
            request_images
        )
        with tiled_engine.session(
            seed=7, backend="stochastic-packed", scheduler="tile-parallel"
        ) as session:
            tiled = session.run(request_images)
        np.testing.assert_array_equal(tiled.logits, serial.logits)
        assert tiled.total_windows == serial.total_windows

    def test_ideal_backend_unwrapped(self, tiled_engine, request_images):
        """Deterministic strategies bypass the tile splitter."""
        serial = tiled_engine.session(backend="ideal").run(request_images)
        with tiled_engine.session(
            backend="ideal", scheduler="tile-parallel"
        ) as session:
            tiled = session.run(request_images)
        np.testing.assert_array_equal(tiled.logits, serial.logits)

    def test_counters_fold_once_per_pass(self, tiled_engine, request_images):
        layer = tiled_engine.network.stages[1].layer
        before = layer.n_passes
        with tiled_engine.session(
            seed=1, backend="stochastic-packed", scheduler="tile-parallel",
            micro_batch=None,
        ) as session:
            session.run(request_images)
        assert layer.n_passes == before + layer.n_row_tiles * layer.n_col_tiles


class TestActivationTransport:
    def test_publish_load_roundtrip(self):
        ring = ActivationRing(slots=2)
        try:
            x = new_rng(0).standard_normal((12, 7))
            lease = ring.publish(x)
            ticket = lease.ticket(3, 9)
            out = transport_mod.load(ticket)
            np.testing.assert_array_equal(out, x[3:9])
            assert out.flags.owndata  # a copy, not a view into the segment
            lease.release()
        finally:
            ring.close()

    def test_slots_are_reused_across_waves(self):
        ring = ActivationRing(slots=1)
        try:
            first = ring.publish(np.zeros((4, 4)))
            name = first.ticket(0, 4).segment
            first.release()
            second = ring.publish(np.ones((4, 4)))
            assert second.ticket(0, 4).segment == name  # same slot, reused
            second.release()
        finally:
            ring.close()

    def test_growing_wave_gets_bigger_slot(self):
        ring = ActivationRing(slots=1)
        try:
            small = ring.publish(np.zeros((2, 2)))
            small.release()
            big = np.arange(100000, dtype=np.float64).reshape(1000, 100)
            lease = ring.publish(big)
            out = transport_mod.load(lease.ticket(0, 1000))
            np.testing.assert_array_equal(out, big)
            lease.release()
        finally:
            ring.close()

    def test_closed_ring_rejects_publish(self):
        ring = ActivationRing(slots=1)
        ring.close()
        with pytest.raises(transport_mod.TransportUnavailable):
            ring.publish(np.zeros((2, 2)))

    def test_transports_bit_identical(self, tiled_engine, request_images):
        """The transport moves bytes, never randomness: shm and pickle
        produce the same logits for the same plan."""
        with ShardParallelScheduler(workers=2, transport="shm") as shm:
            a = tiled_engine.session(seed=5, backend=shm).run(request_images)
            assert shm.transport == "shm"  # did not silently fall back
        with ShardParallelScheduler(workers=2, transport="pickle") as pickled:
            b = tiled_engine.session(seed=5, backend=pickled).run(request_images)
        np.testing.assert_array_equal(a.logits, b.logits)


class TestSessionSchedulerIntegration:
    def test_shard_parallel_scheduler_via_session(self, tiled_engine, request_images):
        serial = tiled_engine.session(seed=13).run(request_images)
        with tiled_engine.session(seed=13, scheduler="shard-parallel") as session:
            parallel = session.run(request_images)
        np.testing.assert_array_equal(parallel.logits, serial.logits)

    def test_in_process_scheduler_rejects_shard_level_backend(self, tiled_engine):
        with pytest.raises(ValueError, match="layer-level"):
            tiled_engine.session(
                backend="stochastic-parallel", scheduler="serial"
            )

    def test_pool_scheduler_executes_session_backend(self, tiled_engine, request_images):
        """A session-built pool scheduler adopts the session backend —
        the workers must run what the caller asked for, and the result
        must say so."""
        serial = tiled_engine.session(backend="ideal").run(request_images)
        with tiled_engine.session(
            backend="ideal", scheduler="shard-parallel"
        ) as session:
            pooled = session.run(request_images)
        np.testing.assert_array_equal(pooled.logits, serial.logits)
        assert pooled.backend == "ideal"

    def test_caller_configured_pool_scheduler_wins_and_labels(self, tiled_engine, request_images):
        serial = tiled_engine.session(
            seed=9, backend="stochastic-fused-batched"
        ).run(request_images)
        with ShardParallelScheduler(
            workers=2, inner="stochastic-fused-batched"
        ) as sched:
            pooled = tiled_engine.session(seed=9, scheduler=sched).run(
                request_images
            )
            # explicit conflicting backend is rejected, not dropped
            with pytest.raises(ValueError, match="conflicts"):
                tiled_engine.session(backend="ideal", scheduler=sched)
        np.testing.assert_array_equal(pooled.logits, serial.logits)
        assert pooled.backend == "stochastic-fused-batched"

    def test_pool_scheduler_rejects_two_pools_and_run_overrides(self, tiled_engine, request_images):
        with pytest.raises(ValueError, match="two pools"):
            tiled_engine.session(
                backend="stochastic-parallel", scheduler="shard-parallel"
            )
        with tiled_engine.session(scheduler="shard-parallel") as session:
            with pytest.raises(ValueError, match="per-run backend"):
                session.run(request_images, backend="ideal")

    def test_moved_symbols_still_importable_from_engine(self):
        # the facade re-exports the planning surface parallel.py and the
        # executor shims import
        from repro.api.engine import (  # noqa: F401
            Shard,
            ShardPlan,
            _run_pool,
            plan_shards,
            run_stages,
            seed_shard,
        )
        from repro.runtime.plan import plan_shards as runtime_plan_shards

        assert plan_shards is runtime_plan_shards
