"""Tests for conv lowering and the model -> hardware compiler."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.functional import conv2d, im2col
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.loaders import DataLoader
from repro.data.synthetic import make_mnist_like
from repro.hardware.config import HardwareConfig
from repro.mapping.compiler import (
    CompiledNetwork,
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    ThermometerStage,
    compile_model,
)
from repro.mapping.tiling import conv_output_geometry, conv_weight_to_matrix
from repro.models.mlp import Mlp
from repro.models.vgg import VggSmall


class TestConvLowering:
    def test_weight_matrix_shape(self):
        w = np.ones((8, 3, 3, 3))
        assert conv_weight_to_matrix(w).shape == (27, 8)

    def test_lowering_matches_conv2d(self, rng):
        """im2col(x)^T @ lowered(w) must equal conv2d position-wise."""
        x = np.where(rng.random((2, 3, 6, 6)) < 0.5, 1.0, -1.0)
        w = np.where(rng.random((4, 3, 3, 3)) < 0.5, 1.0, -1.0)
        cols, (h, wd) = im2col(x, 3, 1, 1)
        matrix = conv_weight_to_matrix(w)
        lowered = np.einsum("nkp,ko->nop", cols, matrix)  # (N, C_out, P)
        direct = conv2d(Tensor(x), Tensor(w), padding=1).data.reshape(2, 4, -1)
        np.testing.assert_allclose(lowered, direct)

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError):
            conv_weight_to_matrix(np.ones((3, 3)))

    def test_output_geometry(self):
        assert conv_output_geometry(16, 16, 3, 1, 1) == (16, 16)
        assert conv_output_geometry(16, 16, 2, 2, 0) == (8, 8)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            conv_output_geometry(2, 2, 5, 1, 0)
        with pytest.raises(ValueError):
            conv_output_geometry(0, 4, 3, 1, 1)


@pytest.fixture(scope="module")
def quick_mlp():
    data = make_mnist_like(n_samples=500, seed=0)
    train, test = data.split(0.8, seed=1)
    hw = HardwareConfig(crossbar_size=16, gray_zone_ua=10.0, window_bits=8)
    model = Mlp(in_features=144, hidden=(32,), hardware=hw, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=6, warmup_epochs=1))
    trainer.fit(DataLoader(train, 64, seed=2))
    model.eval()
    return model, train, test


@pytest.fixture(scope="module")
def quick_vgg():
    from repro.data.synthetic import make_cifar_like

    data = make_cifar_like(n_samples=300, seed=3)
    train, test = data.split(0.8, seed=1)
    hw = HardwareConfig(crossbar_size=36, gray_zone_ua=10.0, window_bits=4)
    model = VggSmall(image_size=16, hardware=hw, seed=0)
    trainer = Trainer(model, TrainingConfig(epochs=2, warmup_epochs=0))
    trainer.fit(DataLoader(train, 64, seed=2))
    model.eval()
    return model, train, test


class TestCompileMlp:
    def test_stage_sequence(self, quick_mlp):
        model, _, _ = quick_mlp
        network = compile_model(model)
        kinds = [type(s).__name__ for s in network.stages]
        assert kinds[0] == "SignStage"
        assert kinds[-1] == "HeadStage"
        assert kinds.count("LinearStage") == 1

    def test_tiled_layer_dimensions(self, quick_mlp):
        model, _, _ = quick_mlp
        network = compile_model(model)
        layer = network.tiled_layers[0]
        assert layer.in_features == 144
        assert layer.out_features == 32

    def test_weights_are_signs_of_trained_weights_up_to_flip(self, quick_mlp):
        model, _, _ = quick_mlp
        network = compile_model(model)
        stage = next(s for s in network.stages if isinstance(s, LinearStage))
        full = np.concatenate(
            [
                np.concatenate([t.weights for t in row], axis=1)
                for row in stage.layer.tiles
            ],
            axis=0,
        )
        expected = np.where(model.cells[0].weight.data >= 0, 1.0, -1.0).T
        # Columns may be negated (gamma flips); check up to per-column sign.
        col_sign = np.sign((full * expected).sum(axis=0))
        np.testing.assert_array_equal(np.abs(col_sign), np.ones(32))
        np.testing.assert_array_equal(full, expected * col_sign)

    def test_deploy_config_override(self, quick_mlp):
        model, _, _ = quick_mlp
        other = HardwareConfig(crossbar_size=72, window_bits=2)
        network = compile_model(model, other)
        assert network.config.crossbar_size == 72
        assert network.tiled_layers[0].n_row_tiles == 2  # ceil(144/72)

    def test_unsupported_model_rejected(self):
        from repro.models.resnet import ResNet18

        model = ResNet18(image_size=16, seed=0)
        with pytest.raises(TypeError):
            compile_model(model)

    def test_head_logits_match_software_head(self, quick_mlp, rng):
        model, _, _ = quick_mlp
        network = compile_model(model)
        head = next(s for s in network.stages if isinstance(s, HeadStage))
        x = np.where(rng.random((4, 32)) < 0.5, 1.0, -1.0)
        with no_grad():
            expected = model.head(Tensor(x)).data
        np.testing.assert_allclose(head.logits(x), expected, rtol=1e-10)


class TestCompileVgg:
    def test_stage_sequence(self, quick_vgg):
        model, _, _ = quick_vgg
        network = compile_model(model)
        kinds = [type(s).__name__ for s in network.stages]
        assert kinds[0] == "ThermometerStage"
        assert kinds.count("ConvStage") == 6
        assert kinds.count("PoolStage") == 3
        assert kinds[-1] == "HeadStage"

    def test_conv_stage_geometry(self, quick_vgg):
        model, _, _ = quick_vgg
        network = compile_model(model)
        conv = next(s for s in network.stages if isinstance(s, ConvStage))
        assert conv.kernel == 3
        assert conv.padding == 1
        assert conv.layer.in_features == 12 * 9  # 3ch x 4 levels x 3x3

    def test_thermometer_thresholds_preserved(self, quick_vgg):
        model, _, _ = quick_vgg
        network = compile_model(model)
        thermo = network.stages[0]
        assert isinstance(thermo, ThermometerStage)
        np.testing.assert_allclose(
            thermo.thresholds, model.input_binarize.thresholds
        )
