"""Tests for the AQFP standard-cell library and its Table 1 calibration."""

import pytest

from repro.device.cells import (
    CELL_LIBRARY,
    ENERGY_PER_JJ_PER_CYCLE_J,
    AqfpCell,
    CellLibrary,
)


class TestAqfpCell:
    def test_energy_per_cycle(self):
        cell = AqfpCell("x", jj_count=4)
        assert cell.energy_per_cycle_j() == pytest.approx(4 * ENERGY_PER_JJ_PER_CYCLE_J)

    def test_validation(self):
        with pytest.raises(ValueError):
            AqfpCell("bad", jj_count=-1)
        with pytest.raises(ValueError):
            AqfpCell("bad", jj_count=2, stages=0)


class TestCellLibrary:
    def test_contains_paper_cells(self):
        """Sec. 6.1 lists AND, OR, buffer, inverter, majority, splitter,
        read-out — all must be present."""
        for name in (
            "and2",
            "or2",
            "buffer",
            "inverter",
            "majority3",
            "splitter",
            "readout",
        ):
            assert name in CELL_LIBRARY

    def test_buffer_is_two_junctions(self):
        """The AQFP buffer is a double-JJ SQUID (Fig. 1)."""
        assert CELL_LIBRARY["buffer"].jj_count == 2

    def test_majority_from_three_buffers(self):
        assert CELL_LIBRARY["majority3"].jj_count == 6

    def test_and_or_cost_equals_majority(self):
        """Minimalist design: AND/OR are majority gates with a constant."""
        assert CELL_LIBRARY["and2"].jj_count == CELL_LIBRARY["majority3"].jj_count
        assert CELL_LIBRARY["or2"].jj_count == CELL_LIBRARY["majority3"].jj_count

    def test_table1_composite_cells(self):
        """The Table 1 decomposition: 12 JJ LiM cell, 24 JJ peripherals."""
        assert CELL_LIBRARY["lim_cell"].jj_count == 12
        assert CELL_LIBRARY["row_driver"].jj_count == 24
        assert CELL_LIBRARY["column_neuron"].jj_count == 24

    def test_total_jj_accounting(self):
        total = CELL_LIBRARY.total_jj({"buffer": 3, "and2": 2})
        assert total == 3 * 2 + 2 * 6

    def test_total_energy(self):
        energy = CELL_LIBRARY.total_energy_per_cycle_j({"buffer": 10})
        assert energy == pytest.approx(20 * ENERGY_PER_JJ_PER_CYCLE_J)

    def test_unknown_cell_raises_with_suggestions(self):
        with pytest.raises(KeyError):
            CELL_LIBRARY["nand17"]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CELL_LIBRARY.total_jj({"buffer": -1})

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError):
            CellLibrary([AqfpCell("a", 2), AqfpCell("a", 4)])

    def test_iteration_and_names(self):
        names = CELL_LIBRARY.names()
        assert names == sorted(names)
        assert len(list(CELL_LIBRARY)) == len(names)
