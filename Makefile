# Developer entry points. `make test` is the tier-1 gate used by CI and
# the PR driver; `make check` chains lint + the runtime deadlock tier +
# the tier-1 tests (the one command to run before pushing); `make check
# FAST=1` skips the repeat-averaged statistical benches (the fig10
# bit-stream sweep and the integration window sweep) for quick
# pre-commit runs; `make lint-static` runs the AST-based contract
# checker (repro.analysis: determinism, layering, fault-site catalog,
# env discipline, asyncio hygiene, registry contracts, exception
# taxonomy) over src/tests/benchmarks/examples and fails on any finding
# not grandfathered in lint-static.baseline.json;
# `make check-runtime` runs the parallel/daemon tests
# alone with a 2-worker pool cap (REPRO_MAX_POOL_WORKERS) and a hard
# timeout, so a pool/queue deadlock fails the build fast instead of
# hanging the whole suite (GNU `timeout` when available, otherwise an
# in-process watchdog via REPRO_TEST_TIMEOUT — see tests/conftest.py —
# so minimal CI containers still get the ceiling; the tier includes the
# network serving tests, which drive real sockets through the asyncio
# front-end); `make bench-serving` sweeps the network tier's offered
# load with SERVE_CLIENTS concurrent connections — against the single
# daemon and a 2-replica DaemonRouter (SERVE_REPLICAS) — and writes the
# latency/saturation rows to BENCH_serving.json; `make docs-sync`
# asserts docs/PROTOCOL.md + docs/ARCHITECTURE.md against the source
# constants and docs/ENVIRONMENT.md against ENV_CATALOG (the CI
# docs-sync job); `make check-chaos`
# runs the fault-injection tier the same way — deterministic worker
# kills, transport outages, blown deadlines, and poisoned payloads
# against real process pools (tests/test_runtime_faults.py +
# tests/test_runtime_chaos.py), where a recovery bug surfaces as a
# timeout or a bit-identity failure; `make coverage` runs
# the tier-1 tests under pytest-cov (skips gracefully when the plugin
# is absent — CI wires it in as a non-blocking report step); `make
# bench` times the simulation kernels — including the serial vs
# stochastic-parallel vs adaptive-scheduler session rows and the
# serving/daemon rows — appends the results to BENCH_kernels.json (the
# cross-PR perf trajectory), and refreshes the calibrated cost-model
# coefficients in benchmarks/results/; `make lint` is a fast
# syntax/bytecode sweep covering src (incl. the runtime/ package),
# tests, benchmarks, and examples (no third-party linter is baked into
# the image).

PYTHON ?= python
PYTHONPATH := src

# FAST=1: deselect the repeat-averaged statistical benches (minutes of
# training + repeated stochastic evaluation each) so check/test stay
# quick; the full tier-1 gate runs them.
FAST ?=
FAST_DESELECTS := \
	--deselect benchmarks/test_fig10_bitstream_sweep.py::test_fig10_bitstream_length_sweep \
	--deselect tests/test_integration.py::TestFullPipeline::test_window_sweep_shape
# PYTEST_EXTRA: extra pytest flags appended by callers (CI passes
# --junitxml=... here without the Makefile hard-coding report paths).
PYTEST_EXTRA ?=
PYTEST_FLAGS := $(if $(FAST),$(FAST_DESELECTS),) $(PYTEST_EXTRA)

# Hard ceiling for the runtime tier: pool/daemon deadlocks surface as a
# timeout failure instead of a hung CI job. GNU `timeout` enforces it
# from outside when present; otherwise tests/conftest.py arms an
# in-process watchdog from REPRO_TEST_TIMEOUT (same exit code, 124).
RUNTIME_TIMEOUT ?= 600
RUNTIME_TESTS := tests/test_api_parallel.py tests/test_runtime_plan.py \
	tests/test_runtime_daemon.py tests/test_runtime_adaptive.py \
	tests/test_net_serving.py tests/test_net_router.py

# The chaos tier: deterministic fault injection against real pools.
# Bounded the same way as the runtime tier — a recovery path that
# wedges (instead of retrying / falling back) fails as a timeout.
CHAOS_TIMEOUT ?= 600
CHAOS_TESTS := tests/test_runtime_faults.py tests/test_runtime_chaos.py
TIMEOUT_BIN := $(shell command -v timeout 2>/dev/null)

.PHONY: test bench bench-serving bench-smoke lint lint-static check check-runtime check-chaos coverage docs-sync

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q $(PYTEST_FLAGS)

check-runtime:
ifneq ($(TIMEOUT_BIN),)
	REPRO_MAX_POOL_WORKERS=2 PYTHONPATH=$(PYTHONPATH) \
		timeout $(RUNTIME_TIMEOUT) $(PYTHON) -m pytest $(RUNTIME_TESTS) -q $(PYTEST_EXTRA)
else
	@echo "GNU timeout not found; using in-process REPRO_TEST_TIMEOUT watchdog"
	REPRO_MAX_POOL_WORKERS=2 REPRO_TEST_TIMEOUT=$(RUNTIME_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest $(RUNTIME_TESTS) -q $(PYTEST_EXTRA)
endif

check-chaos:
ifneq ($(TIMEOUT_BIN),)
	REPRO_MAX_POOL_WORKERS=2 PYTHONPATH=$(PYTHONPATH) \
		timeout $(CHAOS_TIMEOUT) $(PYTHON) -m pytest $(CHAOS_TESTS) -q $(PYTEST_EXTRA)
else
	@echo "GNU timeout not found; using in-process REPRO_TEST_TIMEOUT watchdog"
	REPRO_MAX_POOL_WORKERS=2 REPRO_TEST_TIMEOUT=$(CHAOS_TIMEOUT) \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest $(CHAOS_TESTS) -q $(PYTEST_EXTRA)
endif

check: lint lint-static check-runtime check-chaos test

coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
			--cov=repro --cov-report=term --cov-report=xml:coverage.xml $(PYTEST_FLAGS); \
	else \
		echo "pytest-cov is not installed; skipping coverage (pip install pytest-cov)"; \
	fi

# BENCH_LABEL labels the run entry appended to BENCH_kernels.json (the
# conftest derives one from git HEAD when unset, so every appended run
# is attributable). Label a run '... [skip-bench-smoke]' to exempt it
# from the bench-smoke regression gate.
BENCH_LABEL ?=
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_kernel_performance.py -q --bench-json=BENCH_kernels.json $(if $(BENCH_LABEL),--bench-label='$(BENCH_LABEL)',)

# Standard-burst smoke gate: the warm-pool adaptive row must still be
# chosen by the cost model (no forcing), stay bit-identical to serial,
# and its pooled/serial ratio must not drift >20% from the committed
# BENCH_kernels.json trajectory. Machine-independent (ratio-based).
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_smoke.py

# Network serving latency/throughput sweep: N concurrent clients drive
# the asyncio front-end over the framed wire protocol (in-process
# server) against each topology in SERVE_REPLICAS (single daemon, then
# a routed replica cluster), verify every response — including
# reassembled streamed responses — bit-identical to serial Sessions,
# and write the p50/p95/p99 + saturation rows to BENCH_serving.json.
SERVE_CLIENTS ?= 8
SERVE_REPLICAS ?= 1 2
bench-serving:
	REPRO_MAX_POOL_WORKERS=2 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli \
		serve-bench --clients $(SERVE_CLIENTS) --connect \
		--replicas $(SERVE_REPLICAS) \
		--requests 16 --batch 32 --epochs 2 --json BENCH_serving.json

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

# Docs drift gate: the PROTOCOL.md / ARCHITECTURE.md tables are parsed
# and asserted against the source constants they document, and the
# generated docs/ENVIRONMENT.md must match ENV_CATALOG exactly.
docs-sync:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_docs_sync.py -q $(PYTEST_EXTRA)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli lint-static --check-env-docs

# The static contract checker. Exits non-zero on any finding not
# grandfathered in lint-static.baseline.json; LINT_JSON=path also dumps
# the machine-readable report (the CI artifact).
LINT_JSON ?=
lint-static:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli lint-static \
		$(if $(LINT_JSON),--json $(LINT_JSON),)
