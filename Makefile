# Developer entry points. `make test` is the tier-1 gate used by CI and
# the PR driver; `make check` chains lint + the tier-1 tests (the one
# command to run before pushing); `make bench` times the simulation
# kernels and appends the results to BENCH_kernels.json (the cross-PR
# perf trajectory); `make lint` is a fast syntax/bytecode sweep (no
# third-party linter is baked into the image).

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench lint check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

check: lint test

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_kernel_performance.py -q --bench-json=BENCH_kernels.json

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
