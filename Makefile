# Developer entry points. `make test` is the tier-1 gate used by CI and
# the PR driver; `make check` chains lint + the runtime deadlock tier +
# the tier-1 tests (the one command to run before pushing); `make check
# FAST=1` skips the repeat-averaged statistical benches (the fig10
# bit-stream sweep and the integration window sweep) for quick
# pre-commit runs; `make check-runtime` runs the parallel/daemon tests
# alone with a 2-worker pool cap (REPRO_MAX_POOL_WORKERS) and a hard
# timeout, so a pool/queue deadlock fails the build fast instead of
# hanging the whole suite; `make bench` times the simulation kernels —
# including the serial vs stochastic-parallel session rows and the
# serving/daemon rows — and appends the results to BENCH_kernels.json
# (the cross-PR perf trajectory); `make lint` is a fast syntax/bytecode
# sweep covering src (incl. the runtime/ package), tests, benchmarks,
# and examples (no third-party linter is baked into the image).

PYTHON ?= python
PYTHONPATH := src

# FAST=1: deselect the repeat-averaged statistical benches (minutes of
# training + repeated stochastic evaluation each) so check/test stay
# quick; the full tier-1 gate runs them.
FAST ?=
FAST_DESELECTS := \
	--deselect benchmarks/test_fig10_bitstream_sweep.py::test_fig10_bitstream_length_sweep \
	--deselect tests/test_integration.py::TestFullPipeline::test_window_sweep_shape
PYTEST_FLAGS := $(if $(FAST),$(FAST_DESELECTS),)

# Hard ceiling for the runtime tier: pool/daemon deadlocks surface as a
# timeout failure instead of a hung CI job.
RUNTIME_TIMEOUT ?= 600
RUNTIME_TESTS := tests/test_api_parallel.py tests/test_runtime_plan.py tests/test_runtime_daemon.py

.PHONY: test bench lint check check-runtime

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q $(PYTEST_FLAGS)

check-runtime:
	REPRO_MAX_POOL_WORKERS=2 PYTHONPATH=$(PYTHONPATH) \
		timeout $(RUNTIME_TIMEOUT) $(PYTHON) -m pytest $(RUNTIME_TESTS) -q

check: lint check-runtime test

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_kernel_performance.py -q --bench-json=BENCH_kernels.json

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
