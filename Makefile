# Developer entry points. `make test` is the tier-1 gate used by CI and
# the PR driver; `make check` chains lint + the tier-1 tests (the one
# command to run before pushing); `make check FAST=1` skips the
# repeat-averaged statistical benches (the fig10 bit-stream sweep and
# the integration window sweep) for quick pre-commit runs; `make bench`
# times the simulation kernels — including the serial vs
# stochastic-parallel session rows — and appends the results to
# BENCH_kernels.json (the cross-PR perf trajectory); `make lint` is a
# fast syntax/bytecode sweep (no third-party linter is baked into the
# image).

PYTHON ?= python
PYTHONPATH := src

# FAST=1: deselect the repeat-averaged statistical benches (minutes of
# training + repeated stochastic evaluation each) so check/test stay
# quick; the full tier-1 gate runs them.
FAST ?=
FAST_DESELECTS := \
	--deselect benchmarks/test_fig10_bitstream_sweep.py::test_fig10_bitstream_length_sweep \
	--deselect tests/test_integration.py::TestFullPipeline::test_window_sweep_shape
PYTEST_FLAGS := $(if $(FAST),$(FAST_DESELECTS),)

.PHONY: test bench lint check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q $(PYTEST_FLAGS)

check: lint test

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_kernel_performance.py -q --bench-json=BENCH_kernels.json

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
