"""Stochastic-number encodings (paper Sec. 2.3, Fig. 2).

A stochastic number (SN) represents a real value by the density of ones
in a bit-stream:

* unipolar: ``x = P(X = 1)`` for ``x in [0, 1]``;
* bipolar: ``P(X = 1) = (x + 1) / 2`` for ``x in [-1, 1]``.

Streams here are numpy arrays with the time axis first. Bits are stored
0/1; helpers accept/produce +-1 ("bipolar wire encoding", matching the
positive/negative AQFP current pulses) where noted.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def unipolar_probability(value) -> np.ndarray:
    """P(X=1) for a unipolar value in [0, 1]."""
    v = np.asarray(value, dtype=np.float64)
    if np.any(v < 0) or np.any(v > 1):
        raise ValueError("unipolar values must lie in [0, 1]")
    return v


def bipolar_probability(value) -> np.ndarray:
    """P(X=1) = (x + 1) / 2 for a bipolar value in [-1, 1]."""
    v = np.asarray(value, dtype=np.float64)
    if np.any(v < -1) or np.any(v > 1):
        raise ValueError("bipolar values must lie in [-1, 1]")
    return (v + 1.0) / 2.0


def unipolar_encode(value, length: int, seed: SeedLike = None) -> np.ndarray:
    """Sample an i.i.d. unipolar stream of shape ``(length,) + value.shape``."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    p = unipolar_probability(value)
    rng = new_rng(seed)
    return (rng.random((length,) + p.shape) < p).astype(np.int8)


def bipolar_encode(value, length: int, seed: SeedLike = None) -> np.ndarray:
    """Sample an i.i.d. bipolar stream (bits 0/1) for values in [-1, 1]."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    p = bipolar_probability(value)
    rng = new_rng(seed)
    return (rng.random((length,) + p.shape) < p).astype(np.int8)


def unipolar_decode(stream: np.ndarray) -> np.ndarray:
    """Value of a unipolar stream: the mean of its bits."""
    s = np.asarray(stream, dtype=np.float64)
    return s.mean(axis=0)


def bipolar_decode(stream: np.ndarray) -> np.ndarray:
    """Value of a bipolar stream: ``2 * mean - 1`` for 0/1 bits.

    Streams already in +-1 wire encoding decode as a plain mean; this
    function accepts both and dispatches on the observed alphabet.
    """
    s = np.asarray(stream, dtype=np.float64)
    if np.any(s < 0):  # +-1 wire encoding
        return s.mean(axis=0)
    return 2.0 * s.mean(axis=0) - 1.0


def to_wire(bits: np.ndarray) -> np.ndarray:
    """Map 0/1 bits to -1/+1 current pulses."""
    b = np.asarray(bits)
    return np.where(b > 0, 1.0, -1.0)


def from_wire(pulses: np.ndarray) -> np.ndarray:
    """Map -1/+1 current pulses to 0/1 bits."""
    p = np.asarray(pulses)
    return (p > 0).astype(np.int8)
