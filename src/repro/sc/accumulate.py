"""The SC-based accumulation module (paper Sec. 4.3, Fig. 6b).

When a BNN filter does not fit one crossbar, each of the K tiles emits a
stochastic bit-stream (the AQFP neuron observed over an L-bit window).
The module:

1. counts the ones across the K per-crossbar bits each clock (APC),
2. accumulates the counts over the window,
3. compares the total against a reference to emit the 1-bit activation.

The decision implemented is ``sign( sum_{k,t} bit_{k,t} - reference )``
with the natural bipolar zero point ``reference = K * L / 2``; BN
matching shifts per-crossbar thresholds instead of the reference (paper
Sec. 5.2), so the default reference is unbiased.

The AND/OR first-layer compressor of the APC is *exact* when both
outputs are kept (``a + b = (a | b) + (a & b)``); dropping the AND
outputs is the approximate mode, exposed via ``approximate_layers`` and
studied in the ablation bench.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.apc import ApproximateParallelCounter
from repro.circuits.comparator import BinaryComparator


class ScAccumulationModule:
    """Accumulate K per-crossbar stochastic outputs into one binary value.

    Parameters
    ----------
    n_crossbars:
        K, the number of tiles whose outputs are merged.
    window_bits:
        L, the SC observation window (paper: accuracy saturates at 16-32).
    approximate_layers:
        OR-only compression layers in the APC (0 = exact counting).
    reference:
        Comparator reference; defaults to the unbiased ``K * L / 2``.
    """

    def __init__(
        self,
        n_crossbars: int,
        window_bits: int,
        approximate_layers: int = 0,
        reference: Optional[float] = None,
    ) -> None:
        if n_crossbars < 1:
            raise ValueError(f"n_crossbars must be >= 1, got {n_crossbars}")
        if window_bits < 1:
            raise ValueError(f"window_bits must be >= 1, got {window_bits}")
        self.n_crossbars = n_crossbars
        self.window_bits = window_bits
        self.apc = ApproximateParallelCounter(approximate_layers)
        self.reference = (
            n_crossbars * window_bits / 2.0 if reference is None else float(reference)
        )
        self.comparator = BinaryComparator(self.reference)

    def count_window(self, streams: np.ndarray) -> np.ndarray:
        """Total APC counts over the window.

        ``streams`` has shape ``(K, L, ...)`` with +-1 (or 0/1) entries;
        the result has shape ``(...)`` of integer totals.
        """
        s = np.asarray(streams)
        if s.ndim < 2 or s.shape[0] != self.n_crossbars or s.shape[1] != self.window_bits:
            raise ValueError(
                f"expected streams of shape ({self.n_crossbars}, "
                f"{self.window_bits}, ...), got {s.shape}"
            )
        per_clock = self.apc.count(s, axis=0)  # (L, ...)
        return per_clock.sum(axis=0)

    def accumulate(self, streams: np.ndarray) -> np.ndarray:
        """Binary (+-1) activation from the per-crossbar streams."""
        return self.comparator.compare(self.count_window(streams))

    def expected_value(self, probabilities: np.ndarray) -> np.ndarray:
        """E[total count] given per-crossbar P(bit=1) (exact counting)."""
        p = np.asarray(probabilities, dtype=np.float64)
        if p.shape[0] != self.n_crossbars:
            raise ValueError(
                f"expected leading axis {self.n_crossbars}, got {p.shape}"
            )
        return self.window_bits * p.sum(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScAccumulationModule(K={self.n_crossbars}, L={self.window_bits}, "
            f"reference={self.reference})"
        )
