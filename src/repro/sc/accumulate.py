"""The SC-based accumulation module (paper Sec. 4.3, Fig. 6b).

When a BNN filter does not fit one crossbar, each of the K tiles emits a
stochastic bit-stream (the AQFP neuron observed over an L-bit window).
The module:

1. counts the ones across the K per-crossbar bits each clock (APC),
2. accumulates the counts over the window,
3. compares the total against a reference to emit the 1-bit activation.

The decision implemented is ``sign( sum_{k,t} bit_{k,t} - reference )``
with the natural bipolar zero point ``reference = K * L / 2``; BN
matching shifts per-crossbar thresholds instead of the reference (paper
Sec. 5.2), so the default reference is unbiased.

The AND/OR first-layer compressor of the APC is *exact* when both
outputs are kept (``a + b = (a | b) + (a & b)``); dropping the AND
outputs is the approximate mode, exposed via ``approximate_layers`` and
studied in the ablation bench.

Two execution paths reach the comparator:

* **Fused-counts fast path** (``approximate_layers == 0``): the exact
  APC's window total is just the number of ones across all K x L bits,
  so per-tile *counts* drawn from ``Binomial(L, p)`` (see
  :meth:`repro.hardware.crossbar.CrossbarArray.sample_window_counts`)
  are summed and compared via :meth:`ScAccumulationModule.accumulate_counts`
  — no bit tensor is ever materialized. Distribution-identical to the
  bit-level simulation.
* **Bit-level APC path** (``approximate_layers > 0``): the OR-only
  compression depends on *which* bits coincide, so the individual bits
  are needed. They travel bit-packed (uint64 words,
  :mod:`repro.sc.packed`) through
  :meth:`ScAccumulationModule.accumulate_packed`, where the OR layers
  run 64 clocks per word op. The unpacked :meth:`ScAccumulationModule.accumulate`
  remains for raw float/int bit tensors.

:class:`repro.hardware.accelerator.TiledLinearLayer` dispatches between
the two based on :attr:`ScAccumulationModule.supports_fused_counts`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.apc import ApproximateParallelCounter
from repro.circuits.comparator import BinaryComparator
from repro.sc.packed import packed_word_count


class ScAccumulationModule:
    """Accumulate K per-crossbar stochastic outputs into one binary value.

    Parameters
    ----------
    n_crossbars:
        K, the number of tiles whose outputs are merged.
    window_bits:
        L, the SC observation window (paper: accuracy saturates at 16-32).
    approximate_layers:
        OR-only compression layers in the APC (0 = exact counting).
    reference:
        Comparator reference; defaults to the unbiased ``K * L / 2``.
    """

    def __init__(
        self,
        n_crossbars: int,
        window_bits: int,
        approximate_layers: int = 0,
        reference: Optional[float] = None,
    ) -> None:
        if n_crossbars < 1:
            raise ValueError(f"n_crossbars must be >= 1, got {n_crossbars}")
        if window_bits < 1:
            raise ValueError(f"window_bits must be >= 1, got {window_bits}")
        self.n_crossbars = n_crossbars
        self.window_bits = window_bits
        self.apc = ApproximateParallelCounter(approximate_layers)
        self.reference = (
            n_crossbars * window_bits / 2.0 if reference is None else float(reference)
        )
        self.comparator = BinaryComparator(self.reference)

    @property
    def supports_fused_counts(self) -> bool:
        """True when the APC is exact, so window totals fully determine
        the output and the Binomial fused-count fast path applies."""
        return self.apc.approximate_layers == 0

    def accumulate_counts(self, counts: np.ndarray) -> np.ndarray:
        """Fast-path activation from per-tile window totals.

        ``counts`` has shape ``(K, ...)`` — each entry the number of
        ones one tile produced over its L-bit window (e.g. from
        :meth:`~repro.hardware.crossbar.CrossbarArray.sample_window_counts`).
        Only valid for the exact APC: the approximate OR compression
        undercounts based on bit coincidences that totals cannot
        reconstruct, so that configuration must go through
        :meth:`accumulate_packed` / :meth:`accumulate` instead.
        """
        if not self.supports_fused_counts:
            raise ValueError(
                "accumulate_counts requires an exact APC "
                f"(approximate_layers={self.apc.approximate_layers}); "
                "use accumulate_packed/accumulate for the bit-level path"
            )
        c = np.asarray(counts)
        if c.ndim < 1 or c.shape[0] != self.n_crossbars:
            raise ValueError(
                f"expected counts of shape ({self.n_crossbars}, ...), got {c.shape}"
            )
        return self.comparator.compare(c.sum(axis=0))

    def count_window_packed(self, words: np.ndarray) -> np.ndarray:
        """Total APC counts from bit-packed streams.

        ``words`` has shape ``(K, W, ...)`` with ``W = ceil(L/64)``
        uint64 words per line (:mod:`repro.sc.packed` layout, zero tail
        bits); the result matches :meth:`count_window` on the unpacked
        bits exactly, including the approximate undercount.
        """
        w = np.asarray(words)
        expected_words = packed_word_count(self.window_bits)
        if w.ndim < 2 or w.shape[0] != self.n_crossbars or w.shape[1] != expected_words:
            raise ValueError(
                f"expected packed streams of shape ({self.n_crossbars}, "
                f"{expected_words}, ...), got {w.shape}"
            )
        return self.apc.count_packed(w)

    def accumulate_packed(self, words: np.ndarray) -> np.ndarray:
        """Binary (+-1) activation from bit-packed per-crossbar streams."""
        return self.comparator.compare(self.count_window_packed(words))

    def count_window(self, streams: np.ndarray) -> np.ndarray:
        """Total APC counts over the window.

        ``streams`` has shape ``(K, L, ...)`` with +-1 (or 0/1) entries;
        the result has shape ``(...)`` of integer totals.
        """
        s = np.asarray(streams)
        if s.ndim < 2 or s.shape[0] != self.n_crossbars or s.shape[1] != self.window_bits:
            raise ValueError(
                f"expected streams of shape ({self.n_crossbars}, "
                f"{self.window_bits}, ...), got {s.shape}"
            )
        per_clock = self.apc.count(s, axis=0)  # (L, ...)
        return per_clock.sum(axis=0)

    def accumulate(self, streams: np.ndarray) -> np.ndarray:
        """Binary (+-1) activation from the per-crossbar streams."""
        return self.comparator.compare(self.count_window(streams))

    def expected_value(self, probabilities: np.ndarray) -> np.ndarray:
        """E[total count] given per-crossbar P(bit=1) (exact counting)."""
        p = np.asarray(probabilities, dtype=np.float64)
        if p.shape[0] != self.n_crossbars:
            raise ValueError(
                f"expected leading axis {self.n_crossbars}, got {p.shape}"
            )
        return self.window_bits * p.sum(axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScAccumulationModule(K={self.n_crossbars}, L={self.window_bits}, "
            f"reference={self.reference})"
        )
