"""Stochastic stream generators and correlation diagnostics.

The AQFP buffer's thermal randomness is a *true* RNG (paper Sec. 4.3), so
in-hardware stream generation is free. For peripheral circuits that need
pseudo-random references (e.g. binary-to-SN converters in test harnesses)
we also provide a Fibonacci LFSR, the standard SC hardware generator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sc.encoding import bipolar_probability, unipolar_probability
from repro.utils.rng import RngMixin, SeedLike

#: Maximal-length Fibonacci LFSR tap positions per width (XAPP052 table).
_FIBONACCI_TAPS = {
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    10: (10, 7),
    12: (12, 11, 10, 4),
    16: (16, 15, 13, 4),
    20: (20, 17),
    24: (24, 23, 22, 17),
}


class Lfsr:
    """Fibonacci linear-feedback shift register producing pseudo-random words.

    Uses the standard maximal-length taps, so the state sequence has
    period ``2^width - 1`` and visits every non-zero state exactly once.

    Parameters
    ----------
    width:
        Register width in bits (one of the supported maximal-length taps).
    seed_state:
        Initial non-zero register state.
    """

    def __init__(self, width: int = 16, seed_state: int = 0xACE1) -> None:
        if width not in _FIBONACCI_TAPS:
            raise ValueError(
                f"unsupported LFSR width {width}; choose from {sorted(_FIBONACCI_TAPS)}"
            )
        mask = (1 << width) - 1
        state = seed_state & mask
        if state == 0:
            raise ValueError("LFSR state must be non-zero")
        self.width = width
        self._mask = mask
        self._taps = _FIBONACCI_TAPS[width]
        self._state = state

    @property
    def period(self) -> int:
        """Sequence period: 2^width - 1 for maximal-length taps."""
        return self._mask

    def next_word(self) -> int:
        """Advance one step; returns the new register state."""
        feedback = 0
        for tap in self._taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & self._mask
        return self._state

    def words(self, count: int) -> np.ndarray:
        """The next ``count`` register states as an int64 array.

        Vectorized: the Fibonacci LFSR's inserted bits obey the linear
        recurrence ``b[m] = XOR_{t in taps} b[m - t]``, and each state is
        just the window of the last ``width`` inserted bits. Bits are
        generated in blocks of ``min(taps)`` (the largest block whose
        inputs are all already available) with array XORs, then the
        states are reassembled from sliding windows — no per-word Python
        loop. Matches :meth:`next_word` bit-for-bit.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        width = self.width
        lags = self._taps
        block = min(lags)
        total = width + count
        bits = np.empty(total, dtype=np.uint8)
        # Seed the history with the current state, oldest bit first:
        # state bit k was inserted k steps ago.
        bits[:width] = (self._state >> np.arange(width - 1, -1, -1)) & 1
        pos = width
        while pos < total:
            n = min(block, total - pos)
            acc = bits[pos - lags[0] : pos - lags[0] + n].copy()
            for t in lags[1:]:
                acc ^= bits[pos - t : pos - t + n]
            bits[pos : pos + n] = acc
            pos += n
        # State after inserting bit m holds b[m-k] at bit position k.
        windows = np.lib.stride_tricks.sliding_window_view(bits, width)[1 : count + 1]
        weights = (1 << np.arange(width - 1, -1, -1)).astype(np.int64)
        states = windows.astype(np.int64) @ weights
        self._state = int(states[-1])
        return states

    def uniform(self, count: int) -> np.ndarray:
        """``count`` pseudo-uniform samples in (0, 1)."""
        return self.words(count) / float(self._mask + 1)

    def encode_unipolar(self, value: float, length: int) -> np.ndarray:
        """Hardware-style SN generation: compare value against LFSR words."""
        p = float(unipolar_probability(value))
        return (self.uniform(length) < p).astype(np.int8)

    def encode_bipolar(self, value: float, length: int) -> np.ndarray:
        p = float(bipolar_probability(value))
        return (self.uniform(length) < p).astype(np.int8)


class StreamGenerator(RngMixin):
    """Software SN source drawing i.i.d. bits from a seeded RNG."""

    def __init__(self, seed: SeedLike = None) -> None:
        super().__init__(seed)

    def unipolar(self, value, length: int) -> np.ndarray:
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        p = unipolar_probability(value)
        return (self.rng.random((length,) + p.shape) < p).astype(np.int8)

    def bipolar(self, value, length: int) -> np.ndarray:
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        p = bipolar_probability(value)
        return (self.rng.random((length,) + p.shape) < p).astype(np.int8)


def stochastic_cross_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """SCC in [-1, 1]: 0 for independent streams, +1 max overlap, -1 min.

    Standard definition (Alaghi & Hayes): normalized deviation of the
    observed joint-ones density from the independent product.
    """
    xb = np.asarray(x, dtype=np.float64).ravel()
    yb = np.asarray(y, dtype=np.float64).ravel()
    if xb.shape != yb.shape:
        raise ValueError("streams must have equal length")
    n = xb.size
    if n == 0:
        raise ValueError("streams must be non-empty")
    p_x = xb.mean()
    p_y = yb.mean()
    p_xy = (xb * yb).mean()
    delta = p_xy - p_x * p_y
    if delta == 0:
        return 0.0
    if delta > 0:
        denom = min(p_x, p_y) - p_x * p_y
    else:
        denom = p_x * p_y - max(p_x + p_y - 1.0, 0.0)
    if denom == 0:
        return 0.0
    return float(delta / denom)
