"""Stochastic arithmetic on bit-streams.

These are the classic SC building blocks: multiplication is a single gate
(AND for unipolar, XNOR for bipolar) and addition is a scaled MUX. The
accelerator itself only needs accumulation (see
:mod:`repro.sc.accumulate`), but the full kit is provided because the
SC-AQFP baseline (paper [13]) computes whole networks this way and the
comparison benches exercise it.

Every op accepts either int8 bit arrays or bit-packed
:class:`~repro.sc.packed.PackedStream` operands; packed operands run the
gate on uint64 words (64 stream bits per machine op) and return a packed
result. The n-way MUX falls back to unpacked bits for n != 2, where a
bitwise select cannot express the uniform choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sc.packed import PackedStream, packed_and, packed_mux, packed_xnor
from repro.utils.rng import SeedLike, new_rng


def _check_streams(*streams: np.ndarray) -> None:
    shapes = {np.asarray(s).shape for s in streams}
    if len(shapes) != 1:
        raise ValueError(f"streams must share a shape, got {shapes}")


def _as_bits(stream) -> np.ndarray:
    if isinstance(stream, PackedStream):
        return stream.unpack()
    return np.asarray(stream, dtype=np.int8)


def sc_multiply_unipolar(x, y):
    """Unipolar product: bitwise AND. E[out] = x * y for independent SNs."""
    if isinstance(x, PackedStream) and isinstance(y, PackedStream):
        return packed_and(x, y)
    x, y = _as_bits(x), _as_bits(y)
    _check_streams(x, y)
    return (x & y).astype(np.int8)


def sc_multiply_bipolar(x, y):
    """Bipolar product: bitwise XNOR. E[out] = x * y for independent SNs.

    This is exactly the BNN multiply: XNOR of +-1 operands encoded as
    0/1 bits.
    """
    if isinstance(x, PackedStream) and isinstance(y, PackedStream):
        return packed_xnor(x, y)
    xb, yb = _as_bits(x), _as_bits(y)
    _check_streams(xb, yb)
    return (1 - (xb ^ yb)).astype(np.int8)


def sc_scaled_add(streams: Sequence, seed: SeedLike = None):
    """Scaled addition: an n-way MUX with uniform select.

    E[out] = mean of the operand values — SC addition is inherently
    scaled by the operand count.
    """
    if not streams:
        raise ValueError("need at least one stream")
    if len(streams) == 2 and all(isinstance(s, PackedStream) for s in streams):
        return packed_mux(streams[0], streams[1], seed=seed)
    arrays = [_as_bits(s) for s in streams]
    _check_streams(*arrays)
    stacked = np.stack(arrays, axis=0)
    rng = new_rng(seed)
    select = rng.integers(0, len(arrays), size=stacked.shape[1:])
    return np.take_along_axis(stacked, select[None, ...], axis=0)[0]
