"""Stochastic arithmetic on bit-streams.

These are the classic SC building blocks: multiplication is a single gate
(AND for unipolar, XNOR for bipolar) and addition is a scaled MUX. The
accelerator itself only needs accumulation (see
:mod:`repro.sc.accumulate`), but the full kit is provided because the
SC-AQFP baseline (paper [13]) computes whole networks this way and the
comparison benches exercise it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _check_streams(*streams: np.ndarray) -> None:
    shapes = {np.asarray(s).shape for s in streams}
    if len(shapes) != 1:
        raise ValueError(f"streams must share a shape, got {shapes}")


def sc_multiply_unipolar(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Unipolar product: bitwise AND. E[out] = x * y for independent SNs."""
    _check_streams(x, y)
    return (np.asarray(x, dtype=np.int8) & np.asarray(y, dtype=np.int8)).astype(np.int8)


def sc_multiply_bipolar(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Bipolar product: bitwise XNOR. E[out] = x * y for independent SNs.

    This is exactly the BNN multiply: XNOR of +-1 operands encoded as
    0/1 bits.
    """
    _check_streams(x, y)
    xb = np.asarray(x, dtype=np.int8)
    yb = np.asarray(y, dtype=np.int8)
    return (1 - (xb ^ yb)).astype(np.int8)


def sc_scaled_add(
    streams: Sequence[np.ndarray], seed: SeedLike = None
) -> np.ndarray:
    """Scaled addition: an n-way MUX with uniform select.

    E[out] = mean of the operand values — SC addition is inherently
    scaled by the operand count.
    """
    if not streams:
        raise ValueError("need at least one stream")
    arrays = [np.asarray(s, dtype=np.int8) for s in streams]
    _check_streams(*arrays)
    stacked = np.stack(arrays, axis=0)
    rng = new_rng(seed)
    select = rng.integers(0, len(arrays), size=stacked.shape[1:])
    return np.take_along_axis(stacked, select[None, ...], axis=0)[0]
