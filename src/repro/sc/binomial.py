"""Vendored vectorized Binomial sampling kernels (inverse-CDF, batched draws).

The fused count path of the crossbar simulator reduces every stochastic
layer pass to "draw exact ``Binomial(L, p)`` counts for a tensor of
precomputed laws". This module owns that math as pure functions over
cached tables, decoupled from the hardware objects, so the same kernel
serves three callers without drift:

* :class:`~repro.hardware.crossbar.CrossbarArray` — the serial per-pass
  path (draws its uniforms from the sampler's own generator);
* :meth:`~repro.hardware.accelerator.TiledLinearLayer.forward_batched`
  (the ``"stochastic-batched"`` backend) — uniforms come from the
  *caller's* generator, optionally pre-drawn for a whole shard pass via
  :class:`DrawBatch` (one ``Generator.random`` call per shard instead
  of one per layer pass);
* the grouped shard executor
  (:func:`~repro.runtime.plan.run_stages_group`) — per-shard uniforms
  concatenated along the batch axis and pushed through one vectorized
  lookup per stage.

Both count kernels take the uniforms as an argument: who owns the
randomness is the caller's contract, the inverse-CDF math is shared.

Draw-batching contract
----------------------
``numpy``'s ``Generator.random`` fills its output from a sequential
uniform stream in C order, so one ``random(total)`` call sliced into
consecutive pieces yields *bit-identical* doubles to a sequence of
smaller ``random(shape)`` calls on the same generator. That identity is
what lets :class:`DrawBatch` hoist every layer's uniforms into a single
generator invocation per shard without changing a single sampled count
(covered by ``tests/test_sc_binomial.py``).
"""

from __future__ import annotations

import numpy as np

#: Number of uniform bins in the quantized quantile table (uint8
#: entries: low 7 bits of payload + 1 "stepped bin" flag bit).
QUANT_BINS = 256


def quantile_table(cdf: np.ndarray, m_bins: int) -> np.ndarray:
    """Quantize inverse-CDF lookup into ``m_bins`` uniform bins.

    For each CDF row, entry ``m`` holds ``count(m / M)`` — the inverse
    CDF at the bin's left edge — in the low 7 bits, with bit 7 set when
    some CDF level falls strictly inside the bin (so the count steps
    within it and the caller must resolve that element exactly).
    Requires ``n <= 127`` counts to fit the payload bits.
    """
    n = cdf.shape[-1] - 1
    rows = cdf[..., :n].reshape(-1, n)
    vc = rows.shape[0]
    s = rows * m_bins
    # First bin edge at/above each CDF level: count(m/M) counts the
    # levels with ceil(s_k) <= m.
    m0 = np.clip(np.ceil(s).astype(np.int64), 0, m_bins)
    hist = np.bincount(
        (np.arange(vc)[:, None] * (m_bins + 1) + m0).ravel(),
        minlength=vc * (m_bins + 1),
    ).reshape(vc, m_bins + 1)
    start = np.cumsum(hist, axis=1)[:, :m_bins].astype(np.uint8)
    # A level strictly inside bin floor(s_k) makes that bin stepped.
    f = np.floor(s)
    interior = (s > f) & (f < m_bins)
    stepped = np.bincount(
        (np.arange(vc)[:, None] * m_bins + np.where(interior, f, 0).astype(np.int64)).ravel(),
        weights=interior.ravel(),
        minlength=vc * m_bins,
    ).reshape(vc, m_bins) > 0
    return start | (stepped.astype(np.uint8) << 7)


def counts_by_quantile(
    quant: np.ndarray,
    cdf: np.ndarray,
    idx: np.ndarray,
    u: np.ndarray,
    col_ids: np.ndarray,
) -> np.ndarray:
    """Exact Binomial counts: one gather against the quantized table.

    ``quant`` is the :func:`quantile_table` for ``cdf`` (any leading
    shape; both are reshaped to ``(laws, ...)`` with ``laws = values *
    cols``); ``idx`` holds the value-row index per element with columns
    on the last axis; ``u`` the uniforms in ``[0, 1)`` of ``idx``'s
    shape; ``col_ids`` the ``(cols,)`` column indices.

    Unstepped bins return the exact count directly; the rare elements
    whose uniform lands in a stepped bin (a CDF level inside the bin)
    are resolved against the full CDF row with the *same* uniform, so
    the sample stays exactly Binomial. ``u < 1`` guarantees the bin
    index stays in range (``u * M`` is an exact power-of-two scaling,
    so it cannot round up to ``M``) — no clamp pass is spent on it.
    """
    n = cdf.shape[-1] - 1
    cols = col_ids.shape[-1]
    m_bins = quant.shape[-1]
    bins = (u * m_bins).astype(np.intp)
    # law = idx * cols + col_ids, folded into the gather index in place.
    law = idx * cols
    law += col_ids
    law *= m_bins
    law += bins
    entry = quant.reshape(-1)[law]
    counts = (entry & 0x7F).astype(np.int64)
    flagged = entry >= 0x80
    if flagged.any():
        cell = idx[flagged] * cols + np.broadcast_to(col_ids, idx.shape)[flagged]
        rows = cdf.reshape(-1, n + 1)[cell]
        counts[flagged] = (rows[:, :n] <= u[flagged][:, None]).sum(axis=-1)
    return counts


def counts_by_search(
    cdf: np.ndarray,
    idx: np.ndarray,
    u: np.ndarray,
    col_ids: np.ndarray,
) -> np.ndarray:
    """Inverse-CDF sample via branchless binary search on the table.

    ``count = #{k < L : cdf_k <= u}`` — since each CDF row is sorted,
    the count is found in ``ceil(log2(L))`` gather/compare rounds
    instead of materializing the per-element CDF row. Used when the
    window is too long for the quantile table.
    """
    n = cdf.shape[-1] - 1
    flat = cdf.reshape(-1)
    row_len = n + 1
    cols = col_ids.shape[-1]
    base = idx * (cols * row_len)
    base += col_ids * row_len
    pos = np.zeros(idx.shape, dtype=np.intp)
    b = 1
    while (b << 1) <= n:
        b <<= 1
    while b:
        cand = pos + b
        levels = flat[base + np.minimum(cand, n) - 1]
        pos += np.where((cand <= n) & (levels <= u), b, 0)
        b >>= 1
    return pos


class DrawBatch:
    """Uniforms for a whole shard pass, pre-drawn in one generator call.

    Construction draws ``rng.random(total)`` once; each :meth:`take`
    serves the next consecutive slice reshaped to the requested shape.
    Because ``Generator.random`` fills from a sequential stream in C
    order, the served slices are bit-identical to the per-layer
    ``rng.random(shape)`` calls they replace (same generator, same
    order) — batching changes *when* the uniforms are drawn, never
    *what* they are.
    """

    __slots__ = ("_u", "_pos")

    def __init__(self, rng: np.random.Generator, total: int) -> None:
        total = int(total)
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self._u = rng.random(total)
        self._pos = 0

    @property
    def total(self) -> int:
        return self._u.size

    @property
    def consumed(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._u.size - self._pos

    def take(self, shape) -> np.ndarray:
        """The next ``prod(shape)`` uniforms, reshaped to ``shape``."""
        size = 1
        for dim in shape:
            size *= int(dim)
        end = self._pos + size
        if end > self._u.size:
            raise ValueError(
                f"draw batch exhausted: need {size} uniforms for {tuple(shape)}, "
                f"have {self._u.size - self._pos} of {self._u.size} left"
            )
        out = self._u[self._pos : end].reshape(shape)
        self._pos = end
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DrawBatch {self._pos}/{self._u.size} consumed>"
