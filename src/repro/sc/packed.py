"""Bit-packed stochastic streams: uint64 bit-plane words.

The simulator's hot loops move windows of stochastic bits around — the
L-clock observation of every crossbar column, the K per-tile streams
feeding the SC accumulation module, and the SC arithmetic benches. A
naive representation spends one float64 (or int64) per *bit*; this
module packs 64 stream bits into one ``uint64`` word so that

* memory drops 64x (512x vs float64),
* gate ops (AND / XNOR / MUX) process 64 clocks per machine op, and
* counting becomes a native popcount instead of a reduction over a
  materialized bit tensor.

Layout convention: bits are packed along a *stream* axis (the window /
time axis), LSB-first within each word, and the packed word axis takes
the stream axis's place — a ``(L, N, cols)`` bit tensor becomes a
``(ceil(L/64), N, cols)`` word tensor. Tail bits of the last word are
always zero, an invariant every helper here preserves so popcounts and
OR-compressions never see garbage bits.

:class:`PackedStream` is a tiny value object bundling the words with the
true bit length; :mod:`repro.sc.arithmetic` accepts it interchangeably
with int8 bit arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, new_rng

BITS_PER_WORD = 64


def packed_word_count(n_bits: int) -> int:
    """Words needed to hold ``n_bits`` stream bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be >= 0, got {n_bits}")
    return -(-n_bits // BITS_PER_WORD)


def tail_mask(n_bits: int) -> np.uint64:
    """Mask of the valid bits in the *last* word of an ``n_bits`` stream."""
    rem = n_bits % BITS_PER_WORD
    if rem == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << rem) - 1)


def pack_bits(bits: np.ndarray, axis: int = 0) -> np.ndarray:
    """Pack bits (0/1 or +-1 encoded; >0 means '1') along ``axis``.

    Returns a uint64 array where ``axis`` now indexes words
    (``ceil(L/64)`` of them), LSB-first; tail bits are zero.
    """
    ones = np.asarray(bits) > 0
    ones = np.moveaxis(ones, axis, -1)
    n_bits = ones.shape[-1]
    n_words = packed_word_count(n_bits)
    pad = n_words * BITS_PER_WORD - n_bits
    if pad:
        ones = np.concatenate(
            [ones, np.zeros(ones.shape[:-1] + (pad,), dtype=bool)], axis=-1
        )
    packed = np.packbits(ones, axis=-1, bitorder="little")
    words = np.ascontiguousarray(packed).view(np.uint64)
    return np.moveaxis(words, -1, axis)


def unpack_bits(
    words: np.ndarray, n_bits: int, axis: int = 0, bipolar: bool = False
) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Returns int8 bits along ``axis``: 0/1 by default, +-1 when
    ``bipolar`` is set.
    """
    w = np.moveaxis(np.asarray(words, dtype=np.uint64), axis, -1)
    if w.shape[-1] != packed_word_count(n_bits):
        raise ValueError(
            f"expected {packed_word_count(n_bits)} words for {n_bits} bits, "
            f"got {w.shape[-1]}"
        )
    as_bytes = np.ascontiguousarray(w).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little", count=n_bits)
    bits = bits.astype(np.int8)
    if bipolar:
        bits = (2 * bits - 1).astype(np.int8)
    return np.moveaxis(bits, -1, axis)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Elementwise number of set bits per uint64 word (int64)."""
    return np.bitwise_count(np.asarray(words, dtype=np.uint64)).astype(np.int64)


@dataclass(frozen=True)
class PackedStream:
    """A bit-stream packed into uint64 words along its leading axis.

    ``words`` has shape ``(W, ...)`` with ``W = ceil(n_bits / 64)``;
    element ``[..., t]`` of the logical stream lives in word ``t // 64``,
    bit ``t % 64`` (LSB-first). Tail bits are zero by construction.
    """

    words: np.ndarray
    n_bits: int

    def __post_init__(self) -> None:
        w = np.asarray(self.words, dtype=np.uint64)
        if w.shape[0] != packed_word_count(self.n_bits):
            raise ValueError(
                f"words leading axis {w.shape[0]} inconsistent with "
                f"n_bits={self.n_bits}"
            )
        object.__setattr__(self, "words", w)

    @classmethod
    def pack(cls, bits: np.ndarray, axis: int = 0) -> "PackedStream":
        b = np.asarray(bits)
        return cls(pack_bits(b, axis=axis), b.shape[axis])

    def unpack(self, bipolar: bool = False) -> np.ndarray:
        return unpack_bits(self.words, self.n_bits, axis=0, bipolar=bipolar)

    def popcount(self) -> np.ndarray:
        """Ones per stream (summed over the window), shape ``words.shape[1:]``."""
        return popcount_words(self.words).sum(axis=0)

    @property
    def shape(self):
        """Logical bit-tensor shape ``(n_bits, ...)``."""
        return (self.n_bits,) + self.words.shape[1:]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedStream(n_bits={self.n_bits}, words{self.words.shape})"


def _check_packed_pair(x: PackedStream, y: PackedStream) -> None:
    if x.n_bits != y.n_bits or x.words.shape != y.words.shape:
        raise ValueError(
            f"packed streams must share bit length and shape, got "
            f"{x.n_bits}/{x.words.shape} vs {y.n_bits}/{y.words.shape}"
        )


def packed_and(x: PackedStream, y: PackedStream) -> PackedStream:
    """Bitwise AND — the unipolar SC multiply, 64 clocks per word op."""
    _check_packed_pair(x, y)
    return PackedStream(x.words & y.words, x.n_bits)


def packed_or(x: PackedStream, y: PackedStream) -> PackedStream:
    """Bitwise OR — the APC's approximate 2:1 compressor."""
    _check_packed_pair(x, y)
    return PackedStream(x.words | y.words, x.n_bits)


def packed_xnor(x: PackedStream, y: PackedStream) -> PackedStream:
    """Bitwise XNOR — the bipolar SC multiply.

    The complement would set the last word's tail bits, so they are
    re-masked to keep the zero-tail invariant.
    """
    _check_packed_pair(x, y)
    words = ~(x.words ^ y.words)
    if words.shape[0]:
        words[-1] &= tail_mask(x.n_bits)
    return PackedStream(words, x.n_bits)


def packed_mux(x: PackedStream, y: PackedStream, seed: SeedLike = None) -> PackedStream:
    """Scaled add of two packed streams: per-bit uniform 2-way MUX.

    Each output bit is taken from ``x`` or ``y`` with probability 1/2,
    so ``E[out] = (x + y) / 2`` — the SC scaled adder, on words.
    """
    _check_packed_pair(x, y)
    rng = new_rng(seed)
    select = rng.integers(
        0, 1 << 64, size=x.words.shape, dtype=np.uint64
    )
    words = (select & x.words) | (~select & y.words)
    if words.shape[0]:
        words[-1] &= tail_mask(x.n_bits)
    return PackedStream(words, x.n_bits)
