"""Stochastic computing substrate (paper Sec. 2.3 and 4.3).

* :mod:`repro.sc.encoding` — unipolar/bipolar stochastic numbers.
* :mod:`repro.sc.streams` — stream generators (i.i.d. and LFSR) and
  correlation diagnostics.
* :mod:`repro.sc.arithmetic` — SC multiply / scaled add on bit-streams.
* :mod:`repro.sc.packed` — uint64 bit-plane packing: 64 stream bits per
  word for the simulator's hot loops.
* :mod:`repro.sc.accumulate` — the SC-based accumulation module that sums
  per-crossbar stochastic outputs (APC + comparator).
"""

from repro.sc.encoding import (
    bipolar_decode,
    bipolar_encode,
    bipolar_probability,
    unipolar_decode,
    unipolar_encode,
    unipolar_probability,
)
from repro.sc.streams import Lfsr, StreamGenerator, stochastic_cross_correlation
from repro.sc.arithmetic import sc_multiply_bipolar, sc_multiply_unipolar, sc_scaled_add
from repro.sc.packed import (
    PackedStream,
    pack_bits,
    packed_and,
    packed_mux,
    packed_or,
    packed_word_count,
    packed_xnor,
    popcount_words,
    unpack_bits,
)
from repro.sc.accumulate import ScAccumulationModule

__all__ = [
    "PackedStream",
    "pack_bits",
    "unpack_bits",
    "packed_word_count",
    "popcount_words",
    "packed_and",
    "packed_or",
    "packed_xnor",
    "packed_mux",
    "unipolar_probability",
    "unipolar_encode",
    "unipolar_decode",
    "bipolar_probability",
    "bipolar_encode",
    "bipolar_decode",
    "StreamGenerator",
    "Lfsr",
    "stochastic_cross_correlation",
    "sc_multiply_unipolar",
    "sc_multiply_bipolar",
    "sc_scaled_add",
    "ScAccumulationModule",
]
