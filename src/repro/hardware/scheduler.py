"""Bank-constrained execution schedule for the accelerator.

The default cost model (:class:`AcceleratorCostModel`) provisions one
physical crossbar per tile — maximal parallelism, the weights-stationary
regime. Real deployments (including the paper's prototype, whose
throughput implies heavy time multiplexing) own a limited number of
physical crossbar *banks* and stream weights from the buffer-chain
memory. This module schedules a compiled network onto ``n_banks``
physical arrays:

* the K row tiles of one column tile must be resident simultaneously
  (their outputs merge in one SC accumulation module);
* switching a bank to a different tile costs a weight-reload of
  ``Cs`` cycles (one row per cycle from the BCM);
* passes of the same column tile across spatial positions reuse the
  resident weights (weights-stationary inner loop).

The schedule yields cycles/image, bank utilization, and reload
overhead; feeding its cycle count back through the energy model gives
the throughput/power trade the paper's Table 2 rows sit on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel, LayerWorkload


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one network onto a bank pool."""

    n_banks: int
    cycles_per_image: int
    reload_cycles: int
    compute_cycles: int
    utilization: float
    throughput_images_per_s: float

    @property
    def reload_overhead(self) -> float:
        """Fraction of cycles spent reloading weights."""
        total = self.compute_cycles + self.reload_cycles
        return self.reload_cycles / total if total else 0.0


class BankScheduler:
    """Schedule layer workloads onto a fixed pool of crossbar banks.

    Parameters
    ----------
    config:
        Hardware configuration (crossbar size, window, clock).
    n_banks:
        Physical crossbar arrays available. Must cover the widest row
        tiling (max K across layers), otherwise the SC accumulation
        module cannot see all partial sums at once.
    reload_cycles_per_tile:
        Cycles to (re)program one bank; defaults to ``Cs`` (one row per
        cycle from the BCM).
    """

    def __init__(
        self,
        config: HardwareConfig,
        n_banks: int,
        reload_cycles_per_tile: int = None,
    ) -> None:
        if n_banks < 1:
            raise ValueError(f"n_banks must be >= 1, got {n_banks}")
        self.config = config
        self.n_banks = n_banks
        self.reload_cycles_per_tile = (
            config.crossbar_size
            if reload_cycles_per_tile is None
            else reload_cycles_per_tile
        )
        if self.reload_cycles_per_tile < 0:
            raise ValueError("reload cycles must be >= 0")

    def minimum_banks(self, workloads: Sequence[LayerWorkload]) -> int:
        """Smallest legal pool: the widest row tiling in the network."""
        return max(w.tile_grid(self.config.crossbar_size)[0] for w in workloads)

    def schedule(self, workloads: Sequence[LayerWorkload]) -> ScheduleResult:
        """Greedy weights-stationary schedule; returns cycle accounting.

        Column-tile groups are processed in order; each group loads its
        K row tiles into banks (parallel reload across banks: the
        reload latency is paid once per group wave, not per tile), then
        sweeps all spatial positions with the window held per position.
        ``floor(n_banks / K)`` groups are resident concurrently, so a
        larger pool overlaps more groups.
        """
        if not workloads:
            raise ValueError("need at least one workload")
        window = self.config.window_bits
        needed = self.minimum_banks(workloads)
        if self.n_banks < needed:
            raise ValueError(
                f"{self.n_banks} banks cannot host the widest layer "
                f"(needs {needed} resident row tiles)"
            )

        compute_cycles = 0
        reload_cycles = 0
        busy_bank_cycles = 0
        for w in workloads:
            rows, cols = w.tile_grid(self.config.crossbar_size)
            concurrent_groups = max(self.n_banks // rows, 1)
            group_waves = math.ceil(cols / concurrent_groups)
            # Each wave: parallel reload of its resident tiles, then the
            # spatial sweep with the window per position.
            wave_compute = w.positions * window
            compute_cycles += group_waves * wave_compute
            reload_cycles += group_waves * self.reload_cycles_per_tile
            busy_bank_cycles += cols * rows * (w.positions * window)

        total_cycles = compute_cycles + reload_cycles
        utilization = (
            busy_bank_cycles / (total_cycles * self.n_banks) if total_cycles else 0.0
        )
        return ScheduleResult(
            n_banks=self.n_banks,
            cycles_per_image=total_cycles,
            reload_cycles=reload_cycles,
            compute_cycles=compute_cycles,
            utilization=min(utilization, 1.0),
            throughput_images_per_s=self.config.clock_rate_hz / total_cycles,
        )

    def sweep_bank_counts(
        self,
        workloads: Sequence[LayerWorkload],
        bank_counts: Sequence[int],
    ) -> List[ScheduleResult]:
        """Throughput/utilization across pool sizes (skips illegal ones)."""
        results = []
        needed = self.minimum_banks(workloads)
        for count in bank_counts:
            if count < needed:
                continue
            scheduler = BankScheduler(
                self.config, count, self.reload_cycles_per_tile
            )
            results.append(scheduler.schedule(workloads))
        return results
