"""The AQFP crossbar synapse array (paper Sec. 4.1-4.2, Fig. 3).

Each logic-in-memory (LiM) cell stores one binary weight and XNORs it
with the row activation; the per-cell output currents merge in the
analog domain down each column, attenuated by the growing inductance
(``I1(Cs)``). An AQFP buffer per column detects the sign of the merged
current — stochastically, per Eq. (1) — acting as sign function + ADC.

The simulation is fully vectorized: a batch of activation vectors is
multiplied against the stored weight matrix, scaled to micro-amperes,
and pushed through the buffer's probability law.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import special

from repro.hardware.config import HardwareConfig
from repro.utils.rng import RngMixin, SeedLike

_SQRT_PI = math.sqrt(math.pi)


class CrossbarArray(RngMixin):
    """One ``Cs x Cs`` crossbar programmed with +-1 weights.

    Parameters
    ----------
    config:
        Hardware configuration (size, gray zone, attenuation...).
    weights:
        +-1 matrix of shape ``(rows, cols)`` with ``rows, cols <= Cs``.
        Unused rows contribute no current; attenuation is set by the
        *physical* array size ``Cs``, not the occupied rows.
    threshold_ua:
        Per-column threshold currents ``Ith`` (BN matching programs
        these); scalar or shape ``(cols,)``.
    """

    def __init__(
        self,
        config: HardwareConfig,
        weights: np.ndarray,
        threshold_ua=0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.config = config
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {w.shape}")
        if w.shape[0] > config.crossbar_size or w.shape[1] > config.crossbar_size:
            raise ValueError(
                f"weights {w.shape} exceed crossbar size {config.crossbar_size}"
            )
        if not np.all(np.isin(w, (-1.0, 1.0))):
            raise ValueError("crossbar weights must be +-1")
        self.weights = w
        thr = np.broadcast_to(
            np.asarray(threshold_ua, dtype=np.float64), (w.shape[1],)
        ).copy()
        self.threshold_ua = thr

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.weights.shape[0]

    @property
    def cols(self) -> int:
        return self.weights.shape[1]

    def _check_activations(self, activations: np.ndarray) -> np.ndarray:
        a = np.asarray(activations, dtype=np.float64)
        if a.ndim == 1:
            a = a[None, :]
        if a.shape[-1] != self.rows:
            raise ValueError(
                f"activations last dim {a.shape[-1]} != rows {self.rows}"
            )
        # 0 is allowed: a zero-padding row injects no current (the LiM
        # cell sees no input pulse), which is how conv zero-padding maps
        # onto the crossbar.
        if not np.all(np.isin(a, (-1.0, 0.0, 1.0))):
            raise ValueError("crossbar activations must be in {-1, 0, +1}")
        return a

    # ------------------------------------------------------------------
    # Analog behaviour
    # ------------------------------------------------------------------
    def column_values(self, activations) -> np.ndarray:
        """Mathematical column sums (signed popcounts), shape (N, cols)."""
        a = self._check_activations(activations)
        return a @ self.weights

    def column_currents_ua(self, activations) -> np.ndarray:
        """Merged (attenuated) column currents in micro-amperes."""
        return self.column_values(activations) * self.config.unit_current_ua

    def output_probabilities(self, activations) -> np.ndarray:
        """P(column buffer emits '1') — Eq. (1) on the merged current."""
        i_in = self.column_currents_ua(activations)
        z = _SQRT_PI * (i_in - self.threshold_ua) / self.config.gray_zone_ua
        return 0.5 + 0.5 * special.erf(z)

    def expected_output(self, activations) -> np.ndarray:
        """E[+-1 output] per column."""
        return 2.0 * self.output_probabilities(activations) - 1.0

    # ------------------------------------------------------------------
    # Stochastic behaviour
    # ------------------------------------------------------------------
    def sample_output(self, activations) -> np.ndarray:
        """One clock of +-1 neuron outputs, shape (N, cols)."""
        p = self.output_probabilities(activations)
        return np.where(self.rng.random(p.shape) < p, 1.0, -1.0)

    def sample_window(self, activations, window_bits: Optional[int] = None) -> np.ndarray:
        """L-bit observation window: shape (L, N, cols) of +-1.

        The crossbar input is held constant while the neuron is observed
        for L clock cycles (paper Fig. 6a); the bits are i.i.d. because
        the buffer's thermal noise is white at the clock timescale.
        """
        bits = self.config.window_bits if window_bits is None else window_bits
        if bits < 1:
            raise ValueError(f"window_bits must be >= 1, got {bits}")
        p = self.output_probabilities(activations)
        u = self.rng.random((bits,) + p.shape)
        return np.where(u < p, 1.0, -1.0)

    def ideal_sign_output(self, activations) -> np.ndarray:
        """Noise-free reference: sign of the column value vs threshold."""
        v = self.column_values(activations)
        vth = self.threshold_ua / self.config.unit_current_ua
        return np.where(v >= vth, 1.0, -1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarArray(Cs={self.config.crossbar_size}, "
            f"occupied={self.rows}x{self.cols})"
        )
