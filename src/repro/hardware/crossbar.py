"""The AQFP crossbar synapse array (paper Sec. 4.1-4.2, Fig. 3).

Each logic-in-memory (LiM) cell stores one binary weight and XNORs it
with the row activation; the per-cell output currents merge in the
analog domain down each column, attenuated by the growing inductance
(``I1(Cs)``). An AQFP buffer per column detects the sign of the merged
current — stochastically, per Eq. (1) — acting as sign function + ADC.

The simulation is fully vectorized: a batch of activation vectors is
multiplied against the stored weight matrix, scaled to micro-amperes,
and pushed through the buffer's probability law.

Two sampling granularities are offered:

* :meth:`CrossbarArray.sample_window` — the raw L-bit window, optionally
  bit-packed (:class:`~repro.sc.packed.PackedStream`), for callers that
  need individual bits (approximate APC, correlation diagnostics).
* :meth:`CrossbarArray.sample_window_counts` — the fused fast path: the
  per-column number of ones in the window drawn directly from
  ``Binomial(L, p)``. Because the window bits are i.i.d. Bernoulli(p),
  the count distribution is *exactly* Binomial — no approximation — and
  the ``(L, N, cols)`` bit tensor is never materialized.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import special

from repro.hardware.config import HardwareConfig
from repro.sc.binomial import (
    QUANT_BINS as _QUANT_BINS,
    counts_by_quantile,
    counts_by_search,
    quantile_table,
)
from repro.sc.packed import PackedStream
from repro.utils.rng import RngMixin, SeedLike, binomial_cdf

_SQRT_PI = math.sqrt(math.pi)

#: Cap on a cached per-crossbar Binomial CDF table (floats). Above this
#: the fused count sampler falls back to ``Generator.binomial`` instead
#: of caching ``(2 * rows + 1, cols, L + 1)`` CDF levels.
_MAX_COUNT_TABLE_ELEMENTS = 2_000_000

#: Cap on the quantized quantile table's size in bytes (uint8 entries,
#: ``repro.sc.binomial.QUANT_BINS`` uniform bins). Within the cap,
#: count sampling is a single table gather per element plus an exact
#: fix-up for the rare bins a CDF level falls inside.
_MAX_QUANT_TABLE_BYTES = 4_000_000


def check_activation_alphabet(
    a: np.ndarray, config: HardwareConfig, validate=None
) -> None:
    """Enforce the {-1, 0, +1} activation alphabet (the one shared rule).

    ``validate=None`` falls back to ``config.validate_inputs``; both the
    per-crossbar check and the tiled layer's fused path route through
    this helper so the rule cannot drift between them. For floats,
    ``a == 0 or a * a == 1`` holds exactly iff a is -1, 0, or +1
    (squaring cannot round a non-unit double onto 1.0, and inf / nan /
    subnormals all fail both arms) — cheaper than ``np.isin``. int8
    gets a plain range check.
    """
    if validate is None:
        validate = config.validate_inputs
    if not validate:
        return
    if a.dtype == np.int8:
        ok = bool(np.all((a >= -1) & (a <= 1)))
    else:
        ok = bool(np.all((a == 0.0) | (a * a == 1.0)))
    if not ok:
        raise ValueError("crossbar activations must be in {-1, 0, +1}")


class CrossbarArray(RngMixin):
    """One ``Cs x Cs`` crossbar programmed with +-1 weights.

    Parameters
    ----------
    config:
        Hardware configuration (size, gray zone, attenuation...).
    weights:
        +-1 matrix of shape ``(rows, cols)`` with ``rows, cols <= Cs``.
        Unused rows contribute no current; attenuation is set by the
        *physical* array size ``Cs``, not the occupied rows.
    threshold_ua:
        Per-column threshold currents ``Ith`` (BN matching programs
        these); scalar or shape ``(cols,)``.
    """

    def __init__(
        self,
        config: HardwareConfig,
        weights: np.ndarray,
        threshold_ua=0.0,
        seed: SeedLike = None,
        *,
        _allow_wide: bool = False,
    ) -> None:
        super().__init__(seed)
        self.config = config
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {w.shape}")
        # _allow_wide is internal (TiledLinearLayer row strips): every
        # column's physics is independent and set by the *row* count, so
        # sampling a logical strip spanning several column tiles at once
        # is exactly equivalent to sampling the tiles separately.
        if w.shape[0] > config.crossbar_size or (
            not _allow_wide and w.shape[1] > config.crossbar_size
        ):
            raise ValueError(
                f"weights {w.shape} exceed crossbar size {config.crossbar_size}"
            )
        if not np.all(np.isin(w, (-1.0, 1.0))):
            raise ValueError("crossbar weights must be +-1")
        self.weights = w
        thr = np.broadcast_to(
            np.asarray(threshold_ua, dtype=np.float64), (w.shape[1],)
        ).copy()
        self.threshold_ua = thr
        # Hot-loop scalars, hoisted out of the per-call path: the config
        # is immutable, so z = v * _z_scale - _z_offset is fixed at
        # construction (same math as Eq. (1) on the merged current).
        unit_ua = config.unit_current_ua
        self._z_scale = _SQRT_PI * unit_ua / config.gray_zone_ua
        self._z_offset = _SQRT_PI * thr / config.gray_zone_ua
        # Lazily built Binomial CDF / quantile tables for the fused
        # count sampler, keyed by window length: column values are
        # integers in [-rows, rows], so P(ones in window) has at most
        # (2 * rows + 1) * cols distinct laws per window length.
        self._count_tables = {}
        self._quant_tables = {}
        self._col_ids = np.arange(w.shape[1])

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.weights.shape[0]

    @property
    def cols(self) -> int:
        return self.weights.shape[1]

    def _check_activations(self, activations: np.ndarray, validate=None) -> np.ndarray:
        a = np.asarray(activations)
        if a.dtype != np.int8 and a.dtype != np.float64:
            a = a.astype(np.float64)
        if a.ndim == 1:
            a = a[None, :]
        if a.shape[-1] != self.rows:
            raise ValueError(
                f"activations last dim {a.shape[-1]} != rows {self.rows}"
            )
        # 0 is allowed: a zero-padding row injects no current (the LiM
        # cell sees no input pulse), which is how conv zero-padding maps
        # onto the crossbar. The alphabet scan is O(size) per forward, so
        # trusted callers (the executor, after validating a pipeline's
        # entry point once) can switch it off.
        check_activation_alphabet(a, self.config, validate)
        return a

    # ------------------------------------------------------------------
    # Analog behaviour
    # ------------------------------------------------------------------
    def column_values(self, activations, validate=None) -> np.ndarray:
        """Mathematical column sums (signed popcounts), shape (N, cols)."""
        a = self._check_activations(activations, validate=validate)
        if a.dtype == np.int8:
            # BLAS wants floats; the per-tile chunk is small, so the
            # upcast here is cheap while the caller's big buffers stay int8.
            a = a.astype(np.float64)
        return a @ self.weights

    def column_currents_ua(self, activations, validate=None) -> np.ndarray:
        """Merged (attenuated) column currents in micro-amperes."""
        return self.column_values(activations, validate=validate) * self.config.unit_current_ua

    def output_probabilities(self, activations, validate=None) -> np.ndarray:
        """P(column buffer emits '1') — Eq. (1) on the merged current."""
        v = self.column_values(activations, validate=validate)
        return self._probabilities_from_values(v)

    def _probabilities_from_values(self, v: np.ndarray) -> np.ndarray:
        z = v * self._z_scale - self._z_offset
        return 0.5 + 0.5 * special.erf(z)

    def expected_output(self, activations) -> np.ndarray:
        """E[+-1 output] per column."""
        return 2.0 * self.output_probabilities(activations) - 1.0

    # ------------------------------------------------------------------
    # Stochastic behaviour
    # ------------------------------------------------------------------
    def sample_output(self, activations) -> np.ndarray:
        """One clock of +-1 neuron outputs, shape (N, cols)."""
        p = self.output_probabilities(activations)
        return np.where(self.rng.random(p.shape) < p, 1.0, -1.0)

    def sample_window(
        self,
        activations,
        window_bits: Optional[int] = None,
        packed: bool = False,
        validate=None,
    ):
        """L-bit observation window: shape (L, N, cols) of +-1.

        The crossbar input is held constant while the neuron is observed
        for L clock cycles (paper Fig. 6a); the bits are i.i.d. because
        the buffer's thermal noise is white at the clock timescale.

        With ``packed=True`` the window is returned as a
        :class:`~repro.sc.packed.PackedStream` of uint64 bit-plane words
        (``ceil(L/64), N, cols``) instead of a float64 bit tensor —
        the representation the bit-level APC path consumes.
        """
        bits = self.config.window_bits if window_bits is None else window_bits
        if bits < 1:
            raise ValueError(f"window_bits must be >= 1, got {bits}")
        p = self.output_probabilities(activations, validate=validate)
        u = self.rng.random((bits,) + p.shape)
        if packed:
            return PackedStream.pack(u < p, axis=0)
        return np.where(u < p, 1.0, -1.0)

    def _count_cdf_table(self, bits: int) -> Optional[np.ndarray]:
        """Cached Binomial CDF levels for every (column value, column).

        Shape ``(2 * rows + 1, cols, bits + 1)``: row ``v + rows`` holds
        the CDF of ``Binomial(bits, p(v))`` for each column's threshold.
        Returns None when the table would be too large to cache.
        """
        table = self._count_tables.get(bits)
        if table is None:
            n_values = 2 * self.rows + 1
            if n_values * self.cols * (bits + 1) > _MAX_COUNT_TABLE_ELEMENTS:
                return None
            v = np.arange(-self.rows, self.rows + 1, dtype=np.float64)
            p = self._probabilities_from_values(v[:, None])
            table = binomial_cdf(p, bits)
            self._count_tables[bits] = table
        return table

    def _count_quant_table(self, bits: int) -> Optional[np.ndarray]:
        """Cached quantized inverse-CDF table, flat (values * cols, M)."""
        table = self._quant_tables.get(bits)
        if table is None:
            if bits > 127:
                return None
            n_values = 2 * self.rows + 1
            if n_values * self.cols * _QUANT_BINS > _MAX_QUANT_TABLE_BYTES:
                return None
            cdf = self._count_cdf_table(bits)
            if cdf is None:
                return None
            table = quantile_table(cdf, _QUANT_BINS)
            self._quant_tables[bits] = table
        return table

    def supports_batched_draws(self, window_bits: Optional[int] = None) -> bool:
        """Whether caller-supplied uniforms can drive the count sampler.

        True when the inverse-CDF tables fit the caches; False means
        count sampling falls back to ``Generator.binomial``, which
        consumes the stream in a shape-dependent way no pre-drawn batch
        can reproduce.
        """
        bits = self.config.window_bits if window_bits is None else window_bits
        return self._count_cdf_table(bits) is not None

    def sample_window_counts(
        self,
        activations,
        window_bits: Optional[int] = None,
        validate=None,
    ) -> np.ndarray:
        """Fused sample-and-count: ones per column window, shape (N, cols).

        The L window bits are i.i.d. Bernoulli(p), so their sum is
        exactly ``Binomial(L, p)`` — sampling the count directly is
        distribution-equivalent to counting :meth:`sample_window` output
        while skipping the ``(L, N, cols)`` intermediate entirely. This
        is the fast path for exact (non-approximate) APC accumulation.

        Counts are drawn by inverse-CDF against a cached per-(value,
        column) Binomial table (column values are small integers, so the
        table is tiny and amortizes across calls); very long windows
        fall back to ``Generator.binomial``.
        """
        bits = self.config.window_bits if window_bits is None else window_bits
        if bits < 1:
            raise ValueError(f"window_bits must be >= 1, got {bits}")
        v = self.column_values(activations, validate=validate)
        return self._sample_counts_for_values(v, bits)

    def _sample_counts_for_values(
        self, v: np.ndarray, bits: int, u: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Window counts for precomputed integer column values ``v``.

        ``v`` may carry extra leading axes (the tiled layer batches all
        its row strips through one call); its last axis must be columns.
        ``u`` optionally supplies the uniforms (shape of ``v``, in
        ``[0, 1)``) so a caller can own the randomness — the batched
        backend and the grouped shard executor pass pre-drawn batches
        here; without it the sampler draws from its own generator,
        exactly as before. The inverse-CDF math itself lives in
        :mod:`repro.sc.binomial`.
        """
        cdf = self._count_cdf_table(bits)
        if cdf is None:
            if u is not None:
                raise ValueError(
                    "pre-drawn uniforms require the cached inverse-CDF "
                    "tables; this geometry/window falls back to "
                    "Generator.binomial (see supports_batched_draws)"
                )
            return self.rng.binomial(bits, self._probabilities_from_values(v))
        # Column values of valid activations are exactly integral floats,
        # so truncation is exact; with validation disabled, garbage is
        # clamped to the saturated laws instead of wrapping into another
        # row's CDF.
        idx = v.astype(np.intp)
        idx += self.rows
        np.clip(idx, 0, 2 * self.rows, out=idx)
        quant = self._count_quant_table(bits)
        if quant is None:
            if u is None:
                u = self.rng.random(idx.shape)
            return counts_by_search(cdf, idx, u, self._col_ids)
        if u is None:
            u = self.rng.random(idx.shape)
        return counts_by_quantile(quant, cdf, idx, u, self._col_ids)

    def ideal_sign_output(self, activations) -> np.ndarray:
        """Noise-free reference: sign of the column value vs threshold."""
        v = self.column_values(activations)
        vth = self.threshold_ua / self.config.unit_current_ua
        return np.where(v >= vth, 1.0, -1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossbarArray(Cs={self.config.crossbar_size}, "
            f"occupied={self.rows}x{self.cols})"
        )
