"""Architecture-level model of the AQFP BNN accelerator (paper Sec. 4).

* :mod:`repro.hardware.config` — :class:`HardwareConfig`, the knob bundle
  the co-optimization tunes (crossbar size, gray zone, window bits...).
* :mod:`repro.hardware.crossbar` — the LiM crossbar synapse array with
  analog column summation, attenuation, and stochastic AQFP neurons.
* :mod:`repro.hardware.accelerator` — tiled multi-crossbar execution with
  the SC accumulation module.
* :mod:`repro.hardware.cost` — JJ/latency/energy/power/TOPS/W accounting
  (regenerates Table 1 and the efficiency columns of Tables 2-3).
"""

from repro.hardware.config import HardwareConfig
from repro.hardware.crossbar import CrossbarArray
from repro.hardware.accelerator import AqfpAccelerator, TiledLinearLayer
from repro.hardware.scheduler import BankScheduler, ScheduleResult
from repro.hardware.cost import (
    COOLING_OVERHEAD_FACTOR,
    AcceleratorCostModel,
    CrossbarCost,
    LayerWorkload,
    crossbar_cost_table,
)

__all__ = [
    "HardwareConfig",
    "CrossbarArray",
    "AqfpAccelerator",
    "TiledLinearLayer",
    "CrossbarCost",
    "crossbar_cost_table",
    "AcceleratorCostModel",
    "LayerWorkload",
    "COOLING_OVERHEAD_FACTOR",
    "BankScheduler",
    "ScheduleResult",
]
