"""JJ / latency / energy / power / TOPS/W accounting.

Calibration (see :mod:`repro.device.cells`): an ``n x n`` crossbar costs

* ``JJ(n) = 12 n^2 + 48 n``   (LiM cell 12 JJ; 24 JJ row driver + 24 JJ
  column neuron per line),
* ``latency(n) = n * 3 stages * 5 ps`` (delay-line clocking),
* ``energy/cycle = JJ(n) * 5 zJ``.

These regenerate the paper's Table 1 bit-exactly. On top of the crossbar
block, the accelerator charges the SC accumulation modules, buffer-chain
memory, and a whole-network execution schedule to produce power,
throughput, and energy efficiency (Tables 2-3, Fig. 12).

Cooling: superconducting digital circuits at 4.2 K pay roughly 400x the
chip power in refrigeration (paper [34]); ``with_cooling`` divides
efficiency by :data:`COOLING_OVERHEAD_FACTOR`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.device.cells import (
    CLOCK_RATE_HZ,
    DELAY_LINE_STAGE_DELAY_S,
    ENERGY_PER_JJ_PER_CYCLE_J,
)
from repro.hardware.config import HardwareConfig

#: Cryocooler overhead at 4.2 K (paper [34]): watts at the wall per
#: watt dissipated on chip.
COOLING_OVERHEAD_FACTOR = 400.0

#: JJs per LiM cell / per row driver / per column neuron (Table 1 fit).
LIM_CELL_JJ = 12
ROW_PERIPHERAL_JJ = 24
COLUMN_PERIPHERAL_JJ = 24

#: Stages a signal crosses per crossbar line (drive, merge, read).
_STAGES_PER_LINE = 3


@dataclass(frozen=True)
class CrossbarCost:
    """Hardware cost of one ``n x n`` crossbar block (Table 1 row)."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")

    @property
    def jj_count(self) -> int:
        """``12 n^2 + 48 n`` Josephson junctions."""
        n = self.size
        return LIM_CELL_JJ * n * n + (ROW_PERIPHERAL_JJ + COLUMN_PERIPHERAL_JJ) * n

    @property
    def latency_s(self) -> float:
        """Input-to-output latency of one pass through the array."""
        return self.size * _STAGES_PER_LINE * DELAY_LINE_STAGE_DELAY_S

    @property
    def latency_ps(self) -> float:
        return self.latency_s * 1e12

    @property
    def energy_per_cycle_j(self) -> float:
        return self.jj_count * ENERGY_PER_JJ_PER_CYCLE_J

    @property
    def energy_per_cycle_aj(self) -> float:
        return self.energy_per_cycle_j * 1e18


def crossbar_cost_table(sizes: Sequence[int] = (4, 8, 16, 18, 36, 72, 144)) -> List[Dict]:
    """Regenerate Table 1: latency (ps), #JJs, energy (aJ) per size."""
    rows = []
    for n in sizes:
        cost = CrossbarCost(n)
        rows.append(
            {
                "crossbar_area": f"{n}x{n}",
                "size": n,
                "latency_ps": cost.latency_ps,
                "jj_count": cost.jj_count,
                "energy_aj": cost.energy_per_cycle_aj,
            }
        )
    return rows


@dataclass(frozen=True)
class LayerWorkload:
    """Shape of one BNN layer's matrix workload after conv lowering.

    ``in_features x out_features`` GEMV repeated ``positions`` times per
    image (= H_out * W_out for convolutions, 1 for FC layers).
    """

    in_features: int
    out_features: int
    positions: int = 1

    def __post_init__(self) -> None:
        if min(self.in_features, self.out_features, self.positions) < 1:
            raise ValueError("workload dimensions must be >= 1")

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features * self.positions

    @property
    def ops(self) -> int:
        """2 ops per MAC (multiply + accumulate), the TOPS convention."""
        return 2 * self.macs

    def tile_grid(self, crossbar_size: int) -> tuple:
        rows = math.ceil(self.in_features / crossbar_size)
        cols = math.ceil(self.out_features / crossbar_size)
        return rows, cols

    def tile_geometries(self, crossbar_size: int):
        """Occupied (rows, cols) of every tile in the grid.

        Edge tiles are smaller than ``Cs x Cs``; the energy model charges
        arrays cut to the occupied geometry (a deployment provisions
        right-sized subarrays rather than burning AC power in empty
        LiM cells).
        """
        geometries = []
        for i in range(0, self.in_features, crossbar_size):
            rows = min(crossbar_size, self.in_features - i)
            for j in range(0, self.out_features, crossbar_size):
                cols = min(crossbar_size, self.out_features - j)
                geometries.append((rows, cols))
        return geometries


def occupied_tile_jj(rows: int, cols: int) -> int:
    """JJs of an ``rows x cols`` (possibly non-square) crossbar tile."""
    if rows < 1 or cols < 1:
        raise ValueError("tile dimensions must be >= 1")
    return LIM_CELL_JJ * rows * cols + ROW_PERIPHERAL_JJ * rows + COLUMN_PERIPHERAL_JJ * cols


class AcceleratorCostModel:
    """Whole-accelerator performance/energy model.

    Execution schedule: the K row tiles of a column tile run in
    parallel (they are distinct crossbar blocks feeding one SC module);
    column tiles and spatial positions are time-multiplexed. Each pass
    holds the input for ``window_bits`` clock cycles.

    Energy per pass charges every parallel crossbar for the full window
    plus the SC accumulation module and the memory traffic; AQFP is
    AC-powered, so idle gates on the active clock also pay — modeled by
    the ``clock_overhead`` multiplier.

    Parameters
    ----------
    config:
        Hardware configuration (crossbar size, window bits, clock).
    workloads:
        Per-layer workloads of the network being accelerated.
    sc_module_jj_per_tilerow:
        JJ cost of one SC accumulation module input leg (APC slice +
        comparator share + interface).
    memory_jj_per_weight_bit:
        Amortized BCM JJs per resident weight bit.
    clock_overhead:
        Multiplier >= 1 for clock/bias distribution losses.
    """

    def __init__(
        self,
        config: HardwareConfig,
        workloads: Sequence[LayerWorkload],
        sc_module_jj_per_tilerow: int = 220,
        memory_jj_per_weight_bit: float = 0.5,
        clock_overhead: float = 1.15,
    ) -> None:
        if not workloads:
            raise ValueError("need at least one layer workload")
        if clock_overhead < 1:
            raise ValueError(f"clock_overhead must be >= 1, got {clock_overhead}")
        self.config = config
        self.workloads = list(workloads)
        self.sc_module_jj_per_tilerow = sc_module_jj_per_tilerow
        self.memory_jj_per_weight_bit = memory_jj_per_weight_bit
        self.clock_overhead = clock_overhead
        self.crossbar = CrossbarCost(config.crossbar_size)

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------
    def passes_per_image(self) -> int:
        """Total (column-tile x position) passes across layers."""
        total = 0
        for w in self.workloads:
            _, cols = w.tile_grid(self.config.crossbar_size)
            total += cols * w.positions
        return total

    def cycles_per_image(self) -> int:
        """Clock cycles to process one image (window per pass)."""
        return self.passes_per_image() * self.config.window_bits

    def latency_per_image_s(self) -> float:
        pipeline_fill = self.crossbar.latency_s * len(self.workloads)
        return self.cycles_per_image() / self.config.clock_rate_hz + pipeline_fill

    def throughput_images_per_s(self) -> float:
        return self.config.clock_rate_hz / self.cycles_per_image()

    def throughput_images_per_ms(self) -> float:
        return self.throughput_images_per_s() / 1e3

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def total_weight_bits(self) -> int:
        return sum(w.in_features * w.out_features for w in self.workloads)

    def energy_per_image_j(self) -> float:
        """Chip energy (no cooling) to run one inference."""
        cs = self.config.crossbar_size
        window = self.config.window_bits
        crossbar_energy = 0.0
        sc_energy = 0.0
        for w in self.workloads:
            rows, _ = w.tile_grid(cs)
            # Every tile is active for the full window at each spatial
            # position; energy follows the *occupied* tile geometry.
            tile_jj = sum(occupied_tile_jj(r, c) for r, c in w.tile_geometries(cs))
            crossbar_energy += (
                w.positions * window * tile_jj * ENERGY_PER_JJ_PER_CYCLE_J
            )
            _, cols = w.tile_grid(cs)
            passes = cols * w.positions
            sc_energy += (
                passes
                * rows
                * self.sc_module_jj_per_tilerow
                * window
                * ENERGY_PER_JJ_PER_CYCLE_J
            )
        memory_energy = (
            self.total_weight_bits()
            * self.memory_jj_per_weight_bit
            * ENERGY_PER_JJ_PER_CYCLE_J
            * self.cycles_per_image()
        )
        return (crossbar_energy + sc_energy + memory_energy) * self.clock_overhead

    def power_w(self) -> float:
        """Average chip power at the configured clock rate."""
        return self.energy_per_image_j() * self.throughput_images_per_s()

    def power_mw(self) -> float:
        return self.power_w() * 1e3

    # ------------------------------------------------------------------
    # Efficiency
    # ------------------------------------------------------------------
    def ops_per_image(self) -> int:
        return sum(w.ops for w in self.workloads)

    def energy_efficiency_tops_per_w(self, with_cooling: bool = False) -> float:
        """TOPS/W = ops per joule / 1e12, optionally divided by cooling."""
        efficiency = self.ops_per_image() / self.energy_per_image_j() / 1e12
        if with_cooling:
            efficiency /= COOLING_OVERHEAD_FACTOR
        return efficiency

    def summary(self) -> Dict[str, float]:
        """One-line report used by the comparison tables."""
        return {
            "crossbar_size": self.config.crossbar_size,
            "window_bits": self.config.window_bits,
            "power_mw": self.power_mw(),
            "throughput_images_per_ms": self.throughput_images_per_ms(),
            "tops_per_w": self.energy_efficiency_tops_per_w(),
            "tops_per_w_cooled": self.energy_efficiency_tops_per_w(with_cooling=True),
        }
