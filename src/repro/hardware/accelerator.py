"""Tiled multi-crossbar execution with SC accumulation (paper Fig. 6b).

A BNN layer whose fan-in exceeds one crossbar is split across K row
tiles; each tile's stochastic neuron outputs are observed for L clocks
and merged by the SC accumulation module. Column tiling handles layers
with more filters than crossbar columns.

BN matching (paper Sec. 5.2) programs per-column threshold currents; when
a filter spans K crossbars the threshold is divided evenly among them.

:meth:`TiledLinearLayer.forward` picks one of two hardware-faithful
execution paths per column tile:

* **Fused counts** (default, exact APC): each tile draws its window
  total directly from ``Binomial(L, p)`` and the accumulation module
  compares the summed ``(K, N, cols)`` integer counts against the
  reference — the ``(K, L, N, cols)`` bit tensor of the naive
  simulation is never built. Exactly distribution-equivalent.
* **Bit-level** (``approximate_layers > 0``): the OR-compressed APC
  needs individual bit coincidences, so tiles emit bit-packed windows
  (uint64 words, 64 clocks per word) that the module counts with
  packed-word popcounts.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.config import HardwareConfig
from repro.hardware.crossbar import CrossbarArray, check_activation_alphabet
from repro.sc.accumulate import ScAccumulationModule
from repro.sc.binomial import DrawBatch
from repro.utils.rng import RngMixin, SeedLike


class TiledLinearLayer(RngMixin):
    """One BNN layer (as a +-1 matrix) mapped onto a grid of crossbars.

    Parameters
    ----------
    config:
        Hardware configuration shared by all tiles.
    weights:
        +-1 matrix of shape ``(in_features, out_features)``.
    threshold_ua:
        Per-output threshold currents (from BN matching); scalar or
        shape ``(out_features,)``. Divided evenly across the K row tiles.
    approximate_layers:
        OR-only compression layers in the SC accumulation module's APC
        (0 = exact counting, which enables the fused-count fast path).
    """

    def __init__(
        self,
        config: HardwareConfig,
        weights: np.ndarray,
        threshold_ua=0.0,
        seed: SeedLike = None,
        approximate_layers: int = 0,
    ) -> None:
        super().__init__(seed)
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"weights must be 2-D, got {w.shape}")
        if not np.all(np.isin(w, (-1.0, 1.0))):
            raise ValueError("layer weights must be +-1")
        self.config = config
        self.in_features, self.out_features = w.shape
        cs = config.crossbar_size
        self.n_row_tiles = math.ceil(self.in_features / cs)
        self.n_col_tiles = math.ceil(self.out_features / cs)
        thresholds = np.broadcast_to(
            np.asarray(threshold_ua, dtype=np.float64), (self.out_features,)
        )

        # Child seeds in one vectorized draw; the tiles build their
        # generators lazily on first use (RngMixin), so layer setup and
        # reseeding never pay K*J eager PCG64 constructions. The draw
        # order and per-seed streams match the old spawn_rng exactly.
        child_seeds = self.rng.integers(0, 2**63 - 1, size=self.n_row_tiles * self.n_col_tiles)
        self.tiles: List[List[CrossbarArray]] = []
        for i in range(self.n_row_tiles):
            row: List[CrossbarArray] = []
            rows_slice = slice(i * cs, min((i + 1) * cs, self.in_features))
            for j in range(self.n_col_tiles):
                cols_slice = slice(j * cs, min((j + 1) * cs, self.out_features))
                tile = CrossbarArray(
                    config,
                    w[rows_slice, cols_slice],
                    # Eq. 16 threshold split evenly over the K row tiles.
                    threshold_ua=thresholds[cols_slice] / self.n_row_tiles,
                    seed=int(child_seeds[i * self.n_col_tiles + j]),
                )
                row.append(tile)
            self.tiles.append(row)

        self.module = ScAccumulationModule(
            n_crossbars=self.n_row_tiles,
            window_bits=config.window_bits,
            approximate_layers=approximate_layers,
        )
        # Fused-count fast path: the layer's weights padded to a
        # (K, Cs, out) block so forward computes all K * out column
        # values in one batched matmul, plus a single wide sampler
        # crossbar whose CDF tables serve every row strip — column
        # physics are independent and identical across strips (the
        # thresholds are split evenly), so one sampler covers them all.
        self._fused_sampler: Optional[CrossbarArray] = None
        self._fused_weights: Optional[np.ndarray] = None
        if self.module.supports_fused_counts:
            self._fused_sampler = CrossbarArray(
                config,
                w[: min(cs, self.in_features), :],
                threshold_ua=thresholds / self.n_row_tiles,
                seed=int(self.rng.integers(0, 2**63 - 1, size=1)[0]),
                _allow_wide=True,
            )
            padded = np.zeros(
                (self.n_row_tiles * cs, self.out_features), dtype=np.float64
            )
            padded[: self.in_features] = w
            self._fused_weights = np.ascontiguousarray(
                padded.reshape(self.n_row_tiles, cs, self.out_features)
            )
        # Execution statistics for the cost model.
        self.n_passes = 0
        self.n_inferences = 0

    # ------------------------------------------------------------------
    def _normalize_activations(self, activations: np.ndarray) -> np.ndarray:
        a = np.asarray(activations)
        # int8 +-1 buffers (the executor's working dtype) pass through
        # untouched; everything else normalizes to float64 as before.
        if a.dtype != np.int8 and a.dtype != np.float64:
            a = a.astype(np.float64)
        if a.ndim == 1:
            a = a[None, :]
        if a.shape[-1] != self.in_features:
            raise ValueError(
                f"activations last dim {a.shape[-1]} != in_features {self.in_features}"
            )
        return a

    def _split_activations(self, activations: np.ndarray) -> List[np.ndarray]:
        a = self._normalize_activations(activations)
        cs = self.config.crossbar_size
        return [
            a[:, i * cs : min((i + 1) * cs, self.in_features)]
            for i in range(self.n_row_tiles)
        ]

    def forward(self, activations: np.ndarray, validate=None) -> np.ndarray:
        """Hardware-faithful stochastic output, +-1 of shape (N, out).

        Dispatches per column tile: fused Binomial counts when the
        accumulation module's APC is exact, bit-packed windows for the
        approximate bit-level path. ``validate`` (None = the config's
        ``validate_inputs``) gates the per-tile activation-alphabet scan.
        """
        if self._fused_sampler is not None:
            return self._forward_fused(activations, validate)
        return self.forward_packed(activations, validate=validate)

    def forward_dense(self, activations: np.ndarray, validate=None) -> np.ndarray:
        """Bit-level execution on dense float windows (legacy path).

        Every tile materializes its full ``(L, N, cols)`` +-1 window and
        the accumulation module counts the raw bits — the slowest but
        most literal simulation, kept as the reference the packed and
        fused paths are checked against (the ``"stochastic-dense"``
        backend).
        """
        chunks = self._split_activations(activations)
        n = chunks[0].shape[0]
        outputs = []
        for j in range(self.n_col_tiles):
            streams = np.stack(
                [
                    self.tiles[i][j].sample_window(chunks[i], validate=validate)
                    for i in range(self.n_row_tiles)
                ],
                axis=0,
            )  # (K, L, N, cols) +-1 windows
            outputs.append(self.module.accumulate(streams))
        self.n_passes += self.n_row_tiles * self.n_col_tiles
        self.n_inferences += n
        return np.concatenate(outputs, axis=-1)

    def forward_packed(self, activations: np.ndarray, validate=None) -> np.ndarray:
        """Bit-level execution on uint64 bit-plane words.

        The per-column-tile loop of the packed sampling engine (the
        ``"stochastic-packed"`` backend); also the only execution path
        that supports an approximate (OR-compressed) APC, which needs
        individual bit coincidences.
        """
        chunks = self._split_activations(activations)
        n = chunks[0].shape[0]
        outputs = []
        for j in range(self.n_col_tiles):
            words = np.stack(
                [
                    self.tiles[i][j]
                    .sample_window(chunks[i], packed=True, validate=validate)
                    .words
                    for i in range(self.n_row_tiles)
                ],
                axis=0,
            )  # (K, W, N, cols) packed windows
            outputs.append(self.module.accumulate_packed(words))
        self.n_passes += self.n_row_tiles * self.n_col_tiles
        self.n_inferences += n
        return np.concatenate(outputs, axis=-1)

    def forward_fused_batched(
        self,
        activations: np.ndarray,
        validate=None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Fused-count execution with one concatenated Binomial draw.

        Like :meth:`_forward_fused` the column values of every row strip
        are computed in one batched matmul, but the ``(K, N, out)``
        window counts come from a *single* ``Generator.binomial`` call
        over the concatenated tiles instead of per-table inverse-CDF
        gathers — the whole layer costs one RNG invocation, attacking
        the RNG-bound regime of the fused path. ``rng`` lets a
        :class:`repro.api.Session` supply its own generator so it owns
        the stochastic state end to end.
        """
        if self._fused_sampler is None:
            raise ValueError(
                "forward_fused_batched requires an exact APC "
                f"(approximate_layers={self.module.apc.approximate_layers}); "
                "use forward_packed for the bit-level path"
            )
        values, n = self._fused_values(activations, validate)
        probabilities = self._fused_sampler._probabilities_from_values(values)
        gen = self.rng if rng is None else rng
        counts = gen.binomial(self.config.window_bits, probabilities)
        self.n_passes += self.n_row_tiles * self.n_col_tiles
        self.n_inferences += n
        return self.module.accumulate_counts(counts)

    def supports_batched_draws(self) -> bool:
        """Whether :meth:`forward_batched` can take pre-drawn uniforms.

        True when the fused path is active *and* the window is short
        enough for the cached inverse-CDF tables — the
        ``Generator.binomial`` fallback for very long windows cannot
        consume caller-supplied uniforms.
        """
        return (
            self._fused_sampler is not None
            and self._fused_sampler.supports_batched_draws(self.config.window_bits)
        )

    def forward_batched(
        self,
        activations: np.ndarray,
        validate=None,
        rng: Optional[np.random.Generator] = None,
        uniforms: Optional[DrawBatch] = None,
    ) -> np.ndarray:
        """Fused-count execution on caller-owned uniforms.

        The ``"stochastic-batched"`` backend's layer pass: identical
        math to :meth:`_forward_fused` (batched matmul + vectorized
        inverse-CDF against the cached quantile tables), but the
        uniforms driving the count sampler come from the *caller* —
        either ``uniforms`` (a :class:`~repro.sc.binomial.DrawBatch`
        pre-drawn for the whole shard pass, one ``Generator.random``
        call total) or ``rng`` (one draw per layer pass). The sampled
        counts are bit-identical for the same generator either way (the
        DrawBatch slices are the same doubles the per-pass draws would
        produce); only the number of generator invocations changes.
        """
        if self._fused_sampler is None:
            raise ValueError(
                "forward_batched requires an exact APC "
                f"(approximate_layers={self.module.apc.approximate_layers}); "
                "use forward_packed for the bit-level path"
            )
        values, n = self._fused_values(activations, validate)
        sampler = self._fused_sampler
        bits = self.config.window_bits
        gen = self.rng if rng is None else rng
        if sampler._count_cdf_table(bits) is None:
            # Long-window fallback: Generator.binomial owns its own
            # draws, so batched uniforms cannot apply here.
            if uniforms is not None:
                raise ValueError(
                    "pre-drawn uniforms require cached CDF tables; check "
                    "supports_batched_draws() before building a DrawBatch"
                )
            counts = gen.binomial(bits, sampler._probabilities_from_values(values))
        else:
            u = uniforms.take(values.shape) if uniforms is not None else gen.random(
                values.shape
            )
            counts = sampler._sample_counts_for_values(values, bits, u=u)
        self.n_passes += self.n_row_tiles * self.n_col_tiles
        self.n_inferences += n
        return self.module.accumulate_counts(counts)

    def _fused_values(self, activations: np.ndarray, validate=None):
        """Shared fused-path prologue: ``(K, N, out)`` column values.

        Normalizes and alphabet-checks the batch, zero-pads it to the
        ``K * Cs`` tile grid, and runs all K row strips against the
        padded weight block in one batched matmul. Both fused execution
        paths (:meth:`_forward_fused`, :meth:`forward_fused_batched`)
        route through here so padding/validation cannot drift between
        them. Returns ``(values, batch_size)``.
        """
        a = self._normalize_activations(activations)
        check_activation_alphabet(a, self.config, validate)
        n = a.shape[0]
        cs = self.config.crossbar_size
        padded_in = self.n_row_tiles * cs
        if padded_in != self.in_features:
            a_pad = np.zeros((n, padded_in), dtype=np.float64)
            a_pad[:, : self.in_features] = a
        else:
            a_pad = a.astype(np.float64, copy=False)
        strips = a_pad.reshape(n, self.n_row_tiles, cs).transpose(1, 0, 2)
        return np.ascontiguousarray(strips) @ self._fused_weights, n

    def reseed_sampling(self, seed: SeedLike) -> None:
        """Deterministically reseed every sampler in the layer.

        Replaces the layer RNG and re-derives each tile's generator plus
        the fused sampler's from it, so two layers reseeded with the
        same value replay identical stochastic draws regardless of prior
        use. :class:`repro.api.Session` uses this to own RNG state.
        """
        self.reseed(seed)
        children = self.rng.integers(
            0, 2**63 - 1, size=self.n_row_tiles * self.n_col_tiles + 1
        )
        for i in range(self.n_row_tiles):
            for j in range(self.n_col_tiles):
                self.tiles[i][j].reseed(int(children[i * self.n_col_tiles + j]))
        if self._fused_sampler is not None:
            self._fused_sampler.reseed(int(children[-1]))

    def _forward_fused(self, activations: np.ndarray, validate=None) -> np.ndarray:
        """Fused-count execution: batched matmul + one Binomial draw.

        Column values for all K row strips are computed against the
        padded ``(K, Cs, out)`` weight block in one batched matmul, the
        ``(K, N, out)`` window counts are drawn through the shared
        sampler in one call, and the accumulation module compares the
        summed counts — nothing per-bit is ever materialized.
        """
        values, n = self._fused_values(activations, validate)
        counts = self._fused_sampler._sample_counts_for_values(
            values, self.config.window_bits
        )
        self.n_passes += self.n_row_tiles * self.n_col_tiles
        self.n_inferences += n
        return self.module.accumulate_counts(counts)

    def expected_preactivation(self, activations: np.ndarray) -> np.ndarray:
        """Deterministic E[total count] - reference (diagnostic path)."""
        chunks = self._split_activations(activations)
        outputs = []
        for j in range(self.n_col_tiles):
            probs = np.stack(
                [
                    self.tiles[i][j].output_probabilities(chunks[i])
                    for i in range(self.n_row_tiles)
                ],
                axis=0,
            )
            expected = self.module.expected_value(probs)
            outputs.append(expected - self.module.reference)
        return np.concatenate(outputs, axis=-1)

    def ideal_output(self, activations: np.ndarray) -> np.ndarray:
        """Noise-free reference: sign of the exact integer pre-activation."""
        a = self._normalize_activations(activations)
        full = np.concatenate(
            [np.concatenate([t.weights for t in row], axis=1) for row in self.tiles],
            axis=0,
        )
        thresholds = np.concatenate(
            [t.threshold_ua for t in self.tiles[0]]
        ) * self.n_row_tiles
        vth = thresholds / self.config.unit_current_ua
        return np.where(a @ full >= vth, 1.0, -1.0)

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        return self.forward(activations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TiledLinearLayer({self.in_features}->{self.out_features}, "
            f"tiles={self.n_row_tiles}x{self.n_col_tiles}, "
            f"Cs={self.config.crossbar_size}, L={self.config.window_bits})"
        )


class AqfpAccelerator:
    """A pipeline of tiled layers — the full in-memory BNN engine.

    The accelerator executes +-1 activations through each
    :class:`TiledLinearLayer` in order. Convolution lowering (im2col) and
    BN matching are handled by the compiler in :mod:`repro.mapping`; the
    accelerator itself is dataflow only.
    """

    def __init__(self, layers: Optional[Sequence[TiledLinearLayer]] = None) -> None:
        self.layers: List[TiledLinearLayer] = list(layers or [])

    def append(self, layer: TiledLinearLayer) -> None:
        self.layers.append(layer)

    def forward(self, activations: np.ndarray) -> np.ndarray:
        x = activations
        for layer in self.layers:
            x = layer(x)
        return x

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        return self.forward(activations)

    def __len__(self) -> int:
        return len(self.layers)
