"""Hardware configuration bundle — the co-optimization search space.

The paper jointly tunes (Sec. 5.4): crossbar synapse array size ``Cs``,
SC bit-stream length (here ``window_bits``), and the gray-zone width
``dIin``; the buffer threshold current ``Ith`` is programmed per column
by BN matching rather than tuned globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.device.attenuation import AttenuationModel
from repro.device.josephson import DEFAULT_GRAY_ZONE_UA, OPERATING_TEMPERATURE_K
from repro.device.cells import CLOCK_RATE_HZ


@dataclass(frozen=True)
class HardwareConfig:
    """All AQFP accelerator knobs in one immutable record.

    Parameters
    ----------
    crossbar_size:
        ``Cs`` — the crossbar is ``Cs x Cs`` (rows = inputs, columns =
        filters).
    gray_zone_ua:
        ``dIin`` of the AQFP buffer at the operating temperature.
    window_bits:
        SC observation window / bit-stream length ``L``.
    attenuation:
        The fitted ``I1(Cs)`` power law.
    clock_rate_hz, temperature_k:
        Operating point (5 GHz, 4.2 K in the paper).
    validate_inputs:
        Scan every activation batch for the {-1, 0, +1} alphabet before
        sampling. On by default; the executor validates a pipeline's
        entry point once and disables the per-layer rescan, since all
        downstream activations are generated +-1 by construction.
    """

    crossbar_size: int = 16
    gray_zone_ua: float = DEFAULT_GRAY_ZONE_UA
    window_bits: int = 16
    attenuation: AttenuationModel = field(default_factory=AttenuationModel)
    clock_rate_hz: float = CLOCK_RATE_HZ
    temperature_k: float = OPERATING_TEMPERATURE_K
    validate_inputs: bool = True

    def __post_init__(self) -> None:
        if self.crossbar_size < 1:
            raise ValueError(f"crossbar_size must be >= 1, got {self.crossbar_size}")
        if self.gray_zone_ua <= 0:
            raise ValueError(f"gray_zone_ua must be > 0, got {self.gray_zone_ua}")
        if self.window_bits < 1:
            raise ValueError(f"window_bits must be >= 1, got {self.window_bits}")
        if self.clock_rate_hz <= 0:
            raise ValueError(f"clock_rate_hz must be > 0, got {self.clock_rate_hz}")
        if self.temperature_k < 0:
            raise ValueError(f"temperature_k must be >= 0, got {self.temperature_k}")

    # ------------------------------------------------------------------
    # Derived device quantities
    # ------------------------------------------------------------------
    @property
    def unit_current_ua(self) -> float:
        """``I1(Cs)`` — current representing one unit of value (Eq. 2)."""
        return float(self.attenuation.unit_current_ua(self.crossbar_size))

    @property
    def value_gray_zone(self) -> float:
        """``dVin(Cs) = dIin / I1(Cs)`` (Eq. 4)."""
        return self.gray_zone_ua / self.unit_current_ua

    def value_threshold(self, threshold_ua: float = 0.0) -> float:
        """``Vth = Ith / I1(Cs)`` for a programmed threshold current."""
        return threshold_ua / self.unit_current_ua

    def with_(self, **overrides) -> "HardwareConfig":
        """Copy with fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)
