"""SupeRBNN's primary contribution: randomized-aware BNN training and
algorithm/hardware co-optimization.

* :mod:`repro.core.binarization` — sign/STE weight binarization (Eq. 6,
  9) and the AQFP randomized activation binarization with the erf
  expectation backward (Eq. 7, 10).
* :mod:`repro.core.layers` — :class:`RandomizedBinaryConv2d` /
  :class:`RandomizedBinaryLinear` cells (conv -> alpha -> BN -> HardTanh
  -> randomized binarize, Fig. 8) and deterministic baselines.
* :mod:`repro.core.recu` — weight rectified clamp (Eq. 17) with the
  tau annealing schedule.
* :mod:`repro.core.bn_matching` — fold BN into per-column threshold
  currents (Eq. 16).
* :mod:`repro.core.trainer` — the full training recipe (warmup, cosine
  LR, ReCU annealing).
* :mod:`repro.core.coopt` — AME (Eq. 18) and the gray-zone/crossbar-size
  co-optimization.
"""

from repro.core.binarization import (
    binarize_weights,
    randomized_sign,
    deterministic_sign,
)
from repro.core.layers import (
    BinaryConv2d,
    BinaryLinear,
    RandomizedBinaryConv2d,
    RandomizedBinaryLinear,
)
from repro.core.recu import ReCU, TauSchedule
from repro.core.bn_matching import BnMatchResult, match_batch_norm
from repro.core.trainer import Trainer, TrainingConfig
from repro.core.noise_baselines import (
    WeightNoiseInjector,
    perturb_weights,
    weight_noise_comparison,
)
from repro.core.coopt import (
    average_mismatch_error,
    optimize_hardware_config,
    sweep_bitstream_lengths,
)

__all__ = [
    "binarize_weights",
    "randomized_sign",
    "deterministic_sign",
    "RandomizedBinaryConv2d",
    "RandomizedBinaryLinear",
    "BinaryConv2d",
    "BinaryLinear",
    "ReCU",
    "TauSchedule",
    "match_batch_norm",
    "BnMatchResult",
    "Trainer",
    "TrainingConfig",
    "average_mismatch_error",
    "optimize_hardware_config",
    "sweep_bitstream_lengths",
    "WeightNoiseInjector",
    "perturb_weights",
    "weight_noise_comparison",
]
