"""Weight rectified clamp — ReCU (paper Eq. 17, following [75]).

Real-valued weights of a binarized layer drift into a zero-mean Laplace
shape with heavy tails; tail weights almost never flip sign under SGD
("dead weights"). ReCU revives them by clamping each layer's weights to
the ``[Q(1 - tau), Q(tau)]`` quantile interval, with ``tau`` annealed
from 0.85 to 0.99 over training (paper Sec. 6.1).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.module import Module, Parameter


class TauSchedule:
    """Linear annealing of tau from ``tau_start`` to ``tau_end``.

    ``value(epoch)`` is clamped to the end value after ``total_epochs``.
    """

    def __init__(
        self,
        tau_start: float = 0.85,
        tau_end: float = 0.99,
        total_epochs: int = 100,
    ) -> None:
        if not 0.5 < tau_start <= 1.0 or not 0.5 < tau_end <= 1.0:
            raise ValueError("tau values must lie in (0.5, 1]")
        if tau_end < tau_start:
            raise ValueError("tau_end must be >= tau_start")
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.tau_start = tau_start
        self.tau_end = tau_end
        self.total_epochs = total_epochs

    def value(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        if self.total_epochs == 1:
            return self.tau_end
        t = min(epoch / (self.total_epochs - 1), 1.0)
        return self.tau_start + (self.tau_end - self.tau_start) * t


class ReCU:
    """Apply the rectified clamp in place to a set of weight tensors.

    Only multi-element weight tensors are clamped (per-channel alphas,
    BN parameters, and biases are left alone).
    """

    def __init__(self, schedule: TauSchedule = None) -> None:
        self.schedule = schedule or TauSchedule()

    @staticmethod
    def clamp_array(weights: np.ndarray, tau: float) -> np.ndarray:
        """Eq. 17: clamp to the [Q(1-tau), Q(tau)] quantile interval."""
        if not 0.5 < tau <= 1.0:
            raise ValueError(f"tau must be in (0.5, 1], got {tau}")
        q_hi = np.quantile(weights, tau)
        q_lo = np.quantile(weights, 1.0 - tau)
        return np.clip(weights, q_lo, q_hi)

    def apply_to_parameters(self, parameters: Iterable[Parameter], epoch: int) -> float:
        """Clamp every conv/linear weight in place; returns tau used."""
        tau = self.schedule.value(epoch)
        for p in parameters:
            if p.data.ndim >= 2:  # conv / linear weights only
                p.data = self.clamp_array(p.data, tau)
        return tau

    def apply_to_module(self, module: Module, epoch: int) -> float:
        """Clamp the ``weight`` parameters of all binarized cells."""
        tau = self.schedule.value(epoch)
        for _, sub in module.named_modules():
            weight = getattr(sub, "weight", None)
            if isinstance(weight, Parameter) and weight.data.ndim >= 2:
                weight.data = self.clamp_array(weight.data, tau)
        return tau
