"""The SupeRBNN training recipe (paper Sec. 6.1).

Bundles the pieces the paper trains with: SGD, linear warmup + cosine
annealing, the ReCU weight rectified clamp annealed from tau = 0.85 to
0.99, and per-epoch evaluation. Scaled down, the same recipe drives the
MNIST MLP and the CIFAR-10 VGG-small/ResNet-18 models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.module import Module
from repro.autograd.optim import SGD, WarmupCosineLR
from repro.autograd.tensor import Tensor, no_grad
from repro.core.recu import ReCU, TauSchedule
from repro.data.loaders import DataLoader


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training run.

    Paper defaults (scaled): LR 0.1, momentum 0.9, cosine annealing,
    5-epoch warmup, ReCU tau 0.85 -> 0.99.
    """

    epochs: int = 20
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    warmup_epochs: int = 5
    use_recu: bool = True
    tau_start: float = 0.85
    tau_end: float = 0.99

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.warmup_epochs >= max(self.epochs, 1) and self.epochs > 1:
            self.warmup_epochs = max(self.epochs // 4, 0)


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: Optional[float]
    learning_rate: float
    tau: Optional[float]


class Trainer:
    """Drive the randomized-aware BNN training loop.

    Parameters
    ----------
    model:
        Any :class:`Module` producing logits.
    config:
        Hyper-parameters; ``TrainingConfig()`` gives the paper recipe.
    """

    def __init__(self, model: Module, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = SGD(
            model.parameters(),
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self.recu = (
            ReCU(
                TauSchedule(
                    self.config.tau_start,
                    self.config.tau_end,
                    self.config.epochs,
                )
            )
            if self.config.use_recu
            else None
        )
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------
    def train_epoch(self, loader: DataLoader, epoch: int, scheduler) -> Dict[str, float]:
        self.model.train()
        losses = []
        accuracies = []
        tau = None
        for images, labels in loader:
            if self.recu is not None:
                tau = self.recu.apply_to_module(self.model, epoch)
            logits = self.model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
            accuracies.append(F.accuracy(logits, labels))
        scheduler.step()
        return {
            "loss": float(np.mean(losses)),
            "accuracy": float(np.mean(accuracies)),
            "tau": tau,
        }

    def evaluate(self, loader: DataLoader) -> float:
        """Top-1 accuracy with deterministic (ideal-device) binarization."""
        self.model.eval()
        correct = 0
        total = 0
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                total += len(labels)
        self.model.train()
        return correct / max(total, 1)

    def fit(
        self,
        train_loader: DataLoader,
        test_loader: Optional[DataLoader] = None,
        verbose: bool = False,
    ) -> List[EpochStats]:
        """Run the full recipe; returns per-epoch statistics."""
        cfg = self.config
        steps = cfg.epochs
        warmup = min(cfg.warmup_epochs, max(steps - 1, 0))
        if steps > 1:
            scheduler = WarmupCosineLR(self.optimizer, warmup, steps)
        else:
            from repro.autograd.optim import ConstantLR

            scheduler = ConstantLR(self.optimizer)
        for epoch in range(cfg.epochs):
            stats = self.train_epoch(train_loader, epoch, scheduler)
            test_acc = self.evaluate(test_loader) if test_loader is not None else None
            record = EpochStats(
                epoch=epoch,
                train_loss=stats["loss"],
                train_accuracy=stats["accuracy"],
                test_accuracy=test_acc,
                learning_rate=self.optimizer.lr,
                tau=stats["tau"],
            )
            self.history.append(record)
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch:3d}  loss {record.train_loss:.4f}  "
                    f"train {record.train_accuracy:.3f}"
                )
                if test_acc is not None:
                    msg += f"  test {test_acc:.3f}"
                print(msg)
        return self.history

    @property
    def best_test_accuracy(self) -> Optional[float]:
        accs = [h.test_accuracy for h in self.history if h.test_accuracy is not None]
        return max(accs) if accs else None
