"""Binarization operators with custom gradients.

Weights (paper Eq. 6, 9): ``wb = sign(wr)`` forward, straight-through
estimator backward (gradient clipped outside [-1, 1], the standard
BinaryConnect refinement).

Activations (paper Eq. 7, 10): the AQFP buffer *samples*

    ab = +1 with probability Pv(ar),  -1 otherwise,
    Pv(ar) = 0.5 + 0.5 erf( sqrt(pi) (ar - Vth) / dVin(Cs) )

and the backward pass differentiates the expectation

    E[ab] = erf( sqrt(pi) (ar - Vth) / dVin(Cs) ),

which is smooth — no piecewise STE surrogate is needed. The per-channel
``scale`` argument maps the network-domain activation into the crossbar
value domain (see :mod:`repro.core.layers`); its gradient is detached,
matching the paper's treatment of hardware constants.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.autograd.tensor import Function, Tensor
from repro.utils.rng import SeedLike, new_rng

_SQRT_PI = math.sqrt(math.pi)


class _WeightBinarize(Function):
    """sign() with clipped straight-through gradient."""

    @staticmethod
    def forward(ctx, w):
        ctx.save(mask=(np.abs(w) <= 1.0))
        return np.where(w >= 0, 1.0, -1.0)

    @staticmethod
    def backward(ctx, grad):
        return (grad * ctx["mask"],)


def binarize_weights(weights: Tensor) -> Tensor:
    """+-1 weights with STE backward (paper Eq. 6 / Eq. 9)."""
    return _WeightBinarize.apply(weights)


class _RandomizedSign(Function):
    """Sampled binarization with the erf expectation gradient (Eq. 7/10)."""

    @staticmethod
    def forward(ctx, x, scale, gray_zone, threshold, rng, stochastic, window_bits):
        z = _SQRT_PI * (x * scale - threshold) / gray_zone
        if stochastic:
            p = 0.5 + 0.5 * special.erf(z)
            if window_bits == 1:
                out = np.where(rng.random(x.shape) < p, 1.0, -1.0)
            else:
                # SC observation window: majority over L device samples
                # (ties resolve to +1, matching count >= L/2 comparators).
                bits = rng.random((window_bits,) + x.shape) < p
                out = np.where(2 * bits.sum(axis=0) >= window_bits, 1.0, -1.0)
        else:
            out = np.where(z >= 0, 1.0, -1.0)
        ctx.save(z=z, scale=scale, gray_zone=gray_zone)
        return out

    @staticmethod
    def backward(ctx, grad):
        z, scale, gray_zone = ctx["z"], ctx["scale"], ctx["gray_zone"]
        # d/dx erf(z(x)) = 2/sqrt(pi) * exp(-z^2) * sqrt(pi) * scale / dVin
        dexp = 2.0 * np.exp(-np.square(z)) * scale / gray_zone
        return (grad * dexp,)


def randomized_sign(
    x: Tensor,
    gray_zone: float,
    scale=1.0,
    threshold=0.0,
    rng=None,
    stochastic: bool = True,
    window_bits: int = 1,
    seed: SeedLike = None,
) -> Tensor:
    """AQFP randomized binarization of activations.

    Parameters
    ----------
    x:
        Real-valued activations (network domain).
    gray_zone:
        ``dVin(Cs)`` — value-domain gray zone.
    scale:
        Per-channel (broadcastable) factor mapping ``x`` into the
        crossbar value domain; signed (a negative BN gamma flips the
        output probability, paper Eq. 15). Gradient is not propagated
        into ``scale``.
    threshold:
        ``Vth`` in the crossbar value domain (0 once BN matching has
        absorbed it into ``Ith``).
    stochastic:
        If False, returns the deterministic sign of the scaled input —
        the ideal (noise-free) device.
    window_bits:
        SC observation window length; >1 emits the majority of L device
        samples (the cell-level model of the SC accumulation module).
    """
    if gray_zone <= 0:
        raise ValueError(f"gray_zone must be positive, got {gray_zone}")
    if window_bits < 1:
        raise ValueError(f"window_bits must be >= 1, got {window_bits}")
    rng = new_rng(seed) if rng is None else rng
    scale_arr = np.asarray(scale, dtype=np.float64)
    threshold_arr = np.asarray(threshold, dtype=np.float64)
    return _RandomizedSign.apply(
        x,
        scale_arr,
        float(gray_zone),
        threshold_arr,
        rng,
        bool(stochastic),
        int(window_bits),
    )


def deterministic_sign(x: Tensor) -> Tensor:
    """Plain sign with clipped STE — the non-randomized BNN baseline."""
    return _WeightBinarize.apply(x)


def expected_binary_activation(
    values: np.ndarray, gray_zone: float, threshold: float = 0.0
) -> np.ndarray:
    """E[ab] = erf(sqrt(pi)(v - Vth)/dVin) on raw arrays (no autograd)."""
    if gray_zone <= 0:
        raise ValueError(f"gray_zone must be positive, got {gray_zone}")
    v = np.asarray(values, dtype=np.float64)
    return special.erf(_SQRT_PI * (v - threshold) / gray_zone)
