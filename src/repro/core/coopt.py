"""Hardware-configuration co-optimization (paper Sec. 5.4).

Two error sources couple the hardware knobs to model accuracy:

1. the *average mismatch error* (AME, Eq. 18) — the AQFP buffer's
   nonlinear erf response makes the expected value carried by the
   stochastic stream deviate from the true pre-activation:

       AME = (1/Cs) * Int_{-Cs}^{+Cs} f(x|Cs) (x - y(x))^2 dx,
       y(x) = erf( sqrt(pi) (x - Vth) / dVin(Cs) ) * Cs,
       f(x|Cs) ~ N(Cs mu, Cs sigma^2);

2. stochastic-computing error, which shrinks with bit-stream length and
   is characterized empirically (Fig. 10; saturation at L = 16-32).

``optimize_hardware_config`` grid-searches (dIin, Cs) minimizing AME
under an energy-efficiency constraint on Cs, mirroring Sec. 5.4.2;
``sweep_bitstream_lengths`` is the harness behind the Fig. 10 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import integrate, stats

from repro.device.attenuation import AttenuationModel
from repro.hardware.config import HardwareConfig

_SQRT_PI = math.sqrt(math.pi)


def average_mismatch_error(
    crossbar_size: int,
    gray_zone_ua: float,
    attenuation: Optional[AttenuationModel] = None,
    activation_mean: float = 0.0,
    activation_std: float = 1.0,
    threshold_value: float = 0.0,
) -> float:
    """AME of one crossbar configuration (paper Eq. 18).

    ``activation_mean`` / ``activation_std`` are the per-cell statistics
    ``mu`` and ``sigma``; the column value is their ``Cs``-fold
    aggregate ``N(Cs mu, Cs sigma^2)``.
    """
    if crossbar_size < 1:
        raise ValueError(f"crossbar_size must be >= 1, got {crossbar_size}")
    if gray_zone_ua <= 0:
        raise ValueError(f"gray_zone_ua must be > 0, got {gray_zone_ua}")
    if activation_std <= 0:
        raise ValueError(f"activation_std must be > 0, got {activation_std}")
    attenuation = attenuation or AttenuationModel()
    cs = crossbar_size
    dvin = float(attenuation.value_domain_gray_zone(cs, gray_zone_ua))
    mu = cs * activation_mean
    sigma = math.sqrt(cs) * activation_std
    density = stats.norm(loc=mu, scale=sigma)

    def integrand(x: float) -> float:
        y = math.erf(_SQRT_PI * (x - threshold_value) / dvin) * cs
        return density.pdf(x) * (x - y) ** 2

    value, _ = integrate.quad(integrand, -cs, cs, limit=200)
    return value / cs


@dataclass(frozen=True)
class CooptResult:
    """Winner of the (dIin, Cs) grid search plus the full surface."""

    best_config: HardwareConfig
    best_ame: float
    grid: List[Dict[str, float]]


def optimize_hardware_config(
    gray_zones_ua: Sequence[float],
    crossbar_sizes: Sequence[int],
    attenuation: Optional[AttenuationModel] = None,
    activation_mean: float = 0.0,
    activation_std: float = 1.0,
    max_energy_per_cycle_aj: Optional[float] = None,
    window_bits: int = 16,
) -> CooptResult:
    """Grid-search (dIin, Cs) minimizing AME under an energy constraint.

    ``max_energy_per_cycle_aj`` bounds the per-crossbar energy (Table 1
    column); sizes exceeding it are excluded, mirroring "first constrain
    Cs to a range that meets the energy efficiency demand" (Sec. 5.4.2).
    """
    from repro.hardware.cost import CrossbarCost

    if not gray_zones_ua or not len(crossbar_sizes):
        raise ValueError("need at least one gray zone and one crossbar size")
    attenuation = attenuation or AttenuationModel()

    feasible_sizes = []
    for cs in crossbar_sizes:
        if max_energy_per_cycle_aj is not None:
            if CrossbarCost(cs).energy_per_cycle_aj > max_energy_per_cycle_aj:
                continue
        feasible_sizes.append(cs)
    if not feasible_sizes:
        raise ValueError("energy constraint excludes every crossbar size")

    grid: List[Dict[str, float]] = []
    best: Optional[Tuple[float, float, int]] = None
    for dzi in gray_zones_ua:
        for cs in feasible_sizes:
            ame = average_mismatch_error(
                cs,
                dzi,
                attenuation=attenuation,
                activation_mean=activation_mean,
                activation_std=activation_std,
            )
            grid.append({"gray_zone_ua": dzi, "crossbar_size": cs, "ame": ame})
            if best is None or ame < best[0]:
                best = (ame, dzi, cs)

    assert best is not None
    best_ame, best_dzi, best_cs = best
    config = HardwareConfig(
        crossbar_size=best_cs,
        gray_zone_ua=best_dzi,
        window_bits=window_bits,
        attenuation=attenuation,
    )
    return CooptResult(best_config=config, best_ame=best_ame, grid=grid)


def sweep_bitstream_lengths(
    evaluate: Callable[[int], float],
    lengths: Iterable[int] = (1, 2, 4, 8, 16, 32, 64),
) -> List[Dict[str, float]]:
    """Accuracy vs SC bit-stream length (the Fig. 10 harness).

    ``evaluate(L)`` must return accuracy under window length ``L``;
    returns ``[{"window_bits": L, "accuracy": acc}, ...]``.
    """
    results = []
    for length in lengths:
        if length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        results.append({"window_bits": int(length), "accuracy": float(evaluate(length))})
    return results


def saturation_length(
    sweep: Sequence[Dict[str, float]], tolerance: float = 0.005
) -> int:
    """Smallest L whose accuracy is within ``tolerance`` of the best.

    The paper observes saturation at L = 16-32; this extracts the same
    statistic from a sweep produced by :func:`sweep_bitstream_lengths`.
    """
    if not sweep:
        raise ValueError("sweep must be non-empty")
    best = max(item["accuracy"] for item in sweep)
    for item in sorted(sweep, key=lambda r: r["window_bits"]):
        if item["accuracy"] >= best - tolerance:
            return int(item["window_bits"])
    return int(sweep[-1]["window_bits"])
