"""BNN cells: the AQFP randomized cell (paper Fig. 8b) and baselines.

A SupeRBNN cell is

    binary conv (Eq. 8) -> per-channel alpha -> BatchNorm -> HardTanh
    -> AQFP randomized binarization (Eq. 7/14)

Where the gray zone applies is selectable per cell (``noise_domain``):

* ``"normalized"`` — the paper's Eq. 7 as written: ``Pv`` with
  ``dVin(Cs)`` acts on the post-BN/HardTanh activation. The erf
  backward (Eq. 10) then has an O(1) pass-band and deep models train
  well; this is the default and what the accuracy experiments use.
* ``"value"`` — ``Pv`` acts on the raw crossbar popcount ``D`` of
  Eq. 14. The activation is rescaled by the signed per-channel factor
  ``s = sqrt(var + eps) / (gamma * alpha)`` (detached; a negative BN
  gamma flips the probability, Eq. 15), making training noise *exactly*
  the deployed device noise; the software/hardware equivalence tests
  rely on this mode.

``stochastic=False`` turns every cell into the deterministic STE
baseline ("training a BNN normally"), used for the ablation study.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.layers import BatchNorm1d, BatchNorm2d
from repro.autograd.module import Module, Parameter
from repro.autograd.tensor import Tensor
from repro.autograd import init
from repro.core.binarization import binarize_weights, randomized_sign
from repro.hardware.config import HardwareConfig
from repro.utils.rng import RngMixin, SeedLike

#: Guard against division by a vanishing BN gamma when building the
#: value-domain scale.
_MIN_SLOPE = 1e-3


def _value_domain_scale(
    gamma: np.ndarray, alpha: np.ndarray, var: np.ndarray, eps: float
) -> np.ndarray:
    """Signed s = sqrt(var + eps) / (gamma * alpha), clipped away from 0."""
    slope = gamma * alpha
    sign = np.where(slope >= 0, 1.0, -1.0)
    slope = sign * np.maximum(np.abs(slope), _MIN_SLOPE)
    return np.sqrt(var + eps) / slope


class _RandomizedCellBase(Module, RngMixin):
    """Shared machinery of the conv/linear randomized cells.

    ``noise_domain`` selects where the gray zone applies:

    * ``"normalized"`` (default) — literal paper Eq. 7: ``Pv`` acts on the
      post-BN/HardTanh activation with ``dVin(Cs)``. This keeps the erf
      backward (Eq. 10) well-conditioned and is what the accuracy
      experiments (Figs. 10-11) are trained with.
    * ``"value"`` — ``Pv`` acts on the raw crossbar popcount (the
      activation is rescaled by the signed BN slope before binarization),
      which matches the deployed device noise *exactly* and is used by
      the software/hardware equivalence tests.
    """

    NOISE_DOMAINS = ("normalized", "value")

    def __init__(
        self,
        out_features: int,
        hardware: HardwareConfig,
        stochastic: bool,
        binarize_output: bool,
        noise_domain: str,
        seed: SeedLike,
    ) -> None:
        Module.__init__(self)
        RngMixin.__init__(self, seed)
        if noise_domain not in self.NOISE_DOMAINS:
            raise ValueError(
                f"noise_domain must be one of {self.NOISE_DOMAINS}, got {noise_domain!r}"
            )
        self.hardware = hardware
        self.stochastic = stochastic
        self.noise_domain = noise_domain
        #: sample the randomized device in eval() too (hardware-faithful
        #: software evaluation); default False = ideal sign at eval.
        self.sample_in_eval = False
        #: observation-window length used when sampling at eval; training
        #: always samples single bits (Eq. 7).
        self.eval_window_bits = hardware.window_bits
        self.binarize_output = binarize_output
        self.alpha = Parameter(init.ones((out_features,)))

    def _binarize_activation(self, z: Tensor, bn) -> Tensor:
        if self.noise_domain == "value":
            scale = _value_domain_scale(
                bn.weight.data, self.alpha.data, bn.last_var, bn.eps
            )
            shape = (1, -1) + (1,) * (z.ndim - 2)
            scale = scale.reshape(shape)
        else:
            scale = 1.0
        sampling = self.stochastic and (self.training or self.sample_in_eval)
        window = 1 if self.training else self.eval_window_bits
        return randomized_sign(
            z,
            gray_zone=self.hardware.value_gray_zone,
            scale=scale,
            rng=self.rng,
            stochastic=sampling,
            window_bits=window,
        )


class RandomizedBinaryConv2d(_RandomizedCellBase):
    """AQFP randomized BNN convolution cell.

    Input and output are +-1 activation maps (NCHW). Set
    ``binarize_output=False`` for a tail cell that emits real values.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        hardware: Optional[HardwareConfig] = None,
        stochastic: bool = True,
        binarize_output: bool = True,
        noise_domain: str = "normalized",
        seed: SeedLike = None,
    ) -> None:
        hardware = hardware or HardwareConfig()
        super().__init__(
            out_channels, hardware, stochastic, binarize_output, noise_domain, seed
        )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), seed
            )
        )
        self.bn = BatchNorm2d(out_channels)

    @property
    def fan_in(self) -> int:
        return self.in_channels * self.kernel_size * self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        wb = binarize_weights(self.weight)
        y = F.conv2d(x, wb, stride=self.stride, padding=self.padding)
        y = y * self.alpha.reshape(1, -1, 1, 1)
        z = self.bn(y)
        z = z.hardtanh()
        if not self.binarize_output:
            return z
        return self._binarize_activation(z, self.bn)


class RandomizedBinaryLinear(_RandomizedCellBase):
    """AQFP randomized BNN fully connected cell (for the MLP of Table 3)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hardware: Optional[HardwareConfig] = None,
        stochastic: bool = True,
        binarize_output: bool = True,
        noise_domain: str = "normalized",
        seed: SeedLike = None,
    ) -> None:
        hardware = hardware or HardwareConfig()
        super().__init__(
            out_features, hardware, stochastic, binarize_output, noise_domain, seed
        )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), seed))
        self.bn = BatchNorm1d(out_features)

    @property
    def fan_in(self) -> int:
        return self.in_features

    def forward(self, x: Tensor) -> Tensor:
        wb = binarize_weights(self.weight)
        y = x @ wb.T
        y = y * self.alpha
        z = self.bn(y)
        z = z.hardtanh()
        if not self.binarize_output:
            return z
        return self._binarize_activation(z, self.bn)


class BinaryConv2d(Module):
    """Deterministic STE BNN conv cell — the non-randomized baseline."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        binarize_output: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.binarize_output = binarize_output
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), seed
            )
        )
        self.alpha = Parameter(init.ones((out_channels,)))
        self.bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        wb = binarize_weights(self.weight)
        y = F.conv2d(x, wb, stride=self.stride, padding=self.padding)
        y = y * self.alpha.reshape(1, -1, 1, 1)
        z = self.bn(y).hardtanh()
        if not self.binarize_output:
            return z
        return binarize_weights(z)  # sign + clipped STE


class BinaryLinear(Module):
    """Deterministic STE BNN linear cell (classifier head by default).

    With ``binarize_output=False`` (default) this is the logits layer:
    binary weights, real-valued outputs scaled by alpha.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        binarize_output: bool = False,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.binarize_output = binarize_output
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), seed))
        self.alpha = Parameter(init.ones((out_features,)))
        self.bn = BatchNorm1d(out_features)

    def forward(self, x: Tensor) -> Tensor:
        wb = binarize_weights(self.weight)
        y = (x @ wb.T) * self.alpha
        y = self.bn(y)
        if self.binarize_output:
            return binarize_weights(y)
        return y
