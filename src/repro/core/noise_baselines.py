"""Data-independent device-noise baselines (paper Sec. 3).

ReRAM/PCM noise-aware training (the paper's [38]) perturbs the *weights*
— programming noise and drift are fixed once a model is mapped to a
device, independent of the input data. The paper contrasts this with
AQFP randomness, which is *data-dependent*: it acts on every
computation's accumulated current through ``Pv(Iin)``.

This module implements the weight-noise paradigm so the two can be
compared on the same substrate:

* :func:`perturb_weights` — one "mapping" draw: additive Gaussian noise
  on the real weights (before sign binarization flips near-zero weights).
* :class:`WeightNoiseInjector` — apply fresh weight noise each training
  step (noise-aware training a la [38]).
* :func:`weight_noise_comparison` — train with weight noise, deploy on
  the AQFP stochastic hardware, and compare against the randomized-aware
  recipe: weight-noise training does not model the data-dependent
  device, so it recovers less hardware accuracy.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.autograd.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


def perturb_weights(
    weights: np.ndarray,
    relative_sigma: float,
    rng: Optional[np.random.Generator] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """One mapping draw: w + sigma * std(w) * N(0, 1).

    ``relative_sigma`` is the noise scale relative to the layer's weight
    standard deviation (the convention of noise-aware ReRAM training).
    """
    if relative_sigma < 0:
        raise ValueError(f"relative_sigma must be >= 0, got {relative_sigma}")
    w = np.asarray(weights, dtype=np.float64)
    if relative_sigma == 0:
        return w.copy()
    rng = rng if rng is not None else new_rng(seed)
    scale = w.std()
    return w + relative_sigma * scale * rng.normal(size=w.shape)


class WeightNoiseInjector:
    """Noise-aware training hook: jitter weights before each forward.

    Call :meth:`inject` before the forward pass and :meth:`restore`
    after the optimizer step; gradients then see a weight sample, making
    the trained model robust to mapping noise — the [38] recipe.
    """

    def __init__(self, relative_sigma: float = 0.1, seed: SeedLike = None) -> None:
        if relative_sigma < 0:
            raise ValueError(f"relative_sigma must be >= 0, got {relative_sigma}")
        self.relative_sigma = relative_sigma
        self._rng = new_rng(seed)
        self._saved: Dict[int, np.ndarray] = {}

    def inject(self, module: Module) -> None:
        """Perturb every multi-dim weight in place (originals saved)."""
        if self._saved:
            raise RuntimeError("inject() called twice without restore()")
        for _, sub in module.named_modules():
            weight = getattr(sub, "weight", None)
            if isinstance(weight, Parameter) and weight.data.ndim >= 2:
                self._saved[id(weight)] = weight.data
                weight.data = perturb_weights(
                    weight.data, self.relative_sigma, rng=self._rng
                )

    def restore(self, module: Module) -> None:
        """Put the clean weights back (gradients remain on the sample)."""
        for _, sub in module.named_modules():
            weight = getattr(sub, "weight", None)
            if isinstance(weight, Parameter) and id(weight) in self._saved:
                weight.data = self._saved.pop(id(weight))
        self._saved.clear()


def weight_noise_comparison(
    relative_sigma: float = 0.2,
    crossbar_size: int = 16,
    window_bits: int = 4,
    epochs: int = 12,
    n_eval: int = 200,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Weight-noise training vs AQFP randomized-aware training.

    Both models deploy on the same stochastic AQFP hardware; returns
    software/hardware accuracies per variant. The AQFP-aware model
    should recover more hardware accuracy because its training noise has
    the right (data-dependent) structure — the paper's Sec. 3 argument.
    """
    from repro.core.trainer import Trainer, TrainingConfig
    from repro.data.loaders import DataLoader
    from repro.data.synthetic import make_mnist_like
    from repro.experiments.common import training_gray_zone
    from repro.hardware.config import HardwareConfig
    from repro.mapping.compiler import compile_model
    from repro.mapping.executor import evaluate_accuracy
    from repro.models.mlp import Mlp

    data = make_mnist_like(n_samples=1200, seed=seed)
    train, test = data.split(0.8, seed=1)
    hardware = HardwareConfig(
        crossbar_size=crossbar_size,
        gray_zone_ua=training_gray_zone(crossbar_size),
        window_bits=window_bits,
    )
    deploy = hardware.with_(
        gray_zone_ua=training_gray_zone(crossbar_size, dvin_target=8.0)
    )

    results: Dict[str, Dict[str, float]] = {}

    def _evaluate(model, software_acc):
        model.eval()
        network = compile_model(model, deploy)
        hw_acc = evaluate_accuracy(
            network, test.images[:n_eval], test.labels[:n_eval]
        )
        return {
            "software_accuracy": software_acc,
            "hardware_accuracy": hw_acc,
            "degradation": software_acc - hw_acc,
        }

    # AQFP randomized-aware training (the paper's method).
    model = Mlp(in_features=144, hidden=(48,), hardware=hardware, seed=seed)
    trainer = Trainer(model, TrainingConfig(epochs=epochs, warmup_epochs=2))
    trainer.fit(DataLoader(train, 64, seed=2))
    sw = trainer.evaluate(DataLoader(test, 256, shuffle=False, seed=0))
    results["aqfp_randomized"] = _evaluate(model, sw)

    # Weight-noise (data-independent) training on a deterministic model.
    model = Mlp(
        in_features=144, hidden=(48,), hardware=hardware, stochastic=False, seed=seed
    )
    trainer = Trainer(model, TrainingConfig(epochs=epochs, warmup_epochs=2))
    injector = WeightNoiseInjector(relative_sigma, seed=seed)
    loader = DataLoader(train, 64, seed=2)
    from repro.autograd.optim import WarmupCosineLR

    scheduler = WarmupCosineLR(trainer.optimizer, 2, epochs)
    from repro.autograd import Tensor
    from repro.autograd import functional as F

    for epoch in range(epochs):
        model.train()
        for images, labels in loader:
            if trainer.recu is not None:
                trainer.recu.apply_to_module(model, epoch)
            injector.inject(model)
            logits = model(Tensor(images))
            loss = F.cross_entropy(logits, labels)
            trainer.optimizer.zero_grad()
            loss.backward()
            injector.restore(model)
            trainer.optimizer.step()
        scheduler.step()
    sw = trainer.evaluate(DataLoader(test, 256, shuffle=False, seed=0))
    results["weight_noise"] = _evaluate(model, sw)
    return results
