"""Batch-normalization matching (paper Sec. 5.2, Eq. 16).

At inference, BN is the affine ``y = gamma (x - mu) / sqrt(var + eps) +
beta``. For a BNN cell, the entire BN + HardTanh + binarization tail
reduces to a *threshold* on the raw binary-conv output ``xconv``:

    sign(BN(alpha * xconv)) = sign(xconv - t),
    t = mu / alpha - beta * sqrt(var + eps) / (gamma * alpha)

when ``gamma > 0`` (output flipped when ``gamma < 0`` — Eq. 15). The
AQFP buffer realizes the threshold for free by programming its threshold
current

    Ith = t * I1(Cs)                                        (Eq. 16)

and the flip by negating the column weights and threshold. When a filter
spans K crossbars the threshold current is divided evenly (Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BnMatchResult:
    """Per-output-channel hardware programming derived from BN.

    Attributes
    ----------
    threshold_values:
        ``Vth`` in the crossbar value domain (raw popcount units).
    threshold_currents_ua:
        ``Ith = Vth * I1(Cs)`` to program into the column buffers.
    flip:
        Boolean mask of channels with ``gamma < 0``; the compiler negates
        those columns' weights and thresholds.
    """

    threshold_values: np.ndarray
    threshold_currents_ua: np.ndarray
    flip: np.ndarray

    def split_across(self, n_crossbars: int) -> np.ndarray:
        """Per-crossbar threshold currents when tiled over K arrays."""
        if n_crossbars < 1:
            raise ValueError(f"n_crossbars must be >= 1, got {n_crossbars}")
        return self.threshold_currents_ua / n_crossbars


def match_batch_norm(
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    alpha: np.ndarray,
    eps: float,
    unit_current_ua: float,
) -> BnMatchResult:
    """Fold BN + binarization into threshold currents (Eq. 16).

    All arguments are per-output-channel arrays except ``eps`` and
    ``unit_current_ua`` (= ``I1(Cs)``). Channels with ``|gamma|`` below
    1e-12 would make the cell output constant; they are treated as
    ``gamma = +1e-12`` and reported via the flip mask as non-flipped.
    """
    gamma = np.asarray(gamma, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    var = np.asarray(var, dtype=np.float64)
    alpha = np.asarray(alpha, dtype=np.float64)
    shapes = {gamma.shape, beta.shape, mean.shape, var.shape, alpha.shape}
    if len(shapes) != 1:
        raise ValueError(f"per-channel arrays must share a shape, got {shapes}")
    if np.any(var < 0):
        raise ValueError("variance must be non-negative")
    if np.any(alpha == 0):
        raise ValueError("alpha must be non-zero")
    if unit_current_ua <= 0:
        raise ValueError(f"unit current must be positive, got {unit_current_ua}")

    # The binarization condition is ``gamma*alpha*xconv >= gamma*mu -
    # beta*std``; dividing by the signed slope gives one threshold formula
    # and a flip whenever the slope is negative.
    std = np.sqrt(var + eps)
    slope = np.where(np.abs(gamma) < 1e-12, 1e-12, gamma) * alpha
    threshold = (gamma * mean - beta * std) / slope
    flip = slope < 0
    return BnMatchResult(
        threshold_values=threshold,
        threshold_currents_ua=threshold * unit_current_ua,
        flip=flip,
    )


def software_reference_output(
    xconv: np.ndarray,
    result: BnMatchResult,
) -> np.ndarray:
    """+-1 output of the folded cell (ideal, noise-free) — test oracle."""
    x = np.asarray(xconv, dtype=np.float64)
    base = np.where(x - result.threshold_values >= 0, 1.0, -1.0)
    return np.where(result.flip, -base, base)
