"""Exception-taxonomy rule: failures in the runtime/network tiers stay
inside the ``recovery.classify`` taxonomy.

PR 6's fault-tolerance contract hangs on a clean split: retryable
infrastructure failures (``BrokenProcessPool``, ``TransportUnavailable``,
``DeadlineExceeded``, broken pipes) versus fatal payload failures
(``PoisonedPayload``, validation errors). Two code patterns erode it
silently:

1. **Ad-hoc raises.** A ``raise`` in ``repro.runtime`` of an exception
   type the taxonomy has never heard of gets classified by the default
   branch (fatal) whether or not that is what the author meant. This
   rule requires every ``raise <Name>(...)`` in the runtime tier to
   name a *classifiable* type: a builtin the taxonomy handles, one of
   the taxonomy's own classes (``recovery`` / ``faults`` /
   ``transport``), or a class whose (statically visible) bases chain to
   those.

2. **Bare broad handlers.** An ``except Exception:`` in
   ``repro.runtime`` or ``repro.net`` that neither routes the caught
   failure through ``classify``/``classified`` nor carries an explicit
   ``taxonomy:`` annotation comment is swallowing failures outside the
   contract. Handlers that re-classify are fine; deliberate catch-alls
   (a supervisor loop, best-effort teardown) annotate the except line
   with ``# taxonomy: <why this is outside the retry loop>``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import Finding, Project, Rule, dotted_name, register_rule

RAISE_SCOPE = ("repro.runtime",)
HANDLER_SCOPE = ("repro.runtime", "repro.net")

#: Modules whose exception classes *are* the taxonomy.
TAXONOMY_MODULES = (
    "repro.runtime.recovery",
    "repro.runtime.faults",
    "repro.runtime.transport",
)

#: Builtins recovery.classify knows how to bucket (retryable set +
#: the payload/programming errors its default branch means to be fatal).
CLASSIFIABLE_BUILTINS = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "RuntimeError",
    "NotImplementedError",
    "OSError",
    "IOError",
    "TimeoutError",
    "ConnectionError",
    "ConnectionResetError",
    "BrokenPipeError",
    "EOFError",
    "InterruptedError",
    "FileNotFoundError",
    "PermissionError",
    "StopIteration",
    "AssertionError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "MemoryError",
    "KeyboardInterrupt",
    "SystemExit",
}

#: Call names whose *result* is by construction inside the taxonomy.
_CLASSIFYING_CALLS = {"classified", "classify"}

_ANNOTATION = "taxonomy:"


@register_rule(
    "exception-taxonomy",
    summary="runtime raises stay classifiable; broad handlers re-classify or annotate",
)
class ExceptionTaxonomyRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for f in project.repro_files(*RAISE_SCOPE):
            if f.tree is None:
                continue
            allowed = self._allowed_names(f)
            for node in ast.walk(f.tree):
                if isinstance(node, ast.Raise):
                    findings.extend(self._check_raise(f, node, allowed))
        for f in project.repro_files(*HANDLER_SCOPE):
            if f.tree is None:
                continue
            for node in ast.walk(f.tree):
                if isinstance(node, ast.ExceptHandler):
                    findings.extend(self._check_handler(f, node))
        return findings

    # ------------------------------------------------------------------
    def _allowed_names(self, f) -> Set[str]:
        """Exception names this module may raise: classifiable builtins,
        names imported from the taxonomy modules, plus local classes
        whose base chains (statically) reach an allowed name."""
        allowed = set(CLASSIFIABLE_BUILTINS)
        if f.tree is None:
            return allowed
        for node in ast.walk(f.tree):
            if isinstance(node, ast.ImportFrom) and node.module in TAXONOMY_MODULES:
                for alias in node.names:
                    allowed.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "concurrent.futures.process",
                "concurrent.futures",
                "queue",
                "asyncio",
            ):
                for alias in node.names:
                    allowed.add(alias.asname or alias.name)
        # Fixed point over local class definitions: a local exception is
        # fine if some base is already allowed.
        local = [n for n in ast.walk(f.tree) if isinstance(n, ast.ClassDef)]
        changed = True
        while changed:
            changed = False
            for node in local:
                if node.name in allowed:
                    continue
                bases = {
                    (dotted_name(base) or "").rsplit(".", 1)[-1]
                    for base in node.bases
                }
                if bases & allowed:
                    allowed.add(node.name)
                    changed = True
        return allowed

    def _check_raise(self, f, node: ast.Raise, allowed: Set[str]):
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
            if name is None:
                return  # raise (cls)(...) — dynamic, leave to runtime
            tail = name.rsplit(".", 1)[-1]
            if tail in _CLASSIFYING_CALLS:
                return  # raise classified(exc)
            if tail not in allowed:
                yield Finding(
                    rule=self.name,
                    severity="error",
                    path=f.rel,
                    line=node.lineno,
                    message=f"raise of {tail} in {f.module} is outside the "
                    f"recovery.classify taxonomy",
                    hint="raise a taxonomy type (recovery/faults/transport), "
                    "a classifiable builtin, or derive the class from one",
                )
        # `raise exc` (a variable) is a re-raise of something already
        # classified upstream — allowed.

    # ------------------------------------------------------------------
    def _check_handler(self, f, node: ast.ExceptHandler):
        if not self._is_broad(node.type):
            return
        if self._reclassifies(node):
            return
        if self._annotated(f, node):
            return
        yield Finding(
            rule=self.name,
            severity="error",
            path=f.rel,
            line=node.lineno,
            message=f"broad except {self._describe(node.type)} in {f.module} "
            f"neither re-classifies nor carries a taxonomy annotation",
            hint="narrow the handler, route the exception through "
            "recovery.classify/classified, or annotate the except line "
            "with `# taxonomy: <reason>`",
        )

    @staticmethod
    def _is_broad(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True  # bare except:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [dotted_name(el) or "" for el in type_node.elts]
        else:
            names = [dotted_name(type_node) or ""]
        return any(
            name.rsplit(".", 1)[-1] in ("Exception", "BaseException")
            for name in names
        )

    @staticmethod
    def _describe(type_node: Optional[ast.AST]) -> str:
        if type_node is None:
            return "(bare)"
        name = dotted_name(type_node)
        if name:
            return name
        if isinstance(type_node, ast.Tuple):
            parts = [dotted_name(el) or "?" for el in type_node.elts]
            return "(" + ", ".join(parts) + ")"
        return "<expr>"

    @staticmethod
    def _reclassifies(node: ast.ExceptHandler) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = dotted_name(child.func) or ""
                if name.rsplit(".", 1)[-1] in _CLASSIFYING_CALLS:
                    return True
        return False

    @staticmethod
    def _annotated(f, node: ast.ExceptHandler) -> bool:
        for line in (node.lineno, node.lineno - 1):
            if _ANNOTATION in f.line_text(line):
                return True
        return False
