"""Determinism rule: no unseeded entropy or wall-clock reads in the
seed/plan-derivation paths.

The reproducibility contract every scheduler keeps — N-worker logits
bit-identical to serial for the same session seed — holds only if all
randomness flows from the session generator (or an explicit seed) and
never from process entropy or the wall clock. This rule scopes itself
to the packages where seeds and plans are derived and executed
(``repro.runtime``, ``repro.api``, ``repro.net``, ``repro.sc``,
``repro.mapping``) and flags:

- legacy global-state NumPy RNG calls (``np.random.rand`` /
  ``np.random.seed`` / …) — these draw from an ambient stream no
  session owns;
- argless ``np.random.default_rng()`` — fresh OS entropy, silently
  voiding bit-identity;
- stdlib ``random.*`` calls;
- wall-clock reads (``time.time`` / ``datetime.now`` / …) — monotonic
  and perf-counter clocks are fine (telemetry), calendar time is not.

:mod:`repro.utils.rng` is the *declared entropy boundary* — the one
module allowed to mint unseeded generators (the documented legacy
behaviour of unseeded sessions) — and is exempt, exactly like
``repro.runtime.env`` is exempt from the env-discipline rule.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Finding, Project, Rule, dotted_name, register_rule

#: Packages where seed/plan derivation lives.
SCOPE = ("repro.runtime", "repro.api", "repro.net", "repro.sc", "repro.mapping")

#: The declared entropy boundary: the only module allowed to create
#: unseeded generators.
EXEMPT_MODULES = ("repro.utils.rng",)

#: np.random.<attr> calls that are *constructors taking explicit seeds
#: or states* — fine to call. Everything else on np.random is the
#: legacy global-state API.
_NP_RANDOM_OK = {
    "default_rng",  # checked separately for arglessness
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Wall-clock reads (calendar time). Monotonic/perf_counter are allowed.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


@register_rule(
    "determinism",
    summary="no unseeded RNG or wall-clock reads in seed/plan-derivation paths",
)
class DeterminismRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for f in project.repro_files(*SCOPE):
            if f.tree is None or f.module in EXEMPT_MODULES:
                continue
            imports_random = self._imports_stdlib_random(f.tree)
            for node in ast.walk(f.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                findings.extend(
                    self._check_call(f, node, name, imports_random)
                )
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _imports_stdlib_random(tree: ast.AST) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(alias.name == "random" for alias in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                return True
        return False

    def _check_call(self, f, node: ast.Call, name: str, imports_random: bool):
        tail = name.split(".")
        # numpy global-state RNG: np.random.X(...) / numpy.random.X(...)
        if len(tail) >= 3 and tail[-3] in ("np", "numpy") and tail[-2] == "random":
            attr = tail[-1]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield self._finding(
                        f,
                        node,
                        f"argless np.random.default_rng() mints fresh OS "
                        f"entropy in {f.module}",
                        "seed it from the session generator or an explicit "
                        "seed (repro.utils.rng.new_rng); unseeded entropy "
                        "belongs only in repro.utils.rng",
                    )
            elif attr not in _NP_RANDOM_OK:
                yield self._finding(
                    f,
                    node,
                    f"legacy global-state RNG call np.random.{attr}() in "
                    f"{f.module}",
                    "draw from an explicitly seeded np.random.Generator "
                    "owned by the session/plan instead",
                )
            return
        # stdlib random module
        if imports_random and len(tail) == 2 and tail[0] == "random":
            yield self._finding(
                f,
                node,
                f"stdlib random.{tail[1]}() draws from ambient global "
                f"state in {f.module}",
                "use a seeded np.random.Generator from repro.utils.rng",
            )
            return
        # wall clock
        if name in _WALL_CLOCK:
            yield self._finding(
                f,
                node,
                f"wall-clock read {name}() in seed/plan-derivation path "
                f"{f.module}",
                "use time.monotonic()/time.perf_counter() for intervals; "
                "calendar time must never influence plans or seeds",
            )

    def _finding(self, f, node: ast.AST, message: str, hint: str) -> Finding:
        return Finding(
            rule=self.name,
            severity="error",
            path=f.rel,
            line=node.lineno,
            message=message,
            hint=hint,
        )
