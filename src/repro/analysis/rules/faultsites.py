"""Fault-site catalog rule: every injection site named anywhere must be
declared in ``repro.runtime.faults.KNOWN_SITES``.

The chaos tier only means something if the sites it arms actually
exist: a typo'd ``FaultSpec(site="worker.shards")`` never fires, the
test silently stops testing recovery, and the reliability claim it
backed goes stale. This rule closes the loop between the *declared*
site registry (the ``KNOWN_SITES`` tuple exported from
:mod:`repro.runtime.faults`) and every use:

- ``fault_point("<literal>")`` calls in ``src/`` must name a declared
  site — an instrumented site missing from the catalog is as wrong as
  a misspelled one (the catalog is documentation *and* contract);
- ``FaultSpec(site="<literal>")`` constructions and ``{"site": ...}``
  dict payloads (the JSON wire form) in ``src/`` and ``tests/`` must
  name a declared site;
- a non-literal site expression cannot be checked statically and is
  reported as a warning so a human confirms it.

Unit tests that exercise the *plan machinery itself* with toy sites
waive individual lines with ``lint-static: allow[fault-site]``.

The catalog is read **statically** from the AST of ``faults.py`` — the
checker never imports the modules it checks, so it cannot be fooled by
import-time monkeying and runs without pulling in numpy.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    dotted_name,
    literal_str,
    register_rule,
)

FAULTS_MODULE = "repro.runtime.faults"
CATALOG_NAME = "KNOWN_SITES"


def declared_sites(project: Project) -> Optional[Tuple[str, ...]]:
    """Parse ``KNOWN_SITES`` out of the faults module AST."""
    f = project.by_module.get(FAULTS_MODULE)
    if f is None or f.tree is None:
        return None
    for node in ast.walk(f.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if CATALOG_NAME in targets and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                sites = []
                for element in node.value.elts:
                    value = literal_str(element)
                    if value is not None:
                        sites.append(value)
                return tuple(sites)
    return None


@register_rule(
    "fault-site",
    summary="fault_point()/FaultSpec sites must match the declared KNOWN_SITES catalog",
)
class FaultSiteRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        sites = declared_sites(project)
        if sites is None:
            yield Finding(
                rule=self.name,
                severity="error",
                path=f"src/{FAULTS_MODULE.replace('.', '/')}.py",
                line=1,
                message=(
                    f"could not statically read {CATALOG_NAME} from "
                    f"{FAULTS_MODULE}"
                ),
                hint=f"keep {CATALOG_NAME} a module-level tuple of string "
                f"literals in faults.py",
            )
            return
        catalog = set(sites)
        for f in project.files:
            if f.tree is None or f.module == FAULTS_MODULE:
                continue
            for node in ast.walk(f.tree):
                yield from self._check_node(f, node, catalog)

    # ------------------------------------------------------------------
    def _check_node(self, f, node: ast.AST, catalog: set):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            tail = name.rsplit(".", 1)[-1]
            if tail == "fault_point":
                yield from self._check_site_arg(
                    f,
                    node,
                    node.args[0] if node.args else None,
                    "fault_point",
                    catalog,
                )
            elif tail == "FaultSpec":
                site = None
                if node.args:
                    site = node.args[0]
                for kw in node.keywords:
                    if kw.arg == "site":
                        site = kw.value
                yield from self._check_site_arg(
                    f, node, site, "FaultSpec", catalog
                )
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is not None and literal_str(key) == "site":
                    yield from self._check_site_arg(
                        f, value, value, 'a {"site": ...} payload', catalog
                    )

    def _check_site_arg(
        self,
        f,
        node: ast.AST,
        site: Optional[ast.AST],
        what: str,
        catalog: set,
    ):
        if site is None:
            return
        literal = literal_str(site)
        if literal is None:
            # f-strings / variables: not statically checkable.
            yield Finding(
                rule=self.name,
                severity="warning",
                path=f.rel,
                line=node.lineno,
                message=f"{what} site is not a string literal; cannot be "
                f"checked against KNOWN_SITES",
                hint="use a literal site name so the catalog check applies",
            )
            return
        if literal not in catalog:
            known = ", ".join(sorted(catalog))
            yield Finding(
                rule=self.name,
                severity="error",
                path=f.rel,
                line=node.lineno,
                message=f"{what} names undeclared fault site {literal!r}",
                hint=f"declare it in {FAULTS_MODULE}.{CATALOG_NAME} or fix "
                f"the typo (known: {known})",
            )
