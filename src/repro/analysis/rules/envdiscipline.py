"""Env-discipline rule: every ``REPRO_*`` knob is declared once and
read only through the typed accessors.

The runtime grew ~9 environment knobs across five modules, each with
its own ad-hoc parsing and error wording — which is how a mis-set CI
variable turns into an opaque crash three layers deep.
:mod:`repro.runtime.env` is now the single boundary: a declared
``ENV_CATALOG`` (name, type, default, consumer — the source of the
generated ``docs/ENVIRONMENT.md``) plus typed accessors that fail
loudly with the variable's own name. This rule keeps it that way:

- any raw environment read (``os.environ.get`` / ``os.getenv`` /
  ``os.environ[...]`` / ``"X" in os.environ``) inside ``src/repro``
  outside the accessor module is an error — *every* knob goes through
  the boundary, not just the ``REPRO_*`` ones;
- in ``tests/`` and ``benchmarks/`` only raw reads of ``REPRO_*``
  names are flagged (test harnesses legitimately poke other
  variables); *writes* (monkeypatch, ``os.environ[k] = v``) are always
  fine — the discipline is about reads;
- an accessor call naming a variable missing from ``ENV_CATALOG`` is
  an error: using a knob means declaring it, exactly like registering
  a backend.

The catalog is parsed statically from the AST of ``env.py`` (the
checker never imports what it checks).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    dotted_name,
    literal_str,
    register_rule,
)

ENV_MODULE = "repro.runtime.env"
CATALOG_NAME = "ENV_CATALOG"
PREFIX = "REPRO_"

_ACCESSORS = {
    "env_raw",
    "env_str",
    "env_int",
    "env_float",
    "env_bool",
    "env_path",
}


def declared_env_vars(project: Project) -> Optional[Set[str]]:
    """Keys of the ``ENV_CATALOG`` dict literal in ``env.py``."""
    f = project.by_module.get(ENV_MODULE)
    if f is None or f.tree is None:
        return None
    for node in ast.walk(f.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        else:
            continue
        if CATALOG_NAME in targets and isinstance(value, ast.Dict):
            names = set()
            for key in value.keys:
                text = None if key is None else literal_str(key)
                if text is not None:
                    names.add(text)
            return names
    return None


@register_rule(
    "env-discipline",
    summary="REPRO_* reads go through repro.runtime.env and its declared catalog",
)
class EnvDisciplineRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        declared = declared_env_vars(project)
        if declared is None:
            yield Finding(
                rule=self.name,
                severity="error",
                path=f"src/{ENV_MODULE.replace('.', '/')}.py",
                line=1,
                message=f"could not statically read {CATALOG_NAME} from {ENV_MODULE}",
                hint=f"keep {CATALOG_NAME} a module-level dict literal with "
                f"string keys in env.py",
            )
            return
        for f in project.files:
            if f.tree is None or f.module == ENV_MODULE:
                continue
            in_src = f.module.startswith("repro.") or f.module == "repro"
            for node in ast.walk(f.tree):
                yield from self._check_node(f, node, declared, in_src)

    # ------------------------------------------------------------------
    def _check_node(self, f, node: ast.AST, declared: Set[str], in_src: bool):
        # os.environ.get("X") / os.getenv("X")
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            if name in ("os.environ.get", "os.getenv", "environ.get", "getenv"):
                key = literal_str(node.args[0]) if node.args else None
                yield from self._raw_read(f, node, key, in_src)
                return
            tail = name.rsplit(".", 1)[-1]
            if tail in _ACCESSORS:
                key = None
                if node.args:
                    key = literal_str(node.args[0])
                for kw in node.keywords:
                    if kw.arg == "name":
                        key = literal_str(kw.value)
                if key is not None and key not in declared:
                    yield Finding(
                        rule=self.name,
                        severity="error",
                        path=f.rel,
                        line=node.lineno,
                        message=f"accessor {tail}({key!r}) reads a variable "
                        f"missing from {ENV_MODULE}.{CATALOG_NAME}",
                        hint="declare the variable (type, default, consumer) "
                        "in ENV_CATALOG; the docs catalog is generated from it",
                    )
            return
        # os.environ["X"] — reads only (Store/Del are writes/cleanup)
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            name = dotted_name(node.value) or ""
            if name in ("os.environ", "environ"):
                key = literal_str(node.slice)
                yield from self._raw_read(f, node, key, in_src)
            return
        # "X" in os.environ
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            for comparator in node.comparators:
                if (dotted_name(comparator) or "") in ("os.environ", "environ"):
                    key = literal_str(node.left)
                    yield from self._raw_read(f, node, key, in_src)
            return

    def _raw_read(self, f, node: ast.AST, key: Optional[str], in_src: bool):
        if not in_src and (key is None or not key.startswith(PREFIX)):
            return  # tests may read non-REPRO variables raw
        shown = key if key is not None else "<dynamic>"
        yield Finding(
            rule=self.name,
            severity="error",
            path=f.rel,
            line=node.lineno,
            message=f"raw environment read of {shown} bypasses the typed "
            f"accessors in {ENV_MODULE}",
            hint="use env_str/env_int/env_float/env_bool/env_path from "
            "repro.runtime.env (and declare the variable in ENV_CATALOG)",
        )
