"""Layering rule: the import graph must stay acyclic and flow downward.

The architecture every PR since the seed has grown is a layered stack —
foundation utilities at the bottom, then the modelling/compilation
tier, the execution-strategy tier (``api.backends`` / ``api.results``),
the runtime scheduler subsystem on top of those, the session/serving
facade above the runtime, the network tier above everything, and the
CLI/analysis entry points at the very top. The contract: a module may
import *downward* (or sideways within its own layer), never upward, and
the module-level import graph stays acyclic.

The layer table below is the declared form of that contract, at module
granularity where package granularity lies (``repro.api`` is genuinely
split: ``backends``/``results`` sit *below* the runtime that consumes
them, while ``engine``/``serving``/``parallel`` sit *above* it). Rules
of engagement:

- only **module-scope** imports count: a function-local (lazy) import
  is the sanctioned escape hatch for deprecated shims and optional
  integrations — it cannot create an import-time cycle;
- ``if TYPE_CHECKING:`` imports never execute and are ignored;
- equal ranks may import each other; the cycle check still rejects
  genuine module-level loops inside a layer;
- every ``repro.*`` module must match a prefix in the table — growing a
  new package means declaring where it sits, exactly like registering a
  backend.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import Finding, Project, Rule, register_rule

#: The declared layering: (module prefix, rank). Longest prefix wins.
#: Lower rank = lower layer; imports must point to equal-or-lower rank.
LAYERS: Tuple[Tuple[str, int], ...] = (
    # foundation: pure utilities, device physics, packed bit kernels
    ("repro.utils", 10),
    ("repro.autograd", 10),
    ("repro.device", 10),
    ("repro.data", 10),
    ("repro.circuits", 12),
    ("repro.sc", 14),
    # modelling / compilation tier
    ("repro.hardware", 20),
    ("repro.core", 22),
    ("repro.models", 22),
    ("repro.mapping", 24),
    ("repro.baselines", 26),
    # execution strategies: consumed by the runtime, so below it
    ("repro.api.backends", 30),
    ("repro.api.results", 30),
    # the runtime scheduler subsystem
    ("repro.runtime", 35),
    # session / serving facade over the runtime
    ("repro.api", 40),
    ("repro.experiments", 45),
    # network tier
    ("repro.net", 50),
    # entry points
    ("repro.cli", 60),
    ("repro.analysis", 60),
    ("repro", 60),  # the root facade re-exports the public API
)


def layer_rank(module: str) -> Optional[int]:
    """Rank for ``module`` by longest declared prefix, None if the
    module is outside the table (non-repro)."""
    if module != "repro" and not module.startswith("repro."):
        return None
    best: Tuple[int, Optional[int]] = (-1, None)
    for prefix, rank in LAYERS:
        if module == prefix or module.startswith(prefix + "."):
            if len(prefix) > best[0]:
                best = (len(prefix), rank)
    return best[1]


def module_imports(f, known: frozenset = frozenset()) -> List[Tuple[str, int]]:
    """``(imported repro module, line)`` pairs for every *module-scope*
    import in ``f`` (lazy and TYPE_CHECKING imports excluded).

    ``from pkg import name`` resolves per alias: when ``pkg.name`` is a
    module in ``known``, the edge targets the *submodule* — which is
    what Python binds (the package ``__init__`` re-export pattern works
    precisely because the submodule, not the partially-initialised
    package namespace, satisfies the import)."""
    from repro.analysis.core import module_scope_nodes

    out: List[Tuple[str, int]] = []
    if f.tree is None:
        return out
    for node in module_scope_nodes(f.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == "repro" or module.startswith("repro."):
                for alias in node.names:
                    child = f"{module}.{alias.name}"
                    out.append((child if child in known else module, node.lineno))
    return out


@register_rule(
    "layering",
    summary="acyclic downward-only module imports per the declared layer table",
)
class LayeringRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        graph: Dict[str, List[Tuple[str, int]]] = {}
        known = frozenset(f.module for f in project.repro_files())
        for f in project.repro_files():
            imports = module_imports(f, known)
            graph[f.module] = imports
            importer_rank = layer_rank(f.module)
            if importer_rank is None:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity="warning",
                        path=f.rel,
                        line=1,
                        message=(
                            f"module {f.module} is not covered by the "
                            f"declared layer table"
                        ),
                        hint="add its package to LAYERS in "
                        "repro/analysis/rules/layering.py",
                    )
                )
                continue
            for imported, line in imports:
                imported_rank = layer_rank(imported)
                if imported_rank is None:
                    continue
                if imported_rank > importer_rank:
                    findings.append(
                        Finding(
                            rule=self.name,
                            severity="error",
                            path=f.rel,
                            line=line,
                            message=(
                                f"upward import: {f.module} (layer "
                                f"{importer_rank}) imports {imported} "
                                f"(layer {imported_rank}) at module scope"
                            ),
                            hint="invert the dependency, move the shared "
                            "piece down a layer, or make the import lazy "
                            "(function-scoped) if it is a compatibility shim",
                        )
                    )
        findings.extend(self._cycles(project, graph))
        return findings

    # ------------------------------------------------------------------
    def _cycles(self, project: Project, graph: Dict[str, List[Tuple[str, int]]]):
        """Module-level cycle detection (iterative DFS, three colours).

        Edge targets come pre-resolved by :func:`module_imports`
        (submodule-accurate), so only genuine module-level loops — the
        kind that can actually deadlock a Python import — are reported.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {m: WHITE for m in graph}
        reported = set()
        for start in sorted(graph):
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterable]] = [(start, iter(graph[start]))]
            path = [start]
            colour[start] = GREY
            while stack:
                module, edges = stack[-1]
                advanced = False
                for imported, _line in edges:
                    target = imported if imported in graph else None
                    if (
                        target is None
                        or target == module
                        or colour.get(target, BLACK) == BLACK
                    ):
                        continue
                    if colour[target] == GREY:
                        cycle = tuple(path[path.index(target) :] + [target])
                        if frozenset(cycle) not in reported:
                            reported.add(frozenset(cycle))
                            f = project.by_module[module]
                            yield Finding(
                                rule=self.name,
                                severity="error",
                                path=f.rel,
                                line=1,
                                message=(
                                    "import cycle at module scope: "
                                    + " -> ".join(cycle)
                                ),
                                hint="break the cycle with a lazy import or "
                                "by moving the shared definition down a layer",
                            )
                        continue
                    colour[target] = GREY
                    path.append(target)
                    stack.append((target, iter(graph[target])))
                    advanced = True
                    break
                if not advanced:
                    colour[module] = BLACK
                    stack.pop()
                    path.pop()
