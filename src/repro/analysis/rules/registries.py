"""Registry-contract rule: registered backends and schedulers must
statically satisfy their protocols.

``@register_backend`` and ``@register_scheduler`` are string-keyed
plug-in seams — which means a class missing its protocol method fails
only when a request first routes to it, potentially deep inside a
worker pool. This rule moves that failure to lint time:

- a class under ``@register_backend(...)`` must provide ``run_layer``
  (layer-level strategy) or ``run_plan``/``run_shards`` (shard-level
  strategy), directly or through a base class resolvable in the tree;
- a class under ``@register_scheduler(...)`` must provide
  ``run_shards`` (the one method the scheduler registry documents);
- protocol flags (``deterministic``, ``stateless``,
  ``needs_task_graph``, ``requires_seeds``) must be literal ``True`` /
  ``False`` when assigned in a registered class body — a truthy string
  here silently flips a scheduling decision;
- the registry key must be a string literal: dynamic names defeat both
  this check and ``repro.cli backends``.

Base-class resolution is static and best-effort: bases are looked up by
name across the scanned tree (same module first), so mixins from
third-party code cannot vouch for a method — in that case define a
stub raising ``NotImplementedError`` locally.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    dotted_name,
    literal_str,
    register_rule,
)

#: decorator name -> (registry label, accepted protocol method sets)
CONTRACTS = {
    "register_backend": ("backend", ({"run_layer"}, {"run_plan"}, {"run_shards"})),
    "register_scheduler": ("scheduler", ({"run_shards"},)),
}

_BOOL_FLAGS = ("deterministic", "stateless", "needs_task_graph", "requires_seeds")


@register_rule(
    "registry-contract",
    summary="registered backends/schedulers must implement their protocol",
)
class RegistryContractRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        class_index = project.classes()
        for f in project.repro_files():
            if f.tree is None:
                continue
            for node in ast.walk(f.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                registration = self._registration(node)
                if registration is None:
                    continue
                decorator, reg_call = registration
                label, method_sets = CONTRACTS[decorator]
                yield from self._check_key(f, node, reg_call, label)
                yield from self._check_methods(
                    f, node, label, method_sets, class_index
                )
                yield from self._check_flags(f, node, label)

    # ------------------------------------------------------------------
    @staticmethod
    def _registration(node: ast.ClassDef) -> Optional[Tuple[str, ast.Call]]:
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = dotted_name(decorator.func) or ""
                tail = name.rsplit(".", 1)[-1]
                if tail in CONTRACTS:
                    return tail, decorator
        return None

    def _check_key(self, f, node: ast.ClassDef, call: ast.Call, label: str):
        key = literal_str(call.args[0]) if call.args else None
        if key is None:
            yield Finding(
                rule=self.name,
                severity="error",
                path=f.rel,
                line=node.lineno,
                message=f"{label} class {node.name} registers under a "
                f"non-literal name",
                hint="registry keys must be string literals so CLI listings "
                "and this checker can see them",
            )

    def _check_methods(
        self,
        f,
        node: ast.ClassDef,
        label: str,
        method_sets: Tuple[Set[str], ...],
        class_index: Dict[str, List],
    ):
        provided = self._methods_of(node, class_index, depth=0)
        if not any(wanted <= provided for wanted in method_sets):
            accepted = " or ".join(
                "/".join(sorted(wanted)) for wanted in method_sets
            )
            yield Finding(
                rule=self.name,
                severity="error",
                path=f.rel,
                line=node.lineno,
                message=f"registered {label} {node.name} implements none of "
                f"the protocol methods ({accepted})",
                hint="implement the method (or inherit it from a base class "
                "defined in this tree)",
            )

    def _methods_of(
        self, node: ast.ClassDef, class_index: Dict[str, List], depth: int
    ) -> Set[str]:
        if depth > 8:  # pathological inheritance chains / cycles
            return set()
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Assigned callables (method = staticmethod(fn) etc.) count too.
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        methods.add(target.id)
        for base in node.bases:
            base_name = (dotted_name(base) or "").rsplit(".", 1)[-1]
            for _file, base_node in class_index.get(base_name, []):
                methods |= self._methods_of(base_node, class_index, depth + 1)
        return methods

    def _check_flags(self, f, node: ast.ClassDef, label: str):
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in _BOOL_FLAGS
                    and not (
                        isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, bool)
                    )
                ):
                    yield Finding(
                        rule=self.name,
                        severity="error",
                        path=f.rel,
                        line=stmt.lineno,
                        message=f"{label} {node.name}.{target.id} must be a "
                        f"literal True/False",
                        hint="a truthy non-bool here silently flips "
                        "scheduling/caching decisions",
                    )
