"""Asyncio hygiene rule: no blocking calls inside ``async def`` in the
network tier.

The PR 7 serving contract is that the asyncio front-end never stalls
the event loop — a full daemon queue becomes a retryable error frame
via ``try_submit``, never a blocked coroutine; daemon futures resolve
through ``call_soon_threadsafe``, never ``Future.result()``. One
blocking call inside a coroutine silently serializes every connection
behind it, which is exactly the failure mode this rule makes
mechanical. Inside any ``async def`` under ``repro.net`` (and any
``repro.*`` module that grows coroutines later) it flags:

- ``time.sleep(...)`` — use ``await asyncio.sleep``;
- ``<anything>.result()`` — a concurrent.futures blocking read; bridge
  through ``asyncio.wrap_future`` or a done-callback instead;
- non-awaited ``.get(...)`` / ``.put(...)`` / ``.join(...)`` on
  queue-ish receivers (name contains ``queue``/``outbox``/``inbox``/
  ``handoff``) — the sync ``queue.Queue`` API blocks; ``*_nowait``
  variants and awaited ``asyncio.Queue`` calls are fine;
- sync socket construction (``socket.socket`` /
  ``socket.create_connection``) and subprocess waits
  (``subprocess.run`` / ``check_output`` / ``.wait()`` on processes).

Nested *sync* ``def`` bodies inside a coroutine (helpers handed to
executors or ``call_soon``) are excluded — they run off-loop.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    dotted_name,
    register_rule,
    walk_functions,
)

SCOPE = ("repro",)

_QUEUEISH = ("queue", "outbox", "inbox", "handoff")
_BLOCKING_QUEUE_METHODS = {"get", "put", "join"}
_BLOCKING_MODULE_CALLS = {
    "time.sleep": "await asyncio.sleep(...) instead",
    "socket.socket": "use asyncio streams (open_connection/start_server)",
    "socket.create_connection": "use asyncio.open_connection",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
}


@register_rule(
    "async-hygiene",
    summary="blocking calls inside async def in the network tier are errors",
)
class AsyncHygieneRule(Rule):
    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for f in project.repro_files(*SCOPE):
            if f.tree is None:
                continue
            for ctx in walk_functions(f.tree):
                if not ctx.is_async:
                    continue
                findings.extend(self._check_coroutine(f, ctx.node, ctx.qualname))
        return findings

    # ------------------------------------------------------------------
    def _check_coroutine(self, f, func: ast.AST, qualname: str):
        awaited: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
        for node in self._coroutine_body_walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _BLOCKING_MODULE_CALLS:
                yield self._finding(
                    f,
                    node,
                    f"blocking call {name}() inside async def {qualname}",
                    _BLOCKING_MODULE_CALLS[name],
                )
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method == "result" and not node.args and not node.keywords:
                receiver = dotted_name(node.func.value) or "<expr>"
                yield self._finding(
                    f,
                    node,
                    f"blocking Future.result() on {receiver} inside async "
                    f"def {qualname}",
                    "resolve futures off-loop (add_done_callback + "
                    "call_soon_threadsafe) or asyncio.wrap_future",
                )
                continue
            if (
                method in _BLOCKING_QUEUE_METHODS
                and id(node) not in awaited
                and self._queueish(node.func.value)
                and not any(kw.arg == "timeout" for kw in node.keywords)
            ):
                receiver = dotted_name(node.func.value) or "<expr>"
                yield self._finding(
                    f,
                    node,
                    f"non-awaited, timeout-less {receiver}.{method}() inside "
                    f"async def {qualname}",
                    "await an asyncio.Queue, use the *_nowait variant, or "
                    "pass a timeout and handle queue.Empty/queue.Full",
                )

    @staticmethod
    def _coroutine_body_walk(func: ast.AST):
        """Walk the coroutine body without descending into nested *sync*
        function definitions (they run off-loop)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _queueish(receiver: ast.AST) -> bool:
        name = dotted_name(receiver)
        if name is None:
            return False
        lowered = name.lower()
        return any(token in lowered for token in _QUEUEISH)

    def _finding(self, f, node: ast.AST, message: str, hint: str) -> Finding:
        return Finding(
            rule=self.name,
            severity="error",
            path=f.rel,
            line=node.lineno,
            message=message,
            hint=hint,
        )
