"""The shipped rule set. Importing this package registers every rule
with the registry in :mod:`repro.analysis.core` — the same
import-for-side-effect idiom the backend and scheduler registries use.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    asynchygiene,
    determinism,
    envdiscipline,
    faultsites,
    layering,
    registries,
    taxonomy,
)

__all__ = [
    "asynchygiene",
    "determinism",
    "envdiscipline",
    "faultsites",
    "layering",
    "registries",
    "taxonomy",
]
