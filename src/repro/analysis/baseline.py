"""Grandfathered-violation baseline for the static contract checker.

The baseline is the escape hatch that lets ``lint-static`` gate CI from
day one without requiring every historical violation to be fixed in the
same commit: findings whose stable key appears in the baseline file are
*tolerated* (reported, not fatal), while anything new fails the build.
The committed baseline is expected to stay empty or near-empty — every
entry is debt with a name on it.

Semantics:

- a finding whose :attr:`~repro.analysis.core.Finding.key` matches a
  baseline entry is **suppressed** (it does not fail the run);
- a baseline entry matching no current finding is **stale** — reported
  so the file gets pruned, tolerated so an honest fix never *breaks*
  the build; ``update()`` (CLI ``--update-baseline``) rewrites the file
  to exactly the current finding set, which is both the "add" and the
  "expire" path of the round trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.analysis.core import Finding

#: Default baseline location, repo-root relative.
DEFAULT_BASELINE = "lint-static.baseline.json"

_VERSION = 1


class Baseline:
    """The set of grandfathered finding keys."""

    def __init__(self, entries: Iterable[dict] = ()) -> None:
        self.entries: List[dict] = [dict(e) for e in entries]
        self._keys = {e["key"] for e in self.entries}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {_VERSION})"
            )
        entries = payload.get("entries", [])
        for entry in entries:
            if "key" not in entry:
                raise ValueError(f"baseline entry without a key in {path}: {entry!r}")
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": sorted(self.entries, key=lambda e: e["key"]),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    def __contains__(self, finding: Finding) -> bool:
        return finding.key in self._keys

    def __len__(self) -> int:
        return len(self.entries)

    def split(self, findings: Sequence[Finding]):
        """Partition ``findings`` into ``(new, baselined)`` and compute
        the stale entry list in one pass."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        seen_keys = set()
        for finding in findings:
            seen_keys.add(finding.key)
            (baselined if finding.key in self._keys else new).append(finding)
        stale = [e for e in self.entries if e["key"] not in seen_keys]
        return new, baselined, stale

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline grandfathering exactly ``findings`` (the
        ``--update-baseline`` path)."""
        entries = [
            {
                "key": f.key,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            }
            for f in findings
        ]
        # One entry per key: repeated identical messages collapse.
        unique = {e["key"]: e for e in entries}
        return cls(unique.values())
