"""``repro.analysis`` — the static contract checker ("repro-lint").

An AST/import-graph analysis subsystem that mechanically enforces the
invariants the rest of the repo only promised in docstrings:

- **determinism** — no unseeded RNG or wall-clock reads in the
  seed/plan-derivation paths (:mod:`repro.analysis.rules.determinism`);
- **layering** — acyclic, downward-only module imports per the declared
  layer table (:mod:`repro.analysis.rules.layering`);
- **fault-site** — every ``fault_point``/``FaultSpec`` site matches
  ``repro.runtime.faults.KNOWN_SITES``
  (:mod:`repro.analysis.rules.faultsites`);
- **env-discipline** — every ``REPRO_*`` read goes through
  :mod:`repro.runtime.env` and its declared catalog
  (:mod:`repro.analysis.rules.envdiscipline`);
- **async-hygiene** — no blocking calls inside ``async def`` in the
  network tier (:mod:`repro.analysis.rules.asynchygiene`);
- **registry-contract** — registered backends/schedulers statically
  implement their protocols (:mod:`repro.analysis.rules.registries`);
- **exception-taxonomy** — runtime raises stay classifiable and broad
  handlers re-classify or annotate
  (:mod:`repro.analysis.rules.taxonomy`).

Entry points: ``repro.cli lint-static`` / ``make lint-static`` (chained
into ``make check`` and CI). Programmatic use::

    from repro.analysis import run_analysis
    report = run_analysis(repo_root)
    assert report.clean, report.render()

Grandfathered violations live in ``lint-static.baseline.json`` (see
:mod:`repro.analysis.baseline`); deliberate per-line departures use
``lint-static: allow[<rule>]`` waiver comments.
"""

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    available_rules,
    get_rule,
    register_rule,
)
from repro.analysis.runner import DEFAULT_PATHS, AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Baseline",
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "available_rules",
    "get_rule",
    "register_rule",
    "run_analysis",
]
