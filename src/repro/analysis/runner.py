"""Analysis runner: load the tree once, run every rule, apply waivers
and the baseline, render JSON/human reports.

This is the piece ``repro.cli lint-static`` and ``make lint-static``
drive. The committed tree is expected to come back clean — the
acceptance bar is "exits non-zero on any non-baselined finding", which
is also what the CI job enforces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.core import Finding, Project, available_rules, get_rule

# Importing the rules package registers every rule.
import repro.analysis.rules  # noqa: F401  (registration side effect)

#: Default scan set — matches the acceptance criteria ("src/, tests/,
#: and benchmarks/"); examples/ ride along because they demonstrate the
#: same contracts.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


@dataclass
class AnalysisReport:
    """Everything one run produced."""

    root: str
    paths: List[str]
    rules: List[str]
    files_scanned: int
    elapsed_s: float
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    waived: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing non-baselined was found (stale baseline
        entries are tolerated — they get pruned by --update-baseline)."""
        return not self.new

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "paths": list(self.paths),
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "elapsed_s": round(self.elapsed_s, 3),
            "clean": self.clean,
            "findings": [f.as_dict() for f in self.new],
            "baselined": [f.as_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "waived": self.waived,
        }

    def render(self) -> str:
        out: List[str] = []
        for finding in self.new:
            out.append(finding.render())
        for finding in self.baselined:
            out.append(f"(baselined) {finding.render()}")
        for entry in self.stale_baseline:
            out.append(
                f"stale baseline entry {entry['key']} matches no current "
                f"finding; prune with --update-baseline"
            )
        counts = (
            f"{len(self.new)} finding(s), {len(self.baselined)} baselined, "
            f"{len(self.stale_baseline)} stale baseline entr(ies), "
            f"{self.waived} waived inline"
        )
        status = "clean" if self.clean else "FAILED"
        out.append(
            f"lint-static: {status} — {counts}; {self.files_scanned} files, "
            f"{len(self.rules)} rules in {self.elapsed_s:.2f}s"
        )
        return "\n".join(out)


def run_analysis(
    root: Path,
    *,
    paths: Sequence[str] = DEFAULT_PATHS,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
) -> AnalysisReport:
    """Run ``rules`` (default: all registered) over ``paths`` under
    ``root`` and partition the findings against the baseline."""
    start = time.perf_counter()
    root = Path(root)
    if baseline is None:
        baseline = Baseline.load(
            Path(baseline_path)
            if baseline_path is not None
            else root / DEFAULT_BASELINE
        )
    selected = list(rules) if rules is not None else available_rules()
    project = Project.load(root, list(paths))
    by_rel = {f.rel: f for f in project.files}

    findings: List[Finding] = []
    waived = 0
    for name in selected:
        rule = get_rule(name)
        for finding in rule.check(project):
            source = by_rel.get(finding.path)
            if source is not None and source.waived(finding.rule, finding.line):
                waived += 1
                continue
            findings.append(finding)
    # Parse failures surface regardless of rule selection.
    for f in project.files:
        if f.parse_error is not None:  # pragma: no cover - compileall gates
            findings.append(
                Finding(
                    rule="parse",
                    severity="error",
                    path=f.rel,
                    line=f.parse_error.lineno or 1,
                    message=f"syntax error: {f.parse_error.msg}",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    new, baselined, stale = baseline.split(findings)
    return AnalysisReport(
        root=str(root),
        paths=list(paths),
        rules=selected,
        files_scanned=len(project.files),
        elapsed_s=time.perf_counter() - start,
        new=new,
        baselined=baselined,
        stale_baseline=stale,
        waived=waived,
    )
