"""Core model of the static contract checker ("repro-lint").

Every reproducibility guarantee this repo ships — bit-identical-to-
serial scheduling, seeded per-shard RNG, the ``fault_point`` site
catalog, the ``REPRO_*`` env knobs, the recovery exception taxonomy,
the sc → mapping/models → api → runtime → net layering — is *declared
data* somewhere (`KNOWN_SITES`, `ENV_CATALOG`, the backend/scheduler
registries, the layer table in :mod:`repro.analysis.rules.layering`).
This module supplies the machinery that verifies the code against those
declarations on every commit:

- :class:`Finding` — one violation: rule id, severity, file:line, a
  message, and a fix hint. Findings carry a *stable key* (rule + path +
  message fingerprint) so the baseline file survives unrelated edits.
- the rule registry — string-keyed classes registered via
  :func:`register_rule`, deliberately mirroring
  :func:`repro.api.backends.register_backend` and
  :func:`repro.runtime.scheduler.register_scheduler`: rules are
  pluggable strategy objects selected by name.
- :class:`SourceFile` / :class:`Project` — a parsed-once AST snapshot
  of the tree shared by every rule, so a full run stays well under the
  10-second budget.

Inline waivers: a finding whose source line (or the line above it)
contains ``lint-static: allow[<rule>]`` is suppressed at the source.
They are for *deliberate* contract departures — a unit test exercising
an unknown fault site on purpose — and should name their reason in the
surrounding code; accidental violations belong in the baseline file
(see :mod:`repro.analysis.baseline`) only while being burned down.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

#: Severity ladder. Both levels fail the build when not baselined;
#: "warning" marks findings where the checker cannot statically prove
#: the violation (e.g. a non-literal fault site) but a human should look.
SEVERITIES = ("error", "warning")

_WAIVER_RE = re.compile(r"lint-static:\s*allow\[([a-z0-9_,\- ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location."""

    rule: str
    severity: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {', '.join(SEVERITIES)}; "
                f"got {self.severity!r}"
            )

    @property
    def key(self) -> str:
        """Stable baseline key: deliberately excludes the line number so
        a grandfathered finding survives unrelated edits above it."""
        digest = hashlib.sha256(self.message.encode("utf-8")).hexdigest()[:12]
        return f"{self.rule}:{self.path}:{digest}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "key": self.key,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.severity}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


class SourceFile:
    """One parsed source file: text, line table, and AST.

    ``module`` is the dotted import name for files under ``src/``
    (``repro.runtime.plan``) and a pseudo-dotted name rooted at the
    scan directory otherwise (``tests.test_analysis``) — rules use it
    to scope themselves to packages.
    """

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.module = _module_name(self.rel)
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(self.text, filename=self.rel)
        except SyntaxError as exc:  # pragma: no cover - compileall gates this
            self.tree = None
            self.parse_error = exc

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def waived(self, rule: str, line: int) -> bool:
        """True when an inline ``lint-static: allow[rule]`` waiver covers
        ``line`` (same line or the line directly above)."""
        for candidate in (line, line - 1):
            match = _WAIVER_RE.search(self.line_text(candidate))
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                if rule in rules or "*" in rules:
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SourceFile {self.rel}>"


def _module_name(rel: str) -> str:
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [last]
    return ".".join(parts)


class Project:
    """The parsed tree every rule runs over.

    Built once per analysis run; rules treat it as read-only. Helper
    accessors centralize the lookups several rules share (module → file,
    class indexes)."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = Path(root)
        self.files: List[SourceFile] = list(files)
        self.by_module: Dict[str, SourceFile] = {
            f.module: f for f in self.files if f.module
        }

    @classmethod
    def load(cls, root: Path, paths: Sequence[str]) -> "Project":
        """Parse every ``*.py`` under ``root``-relative ``paths``
        (files or directories), skipping ``__pycache__``."""
        root = Path(root)
        seen: Dict[Path, None] = {}
        for entry in paths:
            target = root / entry
            if target.is_file() and target.suffix == ".py":
                seen.setdefault(target.resolve(), None)
            elif target.is_dir():
                for path in sorted(target.rglob("*.py")):
                    if "__pycache__" in path.parts:
                        continue
                    seen.setdefault(path.resolve(), None)
        files = [SourceFile(root.resolve(), path) for path in seen]
        return cls(root, files)

    # ------------------------------------------------------------------
    def repro_files(self, *prefixes: str) -> List[SourceFile]:
        """Files whose dotted module name starts with any of
        ``prefixes`` (no prefixes = every ``repro.*`` module)."""
        wanted = prefixes or ("repro",)
        out = []
        for f in self.files:
            if not f.module:
                continue
            for prefix in wanted:
                if f.module == prefix or f.module.startswith(prefix + "."):
                    out.append(f)
                    break
        return out

    def classes(self) -> Dict[str, List[Tuple[SourceFile, ast.ClassDef]]]:
        """Index of every class definition in the project by bare name
        (one name can be defined in several modules)."""
        index: Dict[str, List[Tuple[SourceFile, ast.ClassDef]]] = {}
        for f in self.files:
            if f.tree is None:
                continue
            for node in ast.walk(f.tree):
                if isinstance(node, ast.ClassDef):
                    index.setdefault(node.name, []).append((f, node))
        return index


# ----------------------------------------------------------------------
# The rule registry — same shape as the backend/scheduler registries.
# ----------------------------------------------------------------------
_RULES: Dict[str, Type] = {}


def register_rule(name: str, *, summary: str = ""):
    """Class decorator registering a lint rule under ``name``.

    The class must provide ``check(project) -> Iterable[Finding]``; the
    runner handles inline waivers and baseline filtering, so rules just
    emit every violation they see.
    """

    def decorator(cls):
        if name in _RULES:
            raise ValueError(f"lint rule {name!r} is already registered")
        cls.name = name
        if summary:
            cls.summary = summary
        _RULES[name] = cls
        return cls

    return decorator


def available_rules() -> List[str]:
    """Registered rule names, sorted."""
    return sorted(_RULES)


def get_rule(name: str):
    cls = _RULES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown lint rule {name!r}; registered: {', '.join(available_rules())}"
        )
    return cls()


class Rule:
    """Base class for lint rules (subclassing is optional)."""

    name = "?"
    summary = ""

    def check(self, project: Project) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<rule {self.name}>"


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules.
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def module_scope_nodes(tree: ast.AST) -> Iterable[ast.stmt]:
    """Statements that execute at import time: the module body plus the
    bodies of module-level ``if``/``try`` blocks — but *not* function or
    class-method bodies, and not ``if TYPE_CHECKING`` blocks (those
    never run)."""
    stack: List[ast.stmt] = list(getattr(tree, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.If) and _is_type_checking(node.test):
            stack.extend(node.orelse)
            continue
        yield node
        for child_field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(node, child_field, []) or [])
        for handler in getattr(node, "handlers", []) or []:
            stack.extend(handler.body)


def _is_type_checking(test: ast.AST) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


@dataclass
class FunctionContext:
    """One (async or sync) function visited by :func:`walk_functions`."""

    node: ast.AST
    is_async: bool
    qualname: str
    ancestors: Tuple[ast.AST, ...] = field(default_factory=tuple)


def walk_functions(tree: ast.AST) -> Iterable[FunctionContext]:
    """Yield every function/async-function definition with a readable
    qualname (``Class.method``)."""

    def visit(node: ast.AST, prefix: str, ancestors: Tuple[ast.AST, ...]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield FunctionContext(
                    child,
                    isinstance(child, ast.AsyncFunctionDef),
                    qual,
                    ancestors,
                )
                yield from visit(child, qual + ".", ancestors + (child,))
            elif isinstance(child, ast.ClassDef):
                yield from visit(
                    child, f"{prefix}{child.name}.", ancestors + (child,)
                )
            else:
                yield from visit(child, prefix, ancestors)

    yield from visit(tree, "", ())
