"""Binary comparator: the step function after the APC (paper Fig. 6b).

The comparator receives the APC's binary count and a programmed reference
and emits the 1-bit activation for the next BNN layer: '1' when
``count >= reference``. Functionally this is a threshold; structurally we
synthesize a ripple magnitude comparator from XNOR/AND/OR cells so the
cost model and clocking ablation can account for it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.netlist import Netlist


class BinaryComparator:
    """Vectorized functional comparator.

    Parameters
    ----------
    reference:
        Threshold value; output is +1 when the input count is >= this,
        else -1 (bipolar encoding matches the crossbar input convention).
    """

    def __init__(self, reference: float) -> None:
        self.reference = float(reference)

    def compare(self, counts) -> np.ndarray:
        """+1 where ``counts >= reference``, -1 otherwise."""
        c = np.asarray(counts)
        return np.where(c >= self.reference, 1.0, -1.0)

    def __call__(self, counts) -> np.ndarray:
        return self.compare(counts)


def build_comparator_netlist(width: int, name: Optional[str] = None) -> Netlist:
    """Ripple magnitude comparator: ``V >= R`` for two ``width``-bit inputs.

    Inputs: ``v_0..v_{w-1}`` and ``r_0..r_{w-1}`` (LSB first). Output is
    a single bit. Recurrence from LSB to MSB:

        ge_i = (v_i AND NOT r_i) OR (XNOR(v_i, r_i) AND ge_{i-1})

    with ``ge_{-1} = 1`` (equal values compare as >=).
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    netlist = Netlist(name=name or f"cmp{width}")
    v_bits = [netlist.add_input(f"v_{i}") for i in range(width)]
    r_bits = [netlist.add_input(f"r_{i}") for i in range(width)]
    ge = netlist.add_constant("ge_init", 1)
    for i in range(width):
        v_split = netlist.add_gate(f"vsplit_{i}", "splitter", [v_bits[i]])
        r_split = netlist.add_gate(f"rsplit_{i}", "splitter", [r_bits[i]])
        r_not = netlist.add_gate(f"rnot_{i}", "inverter", [r_split])
        gt = netlist.add_gate(f"gt_{i}", "and2", [v_split, r_not])
        eq = netlist.add_gate(f"eq_{i}", "xnor2", [v_split, r_split])
        keep = netlist.add_gate(f"keep_{i}", "and2", [eq, ge])
        ge = netlist.add_gate(f"ge_{i}", "or2", [gt, keep])
    netlist.mark_output(ge)
    return netlist


def comparator_jj_count(width: int) -> int:
    """Logic-JJ count of the ripple comparator."""
    return build_comparator_netlist(width).logic_jj_count()
