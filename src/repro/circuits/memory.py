"""Buffer-chain memory (BCM) — the paper's weight/activation storage.

A BCM is a fully balanced chain of AQFP buffers: each stored bit
circulates through ``phases`` buffers per clock cycle of retention, so a
word retained for ``depth_cycles`` cycles costs
``2 * phases * depth_cycles`` JJs per bit plus a fixed read/write
interface. Because the chain is fully balanced by construction, its clock
can be decoupled from the computing clock and reduced from 4 to 3 phases
(paper Sec. 4.4), which removes a quarter of the chain buffers — a 20%
reduction of the memory component's total JJs at the default interface
overhead (8 JJ/bit, i.e. write driver + read-out).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.device.cells import ENERGY_PER_JJ_PER_CYCLE_J

#: JJs per buffer stage.
_BUFFER_JJ = 2
#: Read/write interface JJs charged per stored bit.
DEFAULT_INTERFACE_JJ_PER_BIT = 8


class BufferChainMemory:
    """Shift-register storage for bit vectors, with a JJ cost model.

    Functionally a FIFO of ``depth_cycles`` slots over ``width``-bit
    words (+-1 encoded); structurally the cost model described in the
    module docstring.
    """

    def __init__(
        self,
        width: int,
        depth_cycles: int = 4,
        phases: int = 4,
        interface_jj_per_bit: int = DEFAULT_INTERFACE_JJ_PER_BIT,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth_cycles < 1:
            raise ValueError(f"depth_cycles must be >= 1, got {depth_cycles}")
        if phases < 3:
            raise ValueError(f"AQFP memory needs >= 3 phases, got {phases}")
        self.width = width
        self.depth_cycles = depth_cycles
        self.phases = phases
        self.interface_jj_per_bit = interface_jj_per_bit
        self._slots: List[np.ndarray] = [
            np.full(width, -1.0) for _ in range(depth_cycles)
        ]

    # ------------------------------------------------------------------
    # Functional FIFO behaviour
    # ------------------------------------------------------------------
    def push(self, word) -> np.ndarray:
        """Shift in a word; returns the word falling off the end."""
        w = np.asarray(word, dtype=np.float64)
        if w.shape != (self.width,):
            raise ValueError(f"expected shape ({self.width},), got {w.shape}")
        if not np.all(np.isin(w, (-1.0, 1.0))):
            raise ValueError("BCM stores bipolar (+-1) bits")
        out = self._slots.pop()
        self._slots.insert(0, w.copy())
        return out

    def peek(self, slot: int = 0) -> np.ndarray:
        """Read a retained word without shifting."""
        if not 0 <= slot < self.depth_cycles:
            raise IndexError(f"slot {slot} out of range 0..{self.depth_cycles - 1}")
        return self._slots[slot].copy()

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def chain_jj_count(self, phases: int = None) -> int:
        """JJs in the circulating buffer chains."""
        p = self.phases if phases is None else phases
        return self.width * _BUFFER_JJ * p * self.depth_cycles

    def jj_count(self, phases: int = None) -> int:
        """Total memory JJs (chains + read/write interface)."""
        return self.chain_jj_count(phases) + self.width * self.interface_jj_per_bit

    def energy_per_cycle_j(self, phases: int = None) -> float:
        return self.jj_count(phases) * ENERGY_PER_JJ_PER_CYCLE_J

    def jj_reduction_three_phase(self) -> float:
        """Fractional total-JJ saving of a 3-phase vs 4-phase memory clock.

        With the default 4-cycle depth and 8 JJ/bit interface this is
        exactly 20%, the figure reported in paper Sec. 4.4.
        """
        four = self.jj_count(phases=4)
        three = self.jj_count(phases=3)
        return (four - three) / four
