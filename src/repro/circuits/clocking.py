"""n-phase clocking schemes and path-balancing cost (paper Sec. 4.4).

All AQFP gates are synchronized by a multi-phase clock; data moves between
adjacent stages during the overlap of their phases. With the common
4-phase scheme every logic path must be balanced stage-by-stage, so every
stage gap of ``g`` requires ``g - 1`` inserted buffers. Raising the phase
count creates overlap between *non-adjacent* stages: with ``p`` phases a
signal can coast across ``p // 4`` stages before it must be re-latched,
dividing the buffer requirement accordingly. The paper reports >= 20.8%
total-JJ reduction at 8 phases and 27.3% at 16 phases on its computing
circuits; the memory (BCM) instead drops from 4 to 3 phases for a 20%
memory-JJ saving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.circuits.netlist import Netlist
from repro.device.cells import (
    CLOCK_RATE_HZ,
    DELAY_LINE_STAGE_DELAY_S,
    ENERGY_PER_JJ_PER_CYCLE_J,
)

#: JJs in one path-balancing buffer.
BUFFER_JJ = 2


@dataclass(frozen=True)
class ClockingScheme:
    """A ``phases``-phase AQFP clock.

    ``slack`` is how many stages a signal may span without re-buffering:
    1 for the baseline 4-phase scheme, ``phases // 4`` beyond it.
    """

    phases: int = 4
    clock_rate_hz: float = CLOCK_RATE_HZ
    stage_delay_s: float = DELAY_LINE_STAGE_DELAY_S

    def __post_init__(self) -> None:
        if self.phases < 3:
            raise ValueError(f"AQFP needs >= 3 clock phases, got {self.phases}")
        if self.clock_rate_hz <= 0:
            raise ValueError(f"clock rate must be positive, got {self.clock_rate_hz}")

    @property
    def slack(self) -> int:
        """Stages a signal can traverse per latching (>= 1)."""
        return max(1, self.phases // 4)

    def buffers_for_gap(self, gap: int) -> int:
        """Path-balancing buffers needed on an edge with stage gap ``gap``.

        ``gap = 1`` is a direct connection (no buffers). With slack ``s``,
        a gap of ``g`` needs ``ceil(g / s) - 1`` buffers.
        """
        if gap < 1:
            raise ValueError(f"gap must be >= 1, got {gap}")
        return math.ceil(gap / self.slack) - 1

    def latency_s(self, depth_stages: int) -> float:
        """Wall-clock latency of a pipeline of ``depth_stages`` stages."""
        if depth_stages < 0:
            raise ValueError(f"depth must be >= 0, got {depth_stages}")
        return depth_stages * self.stage_delay_s


def path_balance(netlist: Netlist, scheme: ClockingScheme) -> int:
    """Total path-balancing buffers for ``netlist`` under ``scheme``."""
    return sum(scheme.buffers_for_gap(gap) for _, _, gap in netlist.edges_with_gaps())


def total_jj_count(netlist: Netlist, scheme: ClockingScheme) -> int:
    """Logic JJs plus inserted-buffer JJs under ``scheme``."""
    return netlist.logic_jj_count() + BUFFER_JJ * path_balance(netlist, scheme)


def jj_reduction_vs_four_phase(netlist: Netlist, phases: int) -> float:
    """Fractional total-JJ reduction of a ``phases``-phase clock vs 4-phase.

    This is the quantity the paper reports for its computing circuits
    (>= 0.208 at 8 phases, 0.273 at 16).
    """
    baseline = total_jj_count(netlist, ClockingScheme(4))
    if baseline == 0:
        return 0.0
    improved = total_jj_count(netlist, ClockingScheme(phases))
    return (baseline - improved) / baseline


def clocking_report(netlist: Netlist, phase_options=(4, 8, 16)) -> Dict[int, Dict[str, float]]:
    """Per-phase-count summary: buffers, total JJs, reduction, energy."""
    report: Dict[int, Dict[str, float]] = {}
    baseline = total_jj_count(netlist, ClockingScheme(4))
    for phases in phase_options:
        scheme = ClockingScheme(phases)
        buffers = path_balance(netlist, scheme)
        total = netlist.logic_jj_count() + BUFFER_JJ * buffers
        report[phases] = {
            "buffers": buffers,
            "total_jj": total,
            "reduction_vs_4phase": (baseline - total) / baseline if baseline else 0.0,
            "energy_per_cycle_j": total * ENERGY_PER_JJ_PER_CYCLE_J,
            "latency_s": scheme.latency_s(netlist.depth()),
        }
    return report
