"""Fanout legalization: splitter-tree insertion for AQFP netlists.

AQFP gates drive exactly one load; any signal with fanout f > 1 must be
duplicated through a tree of 1-to-2 splitter cells (f - 1 splitters,
about ceil(log2 f) extra stages). The paper leans on exactly this pass
from the AQFP EDA literature (its refs [12, 28, 35]); here it legalizes
the generated APC/comparator netlists so their JJ and depth accounting
reflects physical fanout.

Conventions: an ordinary gate output provides ``max_fanout`` taps
(1 for strict AQFP); a splitter cell provides exactly 2 taps. The pass
is functional — the legalized netlist evaluates identically to the
input (splitters are logical identity) — and adds exactly
``fanout - max_fanout`` splitters per overloaded signal when
``max_fanout == 1``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuits.netlist import Netlist

#: Output ports of one splitter cell.
_SPLITTER_PORTS = 2


@dataclass(frozen=True)
class SplitterReport:
    """Statistics of one legalization run."""

    splitters_added: int
    jj_added: int
    max_fanout_before: int
    violations_after: int
    depth_before: int
    depth_after: int


def compute_fanout(netlist: Netlist) -> Dict[str, int]:
    """Number of loads on every node (primary outputs count as loads)."""
    fanout: Dict[str, int] = {node: 0 for node in netlist.inputs}
    for gate in netlist.gates:
        fanout.setdefault(gate.gate_id, 0)
        for fanin in gate.fanins:
            fanout[fanin] = fanout.get(fanin, 0) + 1
    for out in netlist.outputs:
        fanout[out] = fanout.get(out, 0) + 1
    return fanout


def fanout_violations(netlist: Netlist, max_fanout: int = 1) -> int:
    """Signals driving more loads than their ports allow."""
    fanout = compute_fanout(netlist)
    splitter_ids = {g.gate_id for g in netlist.gates if g.cell == "splitter"}
    violations = 0
    for node, loads in fanout.items():
        limit = _SPLITTER_PORTS if node in splitter_ids else max_fanout
        if loads > limit:
            violations += 1
    return violations


def insert_splitters(
    netlist: Netlist, max_fanout: int = 1
) -> Tuple[Netlist, SplitterReport]:
    """Return a fanout-legal copy of ``netlist`` plus a report.

    Each overloaded signal feeds a breadth-first (balanced) binary
    splitter tree whose taps drive the original consumers.
    """
    if max_fanout < 1:
        raise ValueError(f"max_fanout must be >= 1, got {max_fanout}")

    fanout = compute_fanout(netlist)
    max_before = max(fanout.values(), default=0)
    depth_before = netlist.depth()

    legal = Netlist(library=netlist.library, name=f"{netlist.name}_split")
    for node in netlist.inputs:
        legal.add_input(node)
        if node in netlist._constants:  # preserve constant drivers
            legal._constants[node] = netlist._constants[node]

    taps: Dict[str, deque] = {}
    splitters_added = 0

    def _build_taps(source: str) -> deque:
        """Queue of legal taps covering all of ``source``'s loads."""
        nonlocal splitters_added
        loads = max(fanout.get(source, 0), 1)
        queue = deque([source] * max_fanout)
        while len(queue) < loads:
            feeder = queue.popleft()
            sid = f"__sp{splitters_added}"
            splitters_added += 1
            legal.add_gate(sid, "splitter", [feeder])
            queue.extend([sid] * _SPLITTER_PORTS)
        return queue

    def _tap(source: str) -> str:
        if source not in taps:
            taps[source] = _build_taps(source)
        return taps[source].popleft()

    # Rebuild gates in topological order so fanins already exist.
    levels = netlist.levelize()
    for gate in sorted(netlist.gates, key=lambda g: levels[g.gate_id]):
        legal.add_gate(gate.gate_id, gate.cell, [_tap(f) for f in gate.fanins])
    for out in netlist.outputs:
        legal.mark_output(_tap(out))

    report = SplitterReport(
        splitters_added=splitters_added,
        jj_added=splitters_added * netlist.library["splitter"].jj_count,
        max_fanout_before=max_before,
        violations_after=fanout_violations(legal, max_fanout),
        depth_before=depth_before,
        depth_after=legal.depth(),
    )
    return legal, report
