"""Cell-level netlists with levelization for AQFP synchronization.

AQFP logic is globally clocked: every gate occupies one logic stage and
data must advance exactly one stage per clock phase group. A gate whose
fanins sit more than one stage earlier needs path-balancing buffers on the
short paths — the dominant area overhead the clocking optimization of
paper Sec. 4.4 attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.device.cells import CELL_LIBRARY, CellLibrary


@dataclass
class Gate:
    """One instance of a standard cell.

    ``fanins`` are gate ids (or input names) feeding this gate; primary
    inputs are represented by ids registered via :meth:`Netlist.add_input`.
    """

    gate_id: str
    cell: str
    fanins: Tuple[str, ...] = field(default_factory=tuple)


class Netlist:
    """A DAG of gates over a cell library.

    Provides levelization (longest-path stage assignment) and JJ
    accounting. Buffer insertion for path balancing lives in
    :mod:`repro.circuits.clocking` because it depends on the clocking
    scheme.
    """

    def __init__(self, library: CellLibrary = CELL_LIBRARY, name: str = "netlist") -> None:
        self.library = library
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._constants: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, input_id: str) -> str:
        if input_id in self._gates or input_id in self._inputs:
            raise ValueError(f"duplicate node id {input_id!r}")
        self._inputs.append(input_id)
        return input_id

    def add_gate(self, gate_id: str, cell: str, fanins: Sequence[str]) -> str:
        if gate_id in self._gates or gate_id in self._inputs:
            raise ValueError(f"duplicate node id {gate_id!r}")
        if cell not in self.library:
            raise KeyError(f"cell {cell!r} not in library")
        for f in fanins:
            if f not in self._gates and f not in self._inputs:
                raise ValueError(f"gate {gate_id!r} references unknown fanin {f!r}")
        self._gates[gate_id] = Gate(gate_id, cell, tuple(fanins))
        return gate_id

    def mark_output(self, node_id: str) -> None:
        if node_id not in self._gates and node_id not in self._inputs:
            raise ValueError(f"unknown node {node_id!r}")
        self._outputs.append(node_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def gates(self) -> List[Gate]:
        return list(self._gates.values())

    @property
    def inputs(self) -> List[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        return list(self._outputs)

    def gate(self, gate_id: str) -> Gate:
        return self._gates[gate_id]

    def __len__(self) -> int:
        return len(self._gates)

    def cell_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for g in self._gates.values():
            counts[g.cell] = counts.get(g.cell, 0) + 1
        return counts

    def logic_jj_count(self) -> int:
        """JJs in logic gates only (no path-balancing buffers)."""
        return self.library.total_jj(self.cell_counts())

    # ------------------------------------------------------------------
    # Levelization
    # ------------------------------------------------------------------
    def levelize(self) -> Dict[str, int]:
        """Assign each node its logic stage (longest path from inputs).

        Primary inputs are stage 0. A gate with ``stages`` > 1 occupies
        that many consecutive stages and its output appears at the last.
        Raises ``ValueError`` on combinational cycles.
        """
        levels: Dict[str, int] = {i: 0 for i in self._inputs}
        remaining = dict(self._gates)
        # Kahn-style iteration; bounded by gate count per round.
        while remaining:
            progressed = False
            for gate_id in list(remaining):
                gate = remaining[gate_id]
                if all(f in levels for f in gate.fanins):
                    depth = self.library[gate.cell].stages
                    base = max((levels[f] for f in gate.fanins), default=0)
                    levels[gate_id] = base + depth
                    del remaining[gate_id]
                    progressed = True
            if not progressed:
                raise ValueError(
                    f"netlist {self.name!r} contains a cycle among "
                    f"{sorted(remaining)[:5]}..."
                )
        return levels

    def depth(self) -> int:
        """Number of logic stages from inputs to the deepest output."""
        levels = self.levelize()
        if not levels:
            return 0
        nodes = self._outputs or list(levels)
        return max(levels[n] for n in nodes)

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    _SEMANTICS = {
        "buffer": lambda ins: ins[0],
        "splitter": lambda ins: ins[0],
        "readout": lambda ins: ins[0],
        "inverter": lambda ins: 1 - ins[0],
        "and2": lambda ins: ins[0] & ins[1],
        "or2": lambda ins: ins[0] | ins[1],
        "xor2": lambda ins: ins[0] ^ ins[1],
        "xnor2": lambda ins: 1 - (ins[0] ^ ins[1]),
        "majority3": lambda ins: 1 if sum(ins) >= 2 else 0,
    }

    def evaluate(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Simulate the netlist over 0/1 inputs; returns all node values.

        Constants registered via :meth:`add_constant` supply their fixed
        value. Raises ``KeyError`` when a primary input is missing and
        ``ValueError`` for cells without boolean semantics.
        """
        values: Dict[str, int] = dict(self._constants)
        for inp in self._inputs:
            if inp in values:
                continue
            if inp not in input_values:
                raise KeyError(f"missing value for primary input {inp!r}")
            values[inp] = int(input_values[inp]) & 1
        levels = self.levelize()
        for gate_id in sorted(self._gates, key=lambda g: levels[g]):
            gate = self._gates[gate_id]
            fn = self._SEMANTICS.get(gate.cell)
            if fn is None:
                raise ValueError(f"cell {gate.cell!r} has no boolean semantics")
            values[gate_id] = fn([values[f] for f in gate.fanins])
        return values

    def add_constant(self, const_id: str, value: int) -> str:
        """Register a constant-driving cell (logic 0 or 1)."""
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value}")
        self.add_input(const_id)
        self._constants[const_id] = value
        return const_id

    def edges_with_gaps(self) -> List[Tuple[str, str, int]]:
        """All (src, dst, stage gap) edges; gap >= 1 for a levelized DAG."""
        levels = self.levelize()
        edges = []
        for gate in self._gates.values():
            arrival = levels[gate.gate_id] - self.library[gate.cell].stages
            for fanin in gate.fanins:
                edges.append((fanin, gate.gate_id, arrival - levels[fanin] + 1))
        # Outputs must also be aligned to the final stage for read-out.
        final = self.depth()
        for out in self._outputs:
            if levels[out] < final:
                edges.append((out, f"__readout_{out}", final - levels[out] + 1))
        return edges
