"""(Approximate) parallel counters — the SC accumulation workhorse.

The SC-based accumulation module (paper Sec. 4.3, Fig. 6b) sums the
stochastic bits arriving from the neuron circuits of multiple crossbars
with an *approximate parallel counter* (APC, Kim et al. 2015 — the
paper's [41]): the first compression layer replaces full adders with
plain AND/OR pairs. Because ``a + b == (a | b) + (a & b)`` exactly, the
AND/OR pair is a lossless 2:2 compressor that is much cheaper in AQFP
cells than a full adder; the *approximate* variant drops the AND outputs
(each dropped AND undercounts by ``a & b``), trading a small counting
error for fewer gates.

Two layers of functionality live here:

* :class:`ExactPopcount` / :class:`ApproximateParallelCounter` — fast
  vectorized counting used inside the accelerator simulator.
* :func:`build_apc_netlist` — a structural gate-level netlist (with
  explicit splitters for fanout) used by the cost model and the clocking
  ablation of Sec. 4.4.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.netlist import Netlist
from repro.device.cells import CELL_LIBRARY


def _popcount_words(words: np.ndarray) -> np.ndarray:
    # Imported lazily: repro.sc.accumulate imports this module, so a
    # top-level import of repro.sc.packed would close a package cycle.
    from repro.sc.packed import popcount_words

    return popcount_words(words)


class ExactPopcount:
    """Reference counter: number of ones among the input bits."""

    def count(self, bits: np.ndarray, axis: int = -1) -> np.ndarray:
        """Count ones along ``axis``; input may be 0/1 or +-1 encoded.

        For bit-packed streams use
        :meth:`ApproximateParallelCounter.count_packed` with zero
        approximate layers — that is the exact packed counter.
        """
        b = np.asarray(bits)
        ones = (b > 0).astype(np.int64)
        return ones.sum(axis=axis)


class ApproximateParallelCounter:
    """APC with a configurable number of approximate OR-only layers.

    ``approximate_layers = 0`` reproduces the exact count. Each
    approximate layer halves the live lines using OR gates only, which
    undercounts pairs of simultaneous ones. Hardware uses 1 approximate
    layer (the paper's choice); the ablation bench sweeps it.
    """

    def __init__(self, approximate_layers: int = 1) -> None:
        if approximate_layers < 0:
            raise ValueError(
                f"approximate_layers must be >= 0, got {approximate_layers}"
            )
        self.approximate_layers = approximate_layers

    def count(self, bits: np.ndarray, axis: int = -1) -> np.ndarray:
        """Count ones along ``axis`` with the approximate compression.

        Each OR layer merges pairs into single lines, so coincident ones
        are counted once — the approximation *undercounts*, saturating at
        ``n / 2^layers``.
        """
        b = np.asarray(bits)
        ones = (b > 0).astype(np.int64)
        ones = np.moveaxis(ones, axis, -1)
        for _ in range(self.approximate_layers):
            n = ones.shape[-1]
            if n < 2:
                break
            even = ones[..., 0 : n - n % 2 : 2]
            odd = ones[..., 1 : n - n % 2 : 2]
            compressed = even | odd
            if n % 2:
                compressed = np.concatenate(
                    [compressed, ones[..., -1:]], axis=-1
                )
            ones = compressed
        return ones.sum(axis=-1)

    def count_packed(self, words: np.ndarray) -> np.ndarray:
        """Window-total counts from packed streams of shape ``(K, W, ...)``.

        The OR-compression layers act *bitwise* on the uint64 words —
        one machine OR merges a line pair across 64 clocks at once — and
        the surviving lines are popcounted and summed over the window.
        Equivalent to ``count(bits, axis=0).sum(over the window)`` on
        the unpacked ``(K, L, ...)`` bit tensor, since the per-clock
        compression is independent across clocks. Tail bits must be
        zero (the :func:`repro.sc.packed.pack_bits` invariant): zeros
        are absorbed by both OR and popcount.
        """
        lines = np.asarray(words, dtype=np.uint64)
        if lines.ndim < 2:
            raise ValueError(f"packed input must be (K, W, ...), got {lines.shape}")
        for _ in range(self.approximate_layers):
            n = lines.shape[0]
            if n < 2:
                break
            even = lines[0 : n - n % 2 : 2]
            odd = lines[1 : n - n % 2 : 2]
            compressed = even | odd
            if n % 2:
                compressed = np.concatenate([compressed, lines[-1:]], axis=0)
            lines = compressed
        return _popcount_words(lines).sum(axis=(0, 1))

    def max_undercount(self, n_inputs: int) -> int:
        """Worst-case undercount for ``n_inputs`` lines (all ones input)."""
        if n_inputs < 0:
            raise ValueError(f"n_inputs must be >= 0, got {n_inputs}")
        count_all_ones = self.count(np.ones(n_inputs, dtype=np.int64))
        return n_inputs - int(count_all_ones)


# ----------------------------------------------------------------------
# Structural netlist generation
# ----------------------------------------------------------------------
class _NetlistBuilder:
    """Helper managing unique ids and explicit splitter insertion."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def split2(self, node: str) -> Tuple[str, str]:
        """Duplicate a signal through an explicit splitter cell."""
        s = self.netlist.add_gate(self.fresh("split"), "splitter", [node])
        # A physical splitter has two output transformers; structurally we
        # let both consumers reference the same splitter gate.
        return s, s

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        a1, a2 = self.split2(a)
        b1, b2 = self.split2(b)
        s = self.netlist.add_gate(self.fresh("ha_sum"), "xor2", [a1, b1])
        c = self.netlist.add_gate(self.fresh("ha_carry"), "and2", [a2, b2])
        return s, c

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        a1, a2 = self.split2(a)
        b1, b2 = self.split2(b)
        t = self.netlist.add_gate(self.fresh("fa_t"), "xor2", [a1, b1])
        t1, t2 = self.split2(t)
        c1, c2 = self.split2(cin)
        s = self.netlist.add_gate(self.fresh("fa_sum"), "xor2", [t1, c1])
        carry = self.netlist.add_gate(self.fresh("fa_carry"), "majority3", [a2, b2, c2])
        return s, carry

    def add_numbers(self, num_a: List[str], num_b: List[str]) -> List[str]:
        """Ripple-carry addition of two LSB-first bit vectors."""
        width = max(len(num_a), len(num_b))
        result: List[str] = []
        carry: Optional[str] = None
        for i in range(width):
            a = num_a[i] if i < len(num_a) else None
            b = num_b[i] if i < len(num_b) else None
            operands = [x for x in (a, b, carry) if x is not None]
            if len(operands) == 3:
                s, carry = self.full_adder(*operands)
            elif len(operands) == 2:
                s, carry = self.half_adder(*operands)
            elif len(operands) == 1:
                s, carry = operands[0], None
            else:
                break
            result.append(s)
        if carry is not None:
            result.append(carry)
        return result


def build_apc_netlist(
    n_inputs: int,
    approximate_layers: int = 1,
    name: Optional[str] = None,
) -> Netlist:
    """Generate the gate-level netlist of an APC over ``n_inputs`` bits.

    Structure: ``approximate_layers`` OR-compression layers, then a
    balanced adder tree (half/full adders with explicit splitters) summing
    the surviving lines into a binary number. Outputs are the count bits,
    LSB first. The returned netlist evaluates correctly under
    :meth:`Netlist.evaluate` (matching
    :meth:`ApproximateParallelCounter.count`).
    """
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    netlist = Netlist(name=name or f"apc{n_inputs}_a{approximate_layers}")
    builder = _NetlistBuilder(netlist)
    lines = [netlist.add_input(f"in_{i}") for i in range(n_inputs)]

    for layer in range(approximate_layers):
        if len(lines) < 2:
            break
        compressed: List[str] = []
        for i in range(0, len(lines) - 1, 2):
            out = netlist.add_gate(
                builder.fresh(f"orc{layer}"), "or2", [lines[i], lines[i + 1]]
            )
            compressed.append(out)
        if len(lines) % 2:
            compressed.append(lines[-1])
        lines = compressed

    # Adder tree: treat each line as a 1-bit number, reduce pairwise.
    numbers: List[List[str]] = [[line] for line in lines]
    while len(numbers) > 1:
        next_round: List[List[str]] = []
        for i in range(0, len(numbers) - 1, 2):
            next_round.append(builder.add_numbers(numbers[i], numbers[i + 1]))
        if len(numbers) % 2:
            next_round.append(numbers[-1])
        numbers = next_round

    for bit in numbers[0]:
        netlist.mark_output(bit)
    return netlist


def apc_output_width(n_inputs: int) -> int:
    """Bits needed to represent counts 0..n_inputs."""
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    return int(math.floor(math.log2(n_inputs))) + 1


def apc_jj_count(n_inputs: int, approximate_layers: int = 1) -> int:
    """Logic-JJ count of the APC netlist (no path-balancing buffers)."""
    return build_apc_netlist(n_inputs, approximate_layers).logic_jj_count()
