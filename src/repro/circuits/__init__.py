"""Gate-level AQFP circuits: netlists, clocking, counters, comparators.

These are the digital peripherals of the accelerator (paper Sec. 4.3-4.4):

* :mod:`repro.circuits.netlist` — DAG of standard cells with levelization
  and path-balancing buffer insertion.
* :mod:`repro.circuits.clocking` — n-phase clocking schemes and the JJ
  reduction analysis of Sec. 4.4.
* :mod:`repro.circuits.apc` — (approximate) parallel counters that sum
  stochastic bit-streams.
* :mod:`repro.circuits.comparator` — binary comparator used as the step
  function after the APC.
* :mod:`repro.circuits.memory` — buffer-chain memory (BCM).
"""

from repro.circuits.netlist import Gate, Netlist
from repro.circuits.clocking import (
    ClockingScheme,
    jj_reduction_vs_four_phase,
    path_balance,
)
from repro.circuits.apc import (
    ApproximateParallelCounter,
    ExactPopcount,
    build_apc_netlist,
)
from repro.circuits.comparator import BinaryComparator, build_comparator_netlist
from repro.circuits.memory import BufferChainMemory
from repro.circuits.splitters import (
    SplitterReport,
    compute_fanout,
    fanout_violations,
    insert_splitters,
)

__all__ = [
    "Gate",
    "Netlist",
    "ClockingScheme",
    "path_balance",
    "jj_reduction_vs_four_phase",
    "ExactPopcount",
    "ApproximateParallelCounter",
    "build_apc_netlist",
    "BinaryComparator",
    "build_comparator_netlist",
    "BufferChainMemory",
    "insert_splitters",
    "compute_fanout",
    "fanout_violations",
    "SplitterReport",
]
