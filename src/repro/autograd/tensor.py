"""Numpy-backed tensor with reverse-mode automatic differentiation.

The graph is built eagerly: every differentiable op records its parents and
a closure computing the parent gradients. ``Tensor.backward()`` runs a
topological sort and accumulates gradients. Broadcasting follows numpy
semantics; gradients are un-broadcast back to the parent shapes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import special

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """True when ops should record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_grad_fn", "_op")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._grad_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None
        self._op = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        grad_fn: Callable[[np.ndarray], Sequence[Optional[np.ndarray]]],
        op: str,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._grad_fn = grad_fn
            out._op = op
        return out

    @staticmethod
    def ensure(value, requires_grad: bool = False) -> "Tensor":
        """Coerce a scalar/array/Tensor to Tensor."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Detached copy of the payload."""
        return self.data.copy()

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph."""
        out = Tensor(self.data)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (only valid for scalar outputs, mirroring
        the usual loss.backward() idiom).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order = self._topological_order()
        grads = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            # Leaf accumulation: anything without a grad_fn is a leaf.
            if node._grad_fn is None:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            parent_grads = node._grad_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> List["Tensor"]:
        """Reverse topological order starting at self (iterative DFS)."""
        visited = set()
        order: List[Tensor] = []
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        a, b = self, other

        def grad_fn(g):
            return (_unbroadcast(g, a.shape), _unbroadcast(g, b.shape))

        return Tensor._make(a.data + b.data, (a, b), grad_fn, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        a, b = self, other

        def grad_fn(g):
            return (_unbroadcast(g, a.shape), _unbroadcast(-g, b.shape))

        return Tensor._make(a.data - b.data, (a, b), grad_fn, "sub")

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        a, b = self, other

        def grad_fn(g):
            return (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return Tensor._make(a.data * b.data, (a, b), grad_fn, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        a, b = self, other

        def grad_fn(g):
            return (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data**2), b.shape),
            )

        return Tensor._make(a.data / b.data, (a, b), grad_fn, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def grad_fn(g):
            return (-g,)

        return Tensor._make(-a.data, (a,), grad_fn, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self
        p = float(exponent)

        def grad_fn(g):
            return (g * p * np.power(a.data, p - 1.0),)

        return Tensor._make(np.power(a.data, p), (a,), grad_fn, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        a, b = self, other

        def grad_fn(g):
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor._make(a.data @ b.data, (a, b), grad_fn, "matmul")

    # ------------------------------------------------------------------
    # Nonlinear elementwise ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def grad_fn(g):
            return (g * out_data,)

        return Tensor._make(out_data, (a,), grad_fn, "exp")

    def log(self) -> "Tensor":
        a = self

        def grad_fn(g):
            return (g / a.data,)

        return Tensor._make(np.log(a.data), (a,), grad_fn, "log")

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def grad_fn(g):
            return (g * 0.5 / out_data,)

        return Tensor._make(out_data, (a,), grad_fn, "sqrt")

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def grad_fn(g):
            return (g * (1.0 - out_data**2),)

        return Tensor._make(out_data, (a,), grad_fn, "tanh")

    def erf(self) -> "Tensor":
        """Error function; d/dx erf(x) = 2/sqrt(pi) * exp(-x^2).

        This is the smooth surrogate SupeRBNN differentiates through in the
        randomized-aware backward pass (paper Eq. 10).
        """
        a = self

        def grad_fn(g):
            return (g * (2.0 / np.sqrt(np.pi)) * np.exp(-a.data**2),)

        return Tensor._make(special.erf(a.data), (a,), grad_fn, "erf")

    def abs(self) -> "Tensor":
        a = self

        def grad_fn(g):
            return (g * np.sign(a.data),)

        return Tensor._make(np.abs(a.data), (a,), grad_fn, "abs")

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def grad_fn(g):
            return (g * mask,)

        return Tensor._make(a.data * mask, (a,), grad_fn, "relu")

    def hardtanh(self, low: float = -1.0, high: float = 1.0) -> "Tensor":
        a = self
        mask = (a.data > low) & (a.data < high)

        def grad_fn(g):
            return (g * mask,)

        return Tensor._make(np.clip(a.data, low, high), (a,), grad_fn, "hardtanh")

    def clamp(self, low: float, high: float) -> "Tensor":
        return self.hardtanh(low, high)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self

        def grad_fn(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, a.shape).copy(),)
            ax = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, a.shape).copy(),)

        return Tensor._make(a.data.sum(axis=axis, keepdims=keepdims), (a,), grad_fn, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        if axis is None:
            count = a.data.size
        else:
            ax = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([a.shape[i] for i in ax]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=True)

        def grad_fn(g):
            g = np.asarray(g)
            if axis is not None and not keepdims:
                ax = axis if isinstance(axis, tuple) else (axis,)
                g = np.expand_dims(g, ax)
            mask = a.data == out_data
            # Split gradient between ties like numpy's subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True)
            return (np.broadcast_to(g, a.shape) * mask / counts,)

        final = out_data if keepdims else np.squeeze(out_data, axis=axis)
        return Tensor._make(final, (a,), grad_fn, "max")

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.shape

        def grad_fn(g):
            return (g.reshape(old_shape),)

        return Tensor._make(a.data.reshape(shape), (a,), grad_fn, "reshape")

    def transpose(self, axes: Optional[Iterable[int]] = None) -> "Tensor":
        a = self
        axes_t = tuple(axes) if axes is not None else tuple(reversed(range(a.ndim)))
        inverse = tuple(np.argsort(axes_t))

        def grad_fn(g):
            return (g.transpose(inverse),)

        return Tensor._make(a.data.transpose(axes_t), (a,), grad_fn, "transpose")

    def __getitem__(self, index) -> "Tensor":
        a = self

        def grad_fn(g):
            out = np.zeros_like(a.data)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._make(a.data[index], (a,), grad_fn, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically (NCHW layout)."""
        if padding == 0:
            return self
        a = self
        pad_width = [(0, 0)] * (a.ndim - 2) + [(padding, padding), (padding, padding)]

        def grad_fn(g):
            slices = tuple(
                slice(None) if before == 0 else slice(before, -after or None)
                for before, after in pad_width
            )
            return (g[slices],)

        return Tensor._make(np.pad(a.data, pad_width), (a,), grad_fn, "pad2d")

    # ------------------------------------------------------------------
    # Comparison / misc helpers (non-differentiable, return arrays)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [Tensor.ensure(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def grad_fn(g):
        grads = []
        for i in range(len(tensors)):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), grad_fn, "concat")


class Function:
    """Base class for ops with hand-written gradients.

    Subclasses implement ``forward(ctx, *arrays, **kwargs) -> np.ndarray``
    and ``backward(ctx, grad) -> tuple`` (one entry per tensor input; use
    ``None`` for non-differentiable inputs). ``ctx`` is a plain namespace
    for stashing values between the passes. Invoke with ``Apply = MyFn.apply``.
    """

    @staticmethod
    def forward(ctx, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def backward(ctx, grad):  # pragma: no cover - abstract
        raise NotImplementedError

    class _Context:
        __slots__ = ("saved",)

        def __init__(self) -> None:
            self.saved = {}

        def save(self, **kwargs) -> None:
            self.saved.update(kwargs)

        def __getitem__(self, key):
            return self.saved[key]

    @classmethod
    def apply(cls, *args, **kwargs) -> Tensor:
        tensor_args = [a for a in args if isinstance(a, Tensor)]
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        ctx = cls._Context()
        out_data = cls.forward(ctx, *raw_args, **kwargs)

        def grad_fn(g):
            grads = cls.backward(ctx, g)
            if not isinstance(grads, tuple):
                grads = (grads,)
            # Map returned grads back onto tensor inputs (positional).
            result = []
            grad_iter = iter(grads)
            for a in args:
                if isinstance(a, Tensor):
                    result.append(next(grad_iter, None))
            return tuple(result)

        return Tensor._make(
            np.asarray(out_data, dtype=np.float64),
            tuple(tensor_args),
            grad_fn,
            cls.__name__,
        )
