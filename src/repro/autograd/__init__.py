"""A compact reverse-mode automatic differentiation engine on numpy.

This package is the training substrate for SupeRBNN: PyTorch is not
available offline, so the library ships its own tensor/autograd framework
with the layers, optimizers, and initializers the paper's training recipe
needs (conv nets, batch norm, HardTanh, SGD + cosine annealing).

Public surface:

* :class:`Tensor` — numpy-backed tensor with ``backward()``
* :class:`Function` — base class for ops with custom gradients
* :func:`no_grad` — context manager disabling graph construction
* ``Module`` / ``Parameter`` and the layer zoo in :mod:`repro.autograd.layers`
* optimizers and LR schedules in :mod:`repro.autograd.optim`
"""

from repro.autograd.tensor import Function, Tensor, is_grad_enabled, no_grad
from repro.autograd.module import Module, Parameter, Sequential
from repro.autograd import functional
from repro.autograd.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    HardTanh,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.autograd.optim import SGD, ConstantLR, CosineAnnealingLR, WarmupCosineLR

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Sequential",
    "functional",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "HardTanh",
    "ReLU",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "SGD",
    "ConstantLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
]
