"""Standard layers: Linear, Conv2d, BatchNorm, activations, pooling."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.module import Module, Parameter
from repro.autograd.tensor import Tensor
from repro.utils.rng import SeedLike


class Linear(Module):
    """Fully connected layer: ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: SeedLike = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), seed))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution over NCHW tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), seed)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class _BatchNormBase(Module):
    """Shared batch-norm machinery for the 1-D and 2-D variants."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))  # gamma
        self.bias = Parameter(init.zeros((num_features,)))  # beta
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        # Statistics of the most recent forward (batch stats in training,
        # running stats in eval); consumed by the randomized binarization
        # cell to build its value-domain scale.
        self.last_mean = np.zeros(num_features)
        self.last_var = np.ones(num_features)

    def _normalize(self, x: Tensor, axes, shape) -> Tensor:
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            self.last_mean = mean.data.reshape(-1).copy()
            self.last_var = var.data.reshape(-1).copy()
            # Update running stats with the batch statistics (biased var,
            # matching the inference-time use).
            m = self.momentum
            self.update_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(-1),
            )
            self.update_buffer(
                "running_var",
                (1 - m) * self.running_var + m * var.data.reshape(-1),
            )
            inv_std = (var + self.eps) ** -0.5
            x_hat = centered * inv_std
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mean) * ((var + self.eps) ** -0.5)
            self.last_mean = self.running_mean.copy()
            self.last_var = self.running_var.copy()
        gamma = self.weight.reshape(shape)
        beta = self.bias.reshape(shape)
        return x_hat * gamma + beta

    def inference_affine(self):
        """Return (scale, shift) of the folded inference-time transform.

        BN at inference is ``y = scale * x + shift`` with
        ``scale = gamma / sqrt(var + eps)`` and
        ``shift = beta - gamma * mu / sqrt(var + eps)``. The BN-matching
        compiler consumes these (paper Sec. 5.2).
        """
        std = np.sqrt(self.running_var + self.eps)
        scale = self.weight.data / std
        shift = self.bias.data - self.weight.data * self.running_mean / std
        return scale, shift


class BatchNorm1d(_BatchNormBase):
    """Batch norm over (N, C) activations."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C), got {x.shape}")
        return self._normalize(x, axes=0, shape=(1, self.num_features))


class BatchNorm2d(_BatchNormBase):
    """Batch norm over (N, C, H, W) activations."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got {x.shape}")
        return self._normalize(x, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class HardTanh(Module):
    """Clamp to [low, high]; the activation used before binarization."""

    def __init__(self, low: float = -1.0, high: float = 1.0) -> None:
        super().__init__()
        self.low = low
        self.high = high

    def forward(self, x: Tensor) -> Tensor:
        return x.hardtanh(self.low, self.high)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
