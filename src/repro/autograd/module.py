"""Module/Parameter containers in the style of torch.nn."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A Tensor registered as trainable state of a Module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Submodules and parameters assigned as attributes are discovered
    automatically; ``parameters()`` walks the tree. ``train()`` / ``eval()``
    toggle the ``training`` flag used by BatchNorm and the randomized
    binarization layers.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BN running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer and its attribute mirror."""
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Tree walking
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # State (de)serialization
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[prefix + name] = param.data.copy()
        for name, buf in self._buffers.items():
            state[prefix + name] = np.array(buf, copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix + name + "."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = prefix + name
            if key not in state:
                raise KeyError(f"missing parameter {key!r}")
            if state[key].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: "
                    f"{state[key].shape} vs {param.data.shape}"
                )
            param.data = np.array(state[key], dtype=np.float64, copy=True)
        for name in self._buffers:
            key = prefix + name
            if key in state:
                self.update_buffer(name, np.array(state[key], copy=True))
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix + name + ".")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
