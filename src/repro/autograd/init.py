"""Weight initializers (Kaiming / Xavier families)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # Conv: (out, in, k, k)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """He-normal init, the default for the binarized conv stacks."""
    rng = new_rng(seed)
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    rng = new_rng(seed)
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    rng = new_rng(seed)
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
