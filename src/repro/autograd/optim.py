"""Optimizers and learning-rate schedules used by the SupeRBNN recipe.

The paper trains with SGD, a 5-epoch warmup, and cosine annealing
(Sec. 6.1); ``WarmupCosineLR`` implements exactly that schedule.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data = p.data - self.lr * update


class ConstantLR:
    """No-op schedule (keeps the optimizer's initial LR)."""

    def __init__(self, optimizer: SGD) -> None:
        self.optimizer = optimizer

    def step(self) -> None:
        pass

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class CosineAnnealingLR:
    """Cosine decay from the initial LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: SGD, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self._step_count = 0

    def step(self) -> None:
        self._step_count = min(self._step_count + 1, self.t_max)
        cos = 0.5 * (1 + math.cos(math.pi * self._step_count / self.t_max))
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class WarmupCosineLR:
    """Linear warmup for ``warmup_steps`` then cosine annealing to ``eta_min``.

    Matches the paper's training setup: LR 0.1, 5 warmup epochs, cosine
    decay over the remaining epochs.
    """

    def __init__(
        self,
        optimizer: SGD,
        warmup_steps: int,
        total_steps: int,
        eta_min: float = 0.0,
    ) -> None:
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.optimizer = optimizer
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self._step_count = 0
        if warmup_steps > 0:
            self.optimizer.lr = self.base_lr / warmup_steps

    def step(self) -> None:
        self._step_count = min(self._step_count + 1, self.total_steps)
        if self._step_count < self.warmup_steps:
            self.optimizer.lr = self.base_lr * (self._step_count + 1) / self.warmup_steps
            return
        progress = (self._step_count - self.warmup_steps) / (
            self.total_steps - self.warmup_steps
        )
        cos = 0.5 * (1 + math.cos(math.pi * progress))
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos

    @property
    def lr(self) -> float:
        return self.optimizer.lr
