"""Neural-network functional ops: convolution, pooling, losses.

Convolution is implemented with im2col/col2im so the heavy lifting stays in
BLAS matmuls; gradients are exact.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd.tensor import Function, Tensor


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW input into columns of shape (N, C*K*K, H_out*W_out).

    The unfold preserves the input dtype — a contract the hardware
    executor relies on to keep +-1 activation maps (and the large
    unfolded buffers derived from them) in int8 rather than up-casting
    to float64.
    """
    n, c, h, w = x.shape
    h_out = _conv_output_size(h, kernel, stride, padding)
    w_out = _conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kernel, kernel, h_out, w_out), dtype=x.dtype)
    for ki in range(kernel):
        i_end = ki + stride * h_out
        for kj in range(kernel):
            j_end = kj + stride * w_out
            cols[:, :, ki, kj, :, :] = x[:, :, ki:i_end:stride, kj:j_end:stride]
    return cols.reshape(n, c * kernel * kernel, h_out * w_out), (h_out, w_out)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back, accumulating overlaps (adjoint of :func:`im2col`)."""
    n, c, h, w = input_shape
    h_out = _conv_output_size(h, kernel, stride, padding)
    w_out = _conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, h_out, w_out)
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    x = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    for ki in range(kernel):
        i_end = ki + stride * h_out
        for kj in range(kernel):
            j_end = kj + stride * w_out
            x[:, :, ki:i_end:stride, kj:j_end:stride] += cols[:, :, ki, kj, :, :]
    if padding > 0:
        x = x[:, :, padding:-padding, padding:-padding]
    return x


class _Conv2dFn(Function):
    @staticmethod
    def forward(ctx, x, weight, bias=None, stride=1, padding=0):
        n = x.shape[0]
        c_out, c_in, k, _ = weight.shape
        cols, (h_out, w_out) = im2col(x, k, stride, padding)
        w_mat = weight.reshape(c_out, c_in * k * k)
        out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
        if bias is not None:
            out = out + bias.reshape(1, c_out, 1)
        ctx.save(
            cols=cols,
            w_mat=w_mat,
            x_shape=x.shape,
            weight_shape=weight.shape,
            stride=stride,
            padding=padding,
            has_bias=bias is not None,
        )
        return out.reshape(n, c_out, h_out, w_out)

    @staticmethod
    def backward(ctx, grad):
        cols = ctx["cols"]
        w_mat = ctx["w_mat"]
        c_out, c_in, k, _ = ctx["weight_shape"]
        n = grad.shape[0]
        g = grad.reshape(n, c_out, -1)
        grad_w = np.einsum("nop,nkp->ok", g, cols, optimize=True).reshape(
            ctx["weight_shape"]
        )
        grad_cols = np.einsum("ok,nop->nkp", w_mat, g, optimize=True)
        grad_x = col2im(grad_cols, ctx["x_shape"], k, ctx["stride"], ctx["padding"])
        if ctx["has_bias"]:
            grad_b = g.sum(axis=(0, 2))
            return grad_x, grad_w, grad_b
        return grad_x, grad_w


def conv2d(x: Tensor, weight: Tensor, bias=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over NCHW input (no dilation/groups)."""
    if bias is None:
        return _Conv2dFn.apply(x, weight, stride=stride, padding=padding)
    return _Conv2dFn.apply(x, weight, bias, stride=stride, padding=padding)


class _MaxPool2dFn(Function):
    @staticmethod
    def forward(ctx, x, kernel=2, stride=None):
        stride = stride or kernel
        n, c, h, w = x.shape
        h_out = (h - kernel) // stride + 1
        w_out = (w - kernel) // stride + 1
        cols, _ = im2col(x.reshape(n * c, 1, h, w), kernel, stride, 0)
        cols = cols.reshape(n * c, kernel * kernel, h_out * w_out)
        arg = cols.argmax(axis=1)
        out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
        ctx.save(
            arg=arg,
            cols_shape=cols.shape,
            x_shape=x.shape,
            kernel=kernel,
            stride=stride,
        )
        return out.reshape(n, c, h_out, w_out)

    @staticmethod
    def backward(ctx, grad):
        n, c, h, w = ctx["x_shape"]
        kernel, stride = ctx["kernel"], ctx["stride"]
        grad_cols = np.zeros(ctx["cols_shape"], dtype=grad.dtype)
        flat = grad.reshape(n * c, -1)
        np.put_along_axis(grad_cols, ctx["arg"][:, None, :], flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
        return (grad_x.reshape(n, c, h, w),)


def max_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Max pooling over NCHW input."""
    return _MaxPool2dFn.apply(x, kernel=kernel, stride=stride)


class _AvgPool2dFn(Function):
    @staticmethod
    def forward(ctx, x, kernel=2, stride=None):
        stride = stride or kernel
        n, c, h, w = x.shape
        h_out = (h - kernel) // stride + 1
        w_out = (w - kernel) // stride + 1
        cols, _ = im2col(x.reshape(n * c, 1, h, w), kernel, stride, 0)
        out = cols.mean(axis=1)
        ctx.save(x_shape=x.shape, kernel=kernel, stride=stride, cols_shape=cols.shape)
        return out.reshape(n, c, h_out, w_out)

    @staticmethod
    def backward(ctx, grad):
        n, c, h, w = ctx["x_shape"]
        kernel, stride = ctx["kernel"], ctx["stride"]
        flat = grad.reshape(n * c, 1, -1) / (kernel * kernel)
        grad_cols = np.broadcast_to(flat, ctx["cols_shape"]).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
        return (grad_x.reshape(n, c, h, w),)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Average pooling over NCHW input."""
    return _AvgPool2dFn.apply(x, kernel=kernel, stride=stride)


class _CrossEntropyFn(Function):
    """Fused log-softmax + NLL, numerically stable."""

    @staticmethod
    def forward(ctx, logits, targets):
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        n = logits.shape[0]
        idx = targets.astype(int)
        losses = -np.log(np.maximum(probs[np.arange(n), idx], 1e-300))
        ctx.save(probs=probs, idx=idx, n=n)
        return np.array(losses.mean())

    @staticmethod
    def backward(ctx, grad):
        probs, idx, n = ctx["probs"], ctx["idx"], ctx["n"]
        g = probs.copy()
        g[np.arange(n), idx] -= 1.0
        return (g * (float(grad) / n),)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer targets (N,)."""
    targets = np.asarray(targets)
    return _CrossEntropyFn.apply(logits, targets)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax built from differentiable primitives."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    pred = logits.data.argmax(axis=1)
    return float((pred == np.asarray(targets)).mean())
