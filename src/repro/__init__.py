"""SupeRBNN: randomized binary neural networks on AQFP superconducting devices.

A full reproduction of "SupeRBNN: Randomized Binary Neural Network Using
Adiabatic Superconductor Josephson Devices" (MICRO 2023): the AQFP
device models, the crossbar accelerator with stochastic-computing
accumulation, the randomized-aware BNN training algorithm, the
algorithm/hardware co-optimization, and the full evaluation harness.

Quickstart::

    from repro import (HardwareConfig, Mlp, Trainer, TrainingConfig,
                       compile_model, evaluate_accuracy)
    from repro.data import make_mnist_like, DataLoader

    hw = HardwareConfig(crossbar_size=16, window_bits=16)
    train, test = make_mnist_like(2000).split()
    model = Mlp(in_features=144, hardware=hw)
    Trainer(model, TrainingConfig(epochs=20)).fit(DataLoader(train))
    network = compile_model(model)             # BN matching + tiling
    acc = evaluate_accuracy(network, test.images, test.labels)

Subpackages:

=================  ====================================================
``repro.autograd``  numpy reverse-mode autodiff + layers + optimizers
``repro.device``    AQFP buffer physics, attenuation, cell library
``repro.circuits``  gate-level netlists, clocking, APC, comparator, BCM
``repro.sc``        stochastic-computing encodings and accumulation
``repro.hardware``  crossbar arrays, tiled accelerator, cost model
``repro.core``      randomized training, ReCU, BN matching, co-opt
``repro.mapping``   model -> hardware compiler and executor shims
``repro.api``       unified inference Engine / Session / backend registry
``repro.models``    MLP / VGG-small / ResNet-18 (binarized)
``repro.data``      synthetic datasets + loaders
``repro.baselines`` published comparison points + cryo scaling
``repro.experiments`` one harness per paper table/figure
=================  ====================================================
"""

from repro.hardware.config import HardwareConfig
from repro.hardware.crossbar import CrossbarArray
from repro.hardware.accelerator import AqfpAccelerator, TiledLinearLayer
from repro.hardware.cost import AcceleratorCostModel, CrossbarCost, LayerWorkload
from repro.device.aqfp import AqfpBuffer, ValueDomainBuffer
from repro.device.attenuation import AttenuationModel
from repro.core.trainer import Trainer, TrainingConfig
from repro.core.recu import ReCU, TauSchedule
from repro.core.coopt import (
    average_mismatch_error,
    optimize_hardware_config,
    sweep_bitstream_lengths,
)
from repro.mapping.compiler import CompiledNetwork, compile_model
from repro.mapping.executor import evaluate_accuracy, network_workloads
from repro.models import Mlp, ResNet18, VggSmall
from repro.api import (
    Engine,
    EngineBuilder,
    InferenceResult,
    Serving,
    ServingReport,
    Session,
    StochasticParallelBackend,
    available_backends,
    register_backend,
)

__version__ = "1.2.0"

__all__ = [
    "HardwareConfig",
    "CrossbarArray",
    "TiledLinearLayer",
    "AqfpAccelerator",
    "AcceleratorCostModel",
    "CrossbarCost",
    "LayerWorkload",
    "AqfpBuffer",
    "ValueDomainBuffer",
    "AttenuationModel",
    "Trainer",
    "TrainingConfig",
    "ReCU",
    "TauSchedule",
    "average_mismatch_error",
    "optimize_hardware_config",
    "sweep_bitstream_lengths",
    "compile_model",
    "CompiledNetwork",
    "evaluate_accuracy",
    "network_workloads",
    "Engine",
    "EngineBuilder",
    "Session",
    "Serving",
    "ServingReport",
    "StochasticParallelBackend",
    "InferenceResult",
    "register_backend",
    "available_backends",
    "Mlp",
    "VggSmall",
    "ResNet18",
    "__version__",
]
