"""The AQFP buffer as a stochastic current comparator.

Paper Eq. (1): the probability of emitting logic '1' (a positive output
current pulse) given input current ``Iin`` is

    P(Iin) = 0.5 + 0.5 * erf( sqrt(pi) * (Iin - Ith) / dIin )

where ``Ith`` is the adjustable threshold current and ``dIin`` the thermal
gray-zone width. Eq. (3)-(4) re-express the same law in the BNN value
domain through the attenuated unit current ``I1(Cs)``:

    Pv(Vin) = 0.5 + 0.5 * erf( sqrt(pi) * (Vin - Vth) / dVin(Cs) ),
    dVin(Cs) = dIin / I1(Cs).

:class:`AqfpBuffer` works in the current domain (micro-amperes);
:class:`ValueDomainBuffer` works directly on BNN pre-activation values.
Both support vectorized probability evaluation and Monte-Carlo sampling of
the +-1 outputs, which is how the hardware executor and the randomized
training layer consume them.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import special

from repro.device.josephson import DEFAULT_GRAY_ZONE_UA
from repro.utils.rng import RngMixin, SeedLike

_SQRT_PI = math.sqrt(math.pi)


class AqfpBuffer(RngMixin):
    """Stochastic sign detector for an analog input current.

    Parameters
    ----------
    gray_zone_ua:
        Gray-zone width ``dIin`` in micro-amperes (default: the paper's
        4.2 K value, 2.4 uA).
    threshold_ua:
        Threshold current ``Ith`` in micro-amperes. BN matching programs
        this per column (paper Eq. 16).
    seed:
        RNG seed for output sampling.
    """

    def __init__(
        self,
        gray_zone_ua: float = DEFAULT_GRAY_ZONE_UA,
        threshold_ua: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if gray_zone_ua <= 0:
            raise ValueError(f"gray-zone width must be positive, got {gray_zone_ua}")
        self.gray_zone_ua = float(gray_zone_ua)
        self.threshold_ua = float(threshold_ua)

    # ------------------------------------------------------------------
    def probability_of_one(self, input_current_ua) -> np.ndarray:
        """P(output = '1') for input current(s) in uA — paper Eq. (1)."""
        i = np.asarray(input_current_ua, dtype=np.float64)
        z = _SQRT_PI * (i - self.threshold_ua) / self.gray_zone_ua
        return 0.5 + 0.5 * special.erf(z)

    def expected_output(self, input_current_ua) -> np.ndarray:
        """E[output] with outputs encoded +-1: ``erf(sqrt(pi)(I-Ith)/dI)``."""
        i = np.asarray(input_current_ua, dtype=np.float64)
        return special.erf(_SQRT_PI * (i - self.threshold_ua) / self.gray_zone_ua)

    def sample(self, input_current_ua, size: Optional[tuple] = None) -> np.ndarray:
        """Draw +-1 outputs. ``size`` optionally broadcasts extra draws.

        With ``size=None`` one output per input element is drawn; with
        ``size=(L,) + input.shape`` an observation window of L bits is
        produced (the raw material of the SC accumulation module).
        """
        p = self.probability_of_one(input_current_ua)
        shape = p.shape if size is None else size
        u = self.rng.random(shape)
        return np.where(u < p, 1.0, -1.0)

    def sample_window(self, input_current_ua, window_bits: int) -> np.ndarray:
        """Observe the buffer for ``window_bits`` clock cycles.

        Returns an array of shape ``(window_bits,) + input.shape`` of +-1
        values — a bipolar stochastic number (paper Fig. 6a).
        """
        if window_bits <= 0:
            raise ValueError(f"window_bits must be positive, got {window_bits}")
        p = self.probability_of_one(input_current_ua)
        u = self.rng.random((window_bits,) + p.shape)
        return np.where(u < p, 1.0, -1.0)

    def gray_zone_boundary_ua(self, confidence: float = 0.99) -> float:
        """|Iin - Ith| beyond which P('1') is within ``confidence`` of 0/1.

        With the default 2.4 uA width this is ~2 uA at 99% — matching the
        paper's observation (Fig. 4) that randomized switching is confined
        to roughly +-2 uA.
        """
        if not 0.5 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
        # Solve 0.5 + 0.5 erf(sqrt(pi) x / dI) = confidence for x.
        return float(special.erfinv(2 * confidence - 1) * self.gray_zone_ua / _SQRT_PI)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AqfpBuffer(gray_zone_ua={self.gray_zone_ua}, "
            f"threshold_ua={self.threshold_ua})"
        )


class ValueDomainBuffer(RngMixin):
    """AQFP buffer expressed in BNN value units — paper Eq. (3)-(4).

    A crossbar column carrying mathematical pre-activation ``Vin`` (the
    signed popcount, in [-Cs, +Cs]) produces current ``Vin * I1(Cs)``.
    Dividing Eq. (1) through by ``I1(Cs)`` yields a value-domain gray zone
    ``dVin = dIin / I1(Cs)`` and threshold ``Vth = Ith / I1(Cs)``.

    Parameters
    ----------
    gray_zone_value:
        ``dVin(Cs)`` in value units.
    threshold_value:
        ``Vth`` in value units.
    """

    def __init__(
        self,
        gray_zone_value: float,
        threshold_value: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if gray_zone_value <= 0:
            raise ValueError(
                f"gray-zone width must be positive, got {gray_zone_value}"
            )
        self.gray_zone_value = float(gray_zone_value)
        self.threshold_value = float(threshold_value)

    @classmethod
    def from_current_domain(
        cls,
        buffer: AqfpBuffer,
        unit_current_ua: float,
        seed: SeedLike = None,
    ) -> "ValueDomainBuffer":
        """Convert a current-domain buffer given ``I1(Cs)`` (Eq. 4)."""
        if unit_current_ua <= 0:
            raise ValueError(f"unit current must be positive, got {unit_current_ua}")
        return cls(
            gray_zone_value=buffer.gray_zone_ua / unit_current_ua,
            threshold_value=buffer.threshold_ua / unit_current_ua,
            seed=seed,
        )

    def probability_of_one(self, value) -> np.ndarray:
        """``Pv(Vin)`` — paper Eq. (3)."""
        v = np.asarray(value, dtype=np.float64)
        z = _SQRT_PI * (v - self.threshold_value) / self.gray_zone_value
        return 0.5 + 0.5 * special.erf(z)

    def expected_output(self, value) -> np.ndarray:
        """E[binary output] = ``erf(sqrt(pi)(Vin - Vth)/dVin)`` (Eq. 10)."""
        v = np.asarray(value, dtype=np.float64)
        return special.erf(
            _SQRT_PI * (v - self.threshold_value) / self.gray_zone_value
        )

    def sample(self, value) -> np.ndarray:
        """Draw one +-1 output per element."""
        p = self.probability_of_one(value)
        return np.where(self.rng.random(p.shape) < p, 1.0, -1.0)

    def sample_window(self, value, window_bits: int) -> np.ndarray:
        """L-bit observation window: shape ``(L,) + value.shape`` of +-1."""
        if window_bits <= 0:
            raise ValueError(f"window_bits must be positive, got {window_bits}")
        p = self.probability_of_one(value)
        u = self.rng.random((window_bits,) + p.shape)
        return np.where(u < p, 1.0, -1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ValueDomainBuffer(gray_zone_value={self.gray_zone_value:.4g}, "
            f"threshold_value={self.threshold_value:.4g})"
        )
