"""Transient (Langevin) simulation of the AQFP buffer decision.

The paper verifies its circuits with a modified Jsim that injects
thermal noise (Sec. 6.1). This module is the corresponding substrate
here: a stochastic transient simulation of the quantum-flux-parametron
decision from device dynamics, used to *derive* the erf probability law
(Eq. 1) rather than assume it.

Model. During excitation the QFP's potential over its order parameter
``phi`` (the normalized loop flux) deforms from a single well into a
double well; the input current tilts the landscape:

    U(phi, t) = -a(t) phi^2 / 2 + b phi^4 / 4 - i_in phi,
    a(t) ramping from a_start < 0 to a_end > 0.

Overdamped Langevin dynamics with Johnson noise then govern the escape
into the left/right well:

    eta dphi/dt = -dU/dphi + xi(t),   <xi(t) xi(t')> = 2 eta kT delta.

The sign of ``phi`` after the ramp is the logic output. Monte-Carlo over
thermal histories yields P('1' | i_in); for small noise this is
numerically indistinguishable from the erf law with a gray-zone width
that grows with temperature — exactly the behaviour the analytic
:class:`repro.device.aqfp.AqfpBuffer` assumes. All quantities are in
normalized device units; calibration to micro-amperes happens through
the fitted gray zone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import special

from repro.utils.rng import SeedLike, new_rng

_SQRT_PI = math.sqrt(math.pi)


@dataclass(frozen=True)
class QfpPotential:
    """Quartic double-well potential with an excitation ramp.

    Parameters
    ----------
    a_start, a_end:
        Quadratic coefficient at the start (< 0: single well) and end
        (> 0: double well) of the excitation ramp.
    b:
        Quartic stiffness (> 0).
    """

    a_start: float = -1.0
    a_end: float = 4.0
    b: float = 1.0

    def __post_init__(self) -> None:
        if self.b <= 0:
            raise ValueError(f"quartic stiffness must be positive, got {self.b}")
        if self.a_end <= 0:
            raise ValueError("a_end must be positive (double well required)")
        if self.a_start >= self.a_end:
            raise ValueError("excitation must ramp a upward")

    def quadratic(self, progress: float) -> float:
        """a(t) at ramp progress in [0, 1] (linear ramp)."""
        return self.a_start + (self.a_end - self.a_start) * progress

    def force(self, phi: np.ndarray, progress: float, input_bias) -> np.ndarray:
        """-dU/dphi at the given ramp progress."""
        a = self.quadratic(progress)
        return a * phi - self.b * phi**3 + input_bias

    def well_positions(self) -> Tuple[float, float]:
        """Minima of the final (untilted) double well: +-sqrt(a_end/b)."""
        root = math.sqrt(self.a_end / self.b)
        return -root, root

    def barrier_height(self) -> float:
        """Energy barrier between the final wells at zero input."""
        return self.a_end**2 / (4.0 * self.b)


class TransientBuffer:
    """Monte-Carlo transient simulator of one AQFP buffer decision.

    Parameters
    ----------
    potential:
        The excitation-ramped double-well landscape.
    noise_temperature:
        Dimensionless kT in device units; the thermal gray zone scales
        with it.
    damping:
        Langevin friction ``eta``.
    n_steps:
        Euler-Maruyama steps across the excitation ramp.
    dt:
        Integration step.
    """

    def __init__(
        self,
        potential: Optional[QfpPotential] = None,
        noise_temperature: float = 0.08,
        damping: float = 1.0,
        n_steps: int = 160,
        dt: float = 0.05,
        seed: SeedLike = None,
    ) -> None:
        if noise_temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {noise_temperature}")
        if damping <= 0 or dt <= 0 or n_steps < 1:
            raise ValueError("damping, dt must be positive; n_steps >= 1")
        self.potential = potential or QfpPotential()
        self.noise_temperature = noise_temperature
        self.damping = damping
        self.n_steps = n_steps
        self.dt = dt
        self._rng = new_rng(seed)

    # ------------------------------------------------------------------
    def simulate_outputs(self, input_bias: float, n_trials: int) -> np.ndarray:
        """+-1 decisions of ``n_trials`` independent thermal histories."""
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        phi = np.zeros(n_trials)
        noise_scale = math.sqrt(
            2.0 * self.noise_temperature * self.dt / self.damping
        )
        for step in range(self.n_steps):
            progress = (step + 1) / self.n_steps
            drift = self.potential.force(phi, progress, input_bias) / self.damping
            phi = phi + drift * self.dt
            if noise_scale > 0:
                phi = phi + noise_scale * self._rng.normal(size=n_trials)
        # Ties (phi exactly 0) are measure-zero; break toward +1.
        return np.where(phi >= 0, 1.0, -1.0)

    def probability_of_one(self, input_bias: float, n_trials: int = 2000) -> float:
        """Monte-Carlo estimate of P('1' | input)."""
        outputs = self.simulate_outputs(input_bias, n_trials)
        return float((outputs > 0).mean())

    def response_curve(
        self,
        biases: Sequence[float],
        n_trials: int = 2000,
    ) -> np.ndarray:
        """P('1') over a bias sweep, shape (len(biases),)."""
        return np.array([self.probability_of_one(b, n_trials) for b in biases])

    # ------------------------------------------------------------------
    def fit_gray_zone(
        self,
        bias_range: float = 0.5,
        n_points: int = 13,
        n_trials: int = 2000,
    ) -> Tuple[float, float]:
        """Fit the erf law (Eq. 1) to the simulated response.

        Probit regression: ``erfinv(2P - 1) = sqrt(pi) (i - Ith) / dI``
        is linear in the bias, so a least-squares line through the
        transformed response yields ``(dI, Ith)``. Returns
        ``(gray_zone, threshold)`` in device units.
        """
        biases = np.linspace(-bias_range, bias_range, n_points)
        probs = self.response_curve(biases, n_trials)
        # Keep points away from the saturated tails (erfinv blows up).
        mask = (probs > 0.02) & (probs < 0.98)
        if mask.sum() < 3:
            raise RuntimeError(
                "response saturates across the sweep; widen bias_range "
                "or raise the temperature"
            )
        z = special.erfinv(2.0 * probs[mask] - 1.0)
        slope, intercept = np.polyfit(biases[mask], z, 1)
        if slope <= 0:
            raise RuntimeError("non-monotone response; increase n_trials")
        gray_zone = _SQRT_PI / slope
        threshold = -intercept / slope
        return float(gray_zone), float(threshold)

    def erf_fit_residual(
        self,
        bias_range: float = 0.5,
        n_points: int = 13,
        n_trials: int = 2000,
    ) -> float:
        """Max |simulated P - fitted erf P| over the sweep.

        Small residuals validate the paper's Eq. 1 functional form from
        the transient physics.
        """
        gray_zone, threshold = self.fit_gray_zone(bias_range, n_points, n_trials)
        biases = np.linspace(-bias_range, bias_range, n_points)
        simulated = self.response_curve(biases, n_trials)
        fitted = 0.5 + 0.5 * special.erf(
            _SQRT_PI * (biases - threshold) / gray_zone
        )
        return float(np.abs(simulated - fitted).max())
