"""AQFP device physics: Josephson junctions, buffers, attenuation, cells.

This package models the analog behaviour the paper measures on fabricated
hardware (Sec. 4.2, Figs. 4-5) so that the rest of the stack can run
offline:

* :mod:`repro.device.josephson` — junction energetics and the
  thermal/quantum gray-zone width.
* :mod:`repro.device.aqfp` — the AQFP buffer as a stochastic comparator
  (paper Eq. 1) and its value-domain form (Eq. 3-4).
* :mod:`repro.device.attenuation` — crossbar current attenuation: the
  inductive-ladder "measurement" and the power-law fit ``I1 = A * Cs^-B``
  (Eq. 2).
* :mod:`repro.device.cells` — the AQFP standard-cell library with JJ
  counts and per-cycle switching energy, calibrated to Table 1.
"""

from repro.device.josephson import (
    FLUX_QUANTUM_WB,
    JosephsonJunction,
    gray_zone_width,
    thermal_current_scale,
)
from repro.device.aqfp import AqfpBuffer, ValueDomainBuffer
from repro.device.attenuation import (
    AttenuationModel,
    InductiveLadder,
    fit_attenuation,
)
from repro.device.cells import CELL_LIBRARY, AqfpCell, CellLibrary
from repro.device.transient import QfpPotential, TransientBuffer

__all__ = [
    "FLUX_QUANTUM_WB",
    "JosephsonJunction",
    "gray_zone_width",
    "thermal_current_scale",
    "AqfpBuffer",
    "ValueDomainBuffer",
    "AttenuationModel",
    "InductiveLadder",
    "fit_attenuation",
    "AqfpCell",
    "CellLibrary",
    "CELL_LIBRARY",
    "QfpPotential",
    "TransientBuffer",
]
