"""AQFP standard-cell library: JJ counts, energy, and timing per cell.

The paper's logic circuits (LiM cells, APCs, comparators) are built from
the minimalist AQFP cell library (buffer, inverter, AND, OR, majority,
splitter, read-out). We model each cell by its Josephson-junction count
and charge the per-cycle switching energy per JJ.

Calibration: the paper's Table 1 reports JJ counts that decompose exactly
as ``12 * n^2 + 48 * n`` for an ``n x n`` crossbar with energy
5 zJ/JJ/cycle (e.g. 8x8: 1152 JJs, 5.76 aJ). We therefore fix

* LiM cell (storage buffer + XNOR macro + splitter + coupling) = 12 JJ,
* per-row input peripheral (driver + splitter tree stage) = 24 JJ,
* per-column neuron circuit (merge + AQFP buffer + read-out) = 24 JJ,
* ENERGY_PER_JJ_PER_CYCLE = 5 zJ.

These constants regenerate every row of Table 1 bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

#: Switching energy charged to each JJ each clock cycle [J].
ENERGY_PER_JJ_PER_CYCLE_J = 5e-21

#: Device-level adiabatic dissipation demonstrated in 2019 (paper [67]) [J].
DEVICE_LEVEL_ENERGY_J = 1.4e-21

#: Stage-to-stage delay with the delay-line clocking scheme [s] (Sec. 6.1:
#: 5 ps between adjacent logic stages).
DELAY_LINE_STAGE_DELAY_S = 5e-12

#: Stage-to-stage delay of the plain 4-phase scheme [s] (Sec. 6.1: 50 ps).
FOUR_PHASE_STAGE_DELAY_S = 50e-12

#: Default clock rate [Hz].
CLOCK_RATE_HZ = 5e9


@dataclass(frozen=True)
class AqfpCell:
    """One standard cell: name, JJ count, logic stages it occupies."""

    name: str
    jj_count: int
    stages: int = 1
    inputs: int = 1
    outputs: int = 1

    def __post_init__(self) -> None:
        if self.jj_count < 0:
            raise ValueError(f"jj_count must be >= 0, got {self.jj_count}")
        if self.stages < 1:
            raise ValueError(f"stages must be >= 1, got {self.stages}")

    def energy_per_cycle_j(self) -> float:
        return self.jj_count * ENERGY_PER_JJ_PER_CYCLE_J


class CellLibrary:
    """Lookup table of AQFP cells, with aggregate helpers."""

    def __init__(self, cells: Iterable[AqfpCell]) -> None:
        self._cells: Dict[str, AqfpCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name!r}")
            self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> AqfpCell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"unknown cell {name!r}; available: {sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def names(self):
        return sorted(self._cells)

    def total_jj(self, counts: Mapping[str, int]) -> int:
        """Total JJs for a bill of materials {cell name: instance count}."""
        total = 0
        for name, count in counts.items():
            if count < 0:
                raise ValueError(f"negative count for {name!r}")
            total += self[name].jj_count * count
        return total

    def total_energy_per_cycle_j(self, counts: Mapping[str, int]) -> float:
        return self.total_jj(counts) * ENERGY_PER_JJ_PER_CYCLE_J


#: The minimalist AQFP library (paper Sec. 2.2 / Sec. 6.1). JJ counts
#: follow the buffer-based minimalist construction: a buffer is a
#: double-JJ SQUID (2 JJs); an inverter is a buffer with inverted output
#: coupling; majority merges three buffered inputs (6 JJs); AND/OR are
#: majority gates with one input tied to a constant; the splitter is a
#: buffer with a 1-to-2 output transformer plus branch loading.
CELL_LIBRARY = CellLibrary(
    [
        AqfpCell("buffer", jj_count=2, inputs=1, outputs=1),
        AqfpCell("inverter", jj_count=2, inputs=1, outputs=1),
        AqfpCell("constant", jj_count=2, inputs=0, outputs=1),
        AqfpCell("splitter", jj_count=4, inputs=1, outputs=2),
        AqfpCell("majority3", jj_count=6, inputs=3, outputs=1),
        AqfpCell("and2", jj_count=6, inputs=2, outputs=1),
        AqfpCell("or2", jj_count=6, inputs=2, outputs=1),
        AqfpCell("xor2", jj_count=12, stages=2, inputs=2, outputs=1),
        AqfpCell("xnor2", jj_count=12, stages=2, inputs=2, outputs=1),
        AqfpCell("readout", jj_count=4, inputs=1, outputs=1),
        # Composite cells used by the crossbar bill of materials; counts
        # are the Table 1 calibration (see module docstring).
        AqfpCell("lim_cell", jj_count=12, stages=3, inputs=2, outputs=1),
        AqfpCell("row_driver", jj_count=24, stages=3, inputs=1, outputs=1),
        AqfpCell("column_neuron", jj_count=24, stages=3, inputs=1, outputs=1),
    ]
)
