"""Crossbar current attenuation: measurement model and power-law fit.

The analog column sum of an AQFP crossbar merges per-cell output currents
through superconductive inductors. As the column grows, the total series
inductance grows and the merged current representing one unit of value
attenuates. The paper measures this (Fig. 5) and fits

    I1(Cs) = A * Cs^(-B)                                  (Eq. 2)

with positive constants A, B. Here:

* :class:`InductiveLadder` is a physical stand-in for the measurement —
  a current-divider ladder whose output reproduces the attenuation shape.
* :func:`fit_attenuation` performs the log-log least-squares fit.
* :class:`AttenuationModel` is the fitted law used everywhere else
  (training, mapping, co-optimization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng

#: Drive current representing +-1 at the crossbar input (paper Sec. 4.2).
DRIVE_CURRENT_UA = 70.0


@dataclass(frozen=True)
class AttenuationModel:
    """Fitted power law ``I1(Cs) = A * Cs^-B`` (micro-amperes).

    Defaults are calibrated so that a single cell delivers the full
    +-70 uA drive and the output falls to the gray-zone scale
    (~2 uA) near the largest fabricable arrays, which is what limits
    crossbar scalability in the paper.
    """

    amplitude_ua: float = DRIVE_CURRENT_UA
    exponent: float = 0.9

    def __post_init__(self) -> None:
        if self.amplitude_ua <= 0:
            raise ValueError(f"A must be positive, got {self.amplitude_ua}")
        if self.exponent <= 0:
            raise ValueError(f"B must be positive, got {self.exponent}")

    def unit_current_ua(self, crossbar_size) -> np.ndarray:
        """``I1(Cs)`` — output current per unit of value, in uA."""
        cs = np.asarray(crossbar_size, dtype=np.float64)
        if np.any(cs < 1):
            raise ValueError("crossbar size must be >= 1")
        return self.amplitude_ua * cs ** (-self.exponent)

    def value_domain_gray_zone(self, crossbar_size, gray_zone_ua: float) -> np.ndarray:
        """``dVin(Cs) = dIin / I1(Cs)`` — paper Eq. (4)."""
        if gray_zone_ua <= 0:
            raise ValueError(f"gray zone must be positive, got {gray_zone_ua}")
        return gray_zone_ua / self.unit_current_ua(crossbar_size)

    def __call__(self, crossbar_size) -> np.ndarray:
        return self.unit_current_ua(crossbar_size)


class InductiveLadder:
    """Analog merging circuit model that *produces* the attenuation data.

    Each LiM cell couples its output into a shared column line through a
    coupling inductance; the line presents a load that grows with the
    number of merged cells. The per-unit output current is

        I_out(Cs) = I_drive * L_out / (L_out + L_cell * Cs^p)

    with ``p`` slightly below 1 because mutual coupling partially cancels
    the series growth. Over the fabricable range (4..144) this is
    numerically indistinguishable from the paper's power law, which is
    exactly why the paper fits Eq. (2) to its measurements.
    """

    def __init__(
        self,
        drive_current_ua: float = DRIVE_CURRENT_UA,
        output_inductance_ph: float = 6.0,
        cell_inductance_ph: float = 5.0,
        coupling_exponent: float = 0.93,
    ) -> None:
        if drive_current_ua <= 0:
            raise ValueError(f"drive current must be positive, got {drive_current_ua}")
        if output_inductance_ph <= 0 or cell_inductance_ph <= 0:
            raise ValueError("inductances must be positive")
        if not 0 < coupling_exponent <= 1:
            raise ValueError(
                f"coupling exponent must be in (0, 1], got {coupling_exponent}"
            )
        self.drive_current_ua = drive_current_ua
        self.output_inductance_ph = output_inductance_ph
        self.cell_inductance_ph = cell_inductance_ph
        self.coupling_exponent = coupling_exponent

    def output_current_ua(self, crossbar_size) -> np.ndarray:
        """Unit output current of a column with ``crossbar_size`` cells."""
        cs = np.asarray(crossbar_size, dtype=np.float64)
        if np.any(cs < 1):
            raise ValueError("crossbar size must be >= 1")
        l_out = self.output_inductance_ph
        l_col = self.cell_inductance_ph * cs**self.coupling_exponent
        return self.drive_current_ua * l_out / (l_out + l_col)

    def measure(
        self,
        sizes: Iterable[int],
        noise_fraction: float = 0.02,
        seed: SeedLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Emulate the paper's bench measurement with multiplicative noise.

        Returns ``(sizes, currents_ua)`` arrays.
        """
        rng = new_rng(seed)
        sizes_arr = np.asarray(list(sizes), dtype=np.float64)
        clean = self.output_current_ua(sizes_arr)
        noise = rng.normal(1.0, noise_fraction, size=clean.shape)
        return sizes_arr, clean * np.abs(noise)


def fit_attenuation(
    sizes: Sequence[float],
    currents_ua: Sequence[float],
) -> AttenuationModel:
    """Least-squares fit of ``I1 = A * Cs^-B`` in log-log space.

    Raises ``ValueError`` on fewer than two points or non-positive data.
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    currents_arr = np.asarray(currents_ua, dtype=np.float64)
    if sizes_arr.shape != currents_arr.shape:
        raise ValueError("sizes and currents must have the same shape")
    if sizes_arr.size < 2:
        raise ValueError("need at least two measurements to fit")
    if np.any(sizes_arr <= 0) or np.any(currents_arr <= 0):
        raise ValueError("sizes and currents must be positive")
    log_cs = np.log(sizes_arr)
    log_i = np.log(currents_arr)
    slope, intercept = np.polyfit(log_cs, log_i, 1)
    model = AttenuationModel(amplitude_ua=float(np.exp(intercept)), exponent=float(-slope))
    return model


def default_attenuation_model(
    sizes: Optional[Sequence[int]] = None,
    seed: SeedLike = 0,
) -> AttenuationModel:
    """The calibration pipeline used by the rest of the library.

    Simulates the inductive ladder at the paper's crossbar sizes and fits
    the power law, mirroring 'measure then fit' from Sec. 4.2.
    """
    if sizes is None:
        sizes = [4, 8, 16, 18, 36, 72, 144]
    ladder = InductiveLadder()
    xs, ys = ladder.measure(sizes, seed=seed)
    return fit_attenuation(xs, ys)
