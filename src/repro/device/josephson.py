"""Josephson-junction energetics and comparator gray-zone physics.

The AQFP buffer is a double-JJ SQUID acting as a current comparator. Its
decision is corrupted by thermal noise; quantitative work on Josephson
comparators (Walls, Filippov & Likharev, PRL 2002 — the paper's [73])
shows the gray-zone width grows with temperature as ``T^(2/3)`` in the
thermal regime and saturates at a quantum floor as ``T -> 0``. SupeRBNN
operates at 4.2 K where thermal fluctuations dominate; we expose the same
scaling so temperature studies stay physical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Physical constants (SI).
FLUX_QUANTUM_WB = 2.067833848e-15  # magnetic flux quantum Phi0 [Wb]
BOLTZMANN_J_PER_K = 1.380649e-23
ELEMENTARY_CHARGE_C = 1.602176634e-19

#: Operating point of the paper's measurements.
OPERATING_TEMPERATURE_K = 4.2
#: Gray-zone width measured at 4.2 K (paper Sec. 6.4 uses 2.4 uA).
DEFAULT_GRAY_ZONE_UA = 2.4
#: Temperature below which quantum fluctuations dominate (saturation).
QUANTUM_CROSSOVER_K = 0.3


@dataclass(frozen=True)
class JosephsonJunction:
    """A single Josephson junction characterized by its critical current.

    Parameters
    ----------
    critical_current_ua:
        Critical current ``Ic`` in micro-amperes. The AIST HSTP process
        (10 kA/cm^2) used by the paper yields junctions around 50-100 uA.
    """

    critical_current_ua: float = 50.0

    def __post_init__(self) -> None:
        if self.critical_current_ua <= 0:
            raise ValueError(
                f"critical current must be positive, got {self.critical_current_ua}"
            )

    @property
    def josephson_energy_j(self) -> float:
        """Josephson coupling energy ``EJ = Ic * Phi0 / (2 pi)`` [J]."""
        ic_a = self.critical_current_ua * 1e-6
        return ic_a * FLUX_QUANTUM_WB / (2.0 * math.pi)

    def switching_energy_j(self) -> float:
        """Energy of a full 2pi phase slip, ``Ic * Phi0`` [J].

        This is the non-adiabatic (SFQ-style) switching cost; adiabatic
        operation dissipates orders of magnitude less (the paper reports
        1.4 zJ per buffer operation at the device level).
        """
        return self.critical_current_ua * 1e-6 * FLUX_QUANTUM_WB

    def thermal_ratio(self, temperature_k: float = OPERATING_TEMPERATURE_K) -> float:
        """Dimensionless noise ratio ``kB T / EJ``."""
        if temperature_k < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature_k}")
        return BOLTZMANN_J_PER_K * temperature_k / self.josephson_energy_j


def thermal_current_scale(
    junction: JosephsonJunction, temperature_k: float = OPERATING_TEMPERATURE_K
) -> float:
    """Thermal fluctuation current scale ``It = 2 pi kB T / Phi0`` in uA."""
    if temperature_k < 0:
        raise ValueError(f"temperature must be >= 0, got {temperature_k}")
    it_a = 2.0 * math.pi * BOLTZMANN_J_PER_K * temperature_k / FLUX_QUANTUM_WB
    return it_a * 1e6


def gray_zone_width(
    temperature_k: float = OPERATING_TEMPERATURE_K,
    width_at_4p2k_ua: float = DEFAULT_GRAY_ZONE_UA,
    quantum_crossover_k: float = QUANTUM_CROSSOVER_K,
) -> float:
    """Gray-zone width ``dIin`` (uA) versus temperature.

    Thermal regime: ``dI ~ T^(2/3)`` (Walls et al. 2002). Below the
    quantum crossover the width saturates at its crossover value instead
    of vanishing — quantum fluctuations put a floor under the resolution.
    """
    if temperature_k < 0:
        raise ValueError(f"temperature must be >= 0, got {temperature_k}")
    effective_t = max(temperature_k, quantum_crossover_k)
    return width_at_4p2k_ua * (effective_t / OPERATING_TEMPERATURE_K) ** (2.0 / 3.0)
