"""Comparison baselines (paper Tables 2-3, Fig. 12).

The paper compares SupeRBNN against *published* operating points of
other accelerators (CMOS, ReRAM, MRAM, RSFQ/ERSFQ, SC-AQFP) plus
analytic cryo-CMOS scaling laws. :mod:`repro.baselines.specs` encodes
those operating points as data; :mod:`repro.baselines.cryo` implements
the temperature/frequency scaling used in Fig. 12.
"""

from repro.baselines.specs import (
    CIFAR10_BASELINES,
    MNIST_BASELINES,
    BaselineSpec,
    get_baseline,
)
from repro.baselines.cryo import (
    CRYO_COOLING_OVERHEAD_77K,
    CRYO_EFFICIENCY_GAIN_77K,
    aqfp_efficiency_vs_frequency,
    cmos_efficiency_vs_frequency,
    cryo_cmos_efficiency,
)

__all__ = [
    "BaselineSpec",
    "CIFAR10_BASELINES",
    "MNIST_BASELINES",
    "get_baseline",
    "cryo_cmos_efficiency",
    "aqfp_efficiency_vs_frequency",
    "cmos_efficiency_vs_frequency",
    "CRYO_EFFICIENCY_GAIN_77K",
    "CRYO_COOLING_OVERHEAD_77K",
]
