"""Pure stochastic-computing inference — the SC-AQFP baseline ([13]).

SC-AQFP computes the *entire* network in the stochastic domain: every
activation is a bipolar stochastic number, multiplication is XNOR, and
accumulation counts product bits. Each real-valued activation encoded
with L bits carries quantization variance ``(1 - a^2) / L``, so the
whole network's signal-to-noise ratio scales with the stream length —
the paper quotes 256-2048 bits before pure SC works, whereas SupeRBNN
uses SC only for inter-crossbar accumulation and saturates at L = 16-32
(Sec. 2.3).

:class:`ScMlp` runs a trained :class:`repro.models.Mlp`'s weights in
this pure-SC mode: real activations in [-1, 1] are encoded as length-L
bipolar SNs each layer, XNOR-multiplied by the +-1 weights, counted,
and re-normalized through the trained BN affine (no binarization — pure
SC keeps values analog-in-probability). The comparison bench sweeps L
for both paradigms on identical weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.models.mlp import Mlp
from repro.utils.rng import RngMixin, SeedLike


class ScMlp(RngMixin):
    """Execute a trained MLP's weights with pure stochastic computing.

    Per fully connected cell:

    1. encode the real input activations ``a in [-1, 1]`` as length-L
       bipolar SNs (Bernoulli ``(a + 1) / 2`` per clock) — this is where
       SC quantization noise enters, with variance ``(1 - a^2) / L``;
    2. XNOR-multiply by the +-1 weights and count per clock (exact APC);
    3. average the counts over the stream: an unbiased but noisy
       estimate of the weight-activation dot product;
    4. re-normalize through the cell's trained BN affine and HardTanh
       back into [-1, 1] for the next layer.

    At ``L -> inf`` this converges to the noise-free real-activation
    network; small L drowns the signal — the SC-AQFP scaling the paper
    criticizes.
    """

    def __init__(self, model: Mlp, stream_length: int, seed: SeedLike = 0) -> None:
        super().__init__(seed)
        if stream_length < 1:
            raise ValueError(f"stream_length must be >= 1, got {stream_length}")
        self.stream_length = stream_length
        self.layers: List[Dict] = []
        for cell in model.cells:
            bn = cell.bn
            std = np.sqrt(bn.running_var + bn.eps)
            self.layers.append(
                {
                    "weights": np.where(cell.weight.data >= 0, 1.0, -1.0),  # (out, in)
                    "alpha": cell.alpha.data.copy(),
                    "gamma": bn.weight.data.copy(),
                    "beta": bn.bias.data.copy(),
                    "mean": bn.running_mean.copy(),
                    "std": std,
                }
            )
        head = model.head
        self.head = {
            "weights": np.where(head.weight.data >= 0, 1.0, -1.0),
            "alpha": head.alpha.data.copy(),
            "gamma": head.bn.weight.data.copy(),
            "beta": head.bn.bias.data.copy(),
            "mean": head.bn.running_mean.copy(),
            "std": np.sqrt(head.bn.running_var + head.bn.eps),
        }

    # ------------------------------------------------------------------
    def _encode_dot(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """SC estimate of ``activations @ weights.T`` (noisy, unbiased)."""
        length = self.stream_length
        n, fan_in = activations.shape
        p = (np.clip(activations, -1.0, 1.0) + 1.0) / 2.0
        bits = self.rng.random((length, n, fan_in)) < p  # bipolar SNs
        wire = np.where(bits, 1.0, -1.0)
        dot_per_clock = np.einsum("lnf,of->lno", wire, weights, optimize=True)
        return dot_per_clock.mean(axis=0)  # (N, out)

    def _sc_cell(self, activations: np.ndarray, layer: Dict) -> np.ndarray:
        estimate = self._encode_dot(activations, layer["weights"])
        y = estimate * layer["alpha"]
        xbn = layer["gamma"] * (y - layer["mean"]) / layer["std"] + layer["beta"]
        return np.clip(xbn, -1.0, 1.0)  # HardTanh back into SN range

    def logits(self, images: np.ndarray) -> np.ndarray:
        x = np.asarray(images, dtype=np.float64)
        if x.ndim == 4:
            x = x.reshape(x.shape[0], -1)
        x = np.clip(x, -1.0, 1.0)
        for layer in self.layers:
            x = self._sc_cell(x, layer)
        head = self.head
        estimate = self._encode_dot(x, head["weights"])
        y = estimate * head["alpha"]
        return head["gamma"] * (y - head["mean"]) / head["std"] + head["beta"]

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        pred = self.logits(images).argmax(axis=1)
        return float((pred == np.asarray(labels)).mean())


def sc_aqfp_length_sweep(
    model: Mlp,
    images: np.ndarray,
    labels: np.ndarray,
    lengths: Iterable[int] = (8, 32, 128, 512),
    seed: SeedLike = 0,
) -> List[Dict[str, float]]:
    """Accuracy of pure-SC inference vs stream length.

    The comparison target for the paper's Sec. 2.3 claim: pure SC needs
    hundreds-to-thousands of bits where SupeRBNN's hybrid needs 16-32.
    """
    results = []
    for length in lengths:
        engine = ScMlp(model, stream_length=int(length), seed=seed)
        results.append(
            {
                "stream_length": int(length),
                "accuracy": engine.accuracy(images, labels),
            }
        )
    return results
