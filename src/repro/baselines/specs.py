"""Published baseline operating points (paper Tables 2-3).

Numbers are copied from the paper's tables; ``None`` marks entries the
paper leaves blank. Energy efficiencies are TOPS/W; power mW; throughput
images/ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class BaselineSpec:
    """One published accelerator operating point."""

    name: str
    technology: str
    scheme: str  # "full-precision" or "binary"
    dataset: str
    accuracy: float
    tops_per_w: Optional[float] = None
    tops_per_w_cooled: Optional[float] = None
    power_mw: Optional[float] = None
    throughput_images_per_ms: Optional[float] = None
    frequency_hz: Optional[float] = None
    reference: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 100.0:
            raise ValueError(f"accuracy must be a percentage, got {self.accuracy}")


#: Table 2 — CIFAR-10 comparisons.
CIFAR10_BASELINES: Tuple[BaselineSpec, ...] = (
    BaselineSpec(
        name="DDN",
        technology="CMOS digital (DaDianNao)",
        scheme="full-precision",
        dataset="cifar10",
        accuracy=92.5,
        tops_per_w=0.28,
        reference="[16]",
    ),
    BaselineSpec(
        name="IMB",
        technology="ReRAM crossbar",
        scheme="binary",
        dataset="cifar10",
        accuracy=87.7,
        tops_per_w=82.6,
        power_mw=12.5,
        throughput_images_per_ms=1.3,
        reference="[40]",
    ),
    BaselineSpec(
        name="STT-BNN",
        technology="STT-MRAM in-memory",
        scheme="binary",
        dataset="cifar10",
        accuracy=80.1,
        tops_per_w=311.0,
        reference="[54]",
    ),
    BaselineSpec(
        name="CMOS-BNN",
        technology="10nm FinFET CMOS (13 MHz)",
        scheme="binary",
        dataset="cifar10",
        accuracy=92.0,
        tops_per_w=617.0,
        frequency_hz=13e6,
        reference="[42]",
    ),
)

#: Table 3 — MNIST comparisons (all on the JBNN MLP architecture).
MNIST_BASELINES: Tuple[BaselineSpec, ...] = (
    BaselineSpec(
        name="SyncBNN",
        technology="CMOS",
        scheme="binary",
        dataset="mnist",
        accuracy=98.4,
        tops_per_w=36.6,
        tops_per_w_cooled=36.6,
        reference="[27]",
    ),
    BaselineSpec(
        name="RSFQ",
        technology="RSFQ superconducting",
        scheme="binary",
        dataset="mnist",
        accuracy=97.9,
        tops_per_w=2.4e3,
        tops_per_w_cooled=8.1,
        reference="[27]",
    ),
    BaselineSpec(
        name="ERSFQ",
        technology="ERSFQ superconducting",
        scheme="binary",
        dataset="mnist",
        accuracy=97.9,
        tops_per_w=1.5e4,
        tops_per_w_cooled=50.0,
        reference="[27]",
    ),
    BaselineSpec(
        name="SC-AQFP",
        technology="AQFP pure stochastic computing",
        scheme="binary",
        dataset="mnist",
        accuracy=96.9,
        tops_per_w=9.8e3,
        tops_per_w_cooled=24.5,
        reference="[13]",
    ),
)

#: The paper's own reported rows (for EXPERIMENTS.md comparisons).
PAPER_SUPERBNN_CIFAR10: Tuple[Dict, ...] = (
    {"model": "VGG-Small", "accuracy": 91.7, "tops_per_w": 1.9e5, "tops_per_w_cooled": 4.8e2, "power_mw": 6.2e-3, "throughput_images_per_ms": 2.0},
    {"model": "VGG-Small", "accuracy": 90.6, "tops_per_w": 3.8e5, "tops_per_w_cooled": 9.5e2, "power_mw": 6.3e-3, "throughput_images_per_ms": 3.9},
    {"model": "VGG-Small", "accuracy": 89.2, "tops_per_w": 1.5e6, "tops_per_w_cooled": 3.8e3, "power_mw": 6.4e-3, "throughput_images_per_ms": 15.2},
    {"model": "VGG-Small", "accuracy": 87.4, "tops_per_w": 6.8e6, "tops_per_w_cooled": 1.7e4, "power_mw": 7.6e-3, "throughput_images_per_ms": 47.4},
    {"model": "ResNet-18", "accuracy": 92.2, "tops_per_w": 1.9e5, "tops_per_w_cooled": 4.8e2, "power_mw": 6.2e-3, "throughput_images_per_ms": 2.2},
)

PAPER_SUPERBNN_MNIST: Dict = {
    "model": "MLP",
    "accuracy": 98.1,
    "tops_per_w": 1.5e6,
    "tops_per_w_cooled": 3.8e3,
}


def get_baseline(name: str, dataset: str) -> BaselineSpec:
    """Look up a baseline by name and dataset (case-insensitive)."""
    pool = CIFAR10_BASELINES if dataset.lower() == "cifar10" else MNIST_BASELINES
    for spec in pool:
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"no baseline {name!r} for dataset {dataset!r}")
