"""Cryogenic scaling laws for the device-level comparison (Fig. 12).

Paper Sec. 6.5: at 77 K (liquid nitrogen), Cryo-CMOS gains about 1.5x
energy efficiency over room-temperature CMOS, while cooling costs about
9.65x the device power — so cooled efficiency divides by 10.65. Our AQFP
point at 4.2 K pays the 400x helium-cryocooler overhead instead.

Frequency dependence: AQFP is *adiabatic* — dissipation per operation
scales roughly linearly with clock rate (slower switching is more
adiabatic), so TOPS/W improves as the clock drops. CMOS dynamic energy
per op is frequency-independent to first order, but leakage makes very
low clocks less efficient; we model a mild leakage penalty. These two
laws reproduce the shape of Fig. 12: a flat-ish CMOS band, a Cryo-CMOS
band 1.5x above it (an order below once cooling is charged), and the
AQFP curve 4+ orders higher, rising toward low frequency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.hardware.cost import COOLING_OVERHEAD_FACTOR

#: Cryo-CMOS (77 K) efficiency gain over 300 K CMOS (paper Sec. 6.5).
CRYO_EFFICIENCY_GAIN_77K = 1.5
#: Cooling watts per device watt at 77 K (paper Sec. 6.5).
CRYO_COOLING_OVERHEAD_77K = 9.65

#: Reference clock of our AQFP design.
AQFP_REFERENCE_FREQUENCY_HZ = 5e9
#: Fraction of CMOS power that is leakage at the design frequency; sets
#: how quickly CMOS efficiency degrades when clocked down.
CMOS_LEAKAGE_FRACTION = 0.1


def cryo_cmos_efficiency(
    room_temperature_tops_per_w: float, with_cooling: bool = False
) -> float:
    """77 K Cryo-CMOS efficiency from a 300 K baseline."""
    if room_temperature_tops_per_w <= 0:
        raise ValueError("baseline efficiency must be positive")
    eff = room_temperature_tops_per_w * CRYO_EFFICIENCY_GAIN_77K
    if with_cooling:
        eff /= 1.0 + CRYO_COOLING_OVERHEAD_77K
    return eff


def aqfp_efficiency_vs_frequency(
    tops_per_w_at_reference: float,
    frequency_hz: float,
    with_cooling: bool = False,
) -> float:
    """AQFP TOPS/W at an arbitrary clock (energy/op scales with f)."""
    if tops_per_w_at_reference <= 0 or frequency_hz <= 0:
        raise ValueError("efficiency and frequency must be positive")
    eff = tops_per_w_at_reference * (AQFP_REFERENCE_FREQUENCY_HZ / frequency_hz)
    if with_cooling:
        eff /= COOLING_OVERHEAD_FACTOR
    return eff


def cmos_efficiency_vs_frequency(
    tops_per_w_at_design: float,
    frequency_hz: float,
    design_frequency_hz: float,
) -> float:
    """CMOS TOPS/W vs clock with a leakage penalty at low frequency.

    ``eff(f) = eff0 * (1 + leak) / (1 + leak * f0 / f)`` — flat near and
    above the design point, degrading as leakage dominates at low f.
    """
    if min(tops_per_w_at_design, frequency_hz, design_frequency_hz) <= 0:
        raise ValueError("all arguments must be positive")
    leak = CMOS_LEAKAGE_FRACTION
    return (
        tops_per_w_at_design
        * (1.0 + leak)
        / (1.0 + leak * design_frequency_hz / frequency_hz)
    )


def frequency_sweep(
    aqfp_tops_per_w_at_5ghz: float,
    frequencies_ghz: Iterable[float] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0),
    cmos_points: Dict[str, Dict] = None,
) -> List[Dict[str, float]]:
    """Build the Fig. 12 dataset.

    ``cmos_points`` maps a label to ``{"tops_per_w": ..., "frequency_hz":
    ...}`` design points (defaults to CMOS-BNN and HERMES from the
    paper). Returns one row per frequency with every series.
    """
    if cmos_points is None:
        cmos_points = {
            "CMOS-BNN": {"tops_per_w": 617.0, "frequency_hz": 622e6},
            "HERMES": {"tops_per_w": 10.5, "frequency_hz": 1e9},
        }
    rows: List[Dict[str, float]] = []
    for f_ghz in frequencies_ghz:
        f_hz = f_ghz * 1e9
        row: Dict[str, float] = {"frequency_ghz": f_ghz}
        row["aqfp"] = aqfp_efficiency_vs_frequency(aqfp_tops_per_w_at_5ghz, f_hz)
        row["aqfp_cooled"] = aqfp_efficiency_vs_frequency(
            aqfp_tops_per_w_at_5ghz, f_hz, with_cooling=True
        )
        for label, spec in cmos_points.items():
            base = cmos_efficiency_vs_frequency(
                spec["tops_per_w"], f_hz, spec["frequency_hz"]
            )
            row[f"cmos_{label}"] = base
            row[f"cryo_{label}"] = cryo_cmos_efficiency(base)
            row[f"cryo_{label}_cooled"] = cryo_cmos_efficiency(base, with_cooling=True)
        rows.append(row)
    return rows
