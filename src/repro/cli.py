"""Command-line interface: regenerate the paper artifacts.

The pretty-printing subcommands cover the cheap artifacts::

    python -m repro.cli table1            # crossbar cost table
    python -m repro.cli fig4              # buffer probability curve
    python -m repro.cli fig5              # attenuation fit
    python -m repro.cli clocking          # Sec. 4.4 JJ reductions
    python -m repro.cli coopt             # AME grid + optimum
    python -m repro.cli fig12 --tops 9e5  # efficiency vs frequency

The generic ``run`` subcommand reaches *every* registered experiment
(``repro.api.experiments``), including the training-based ones, and
emits JSON::

    python -m repro.cli run --list                 # what exists
    python -m repro.cli run fig5                   # default arguments
    python -m repro.cli run table3 -k epochs=4 -k n_eval=100
    python -m repro.cli run fig10 -o fig10.json
    python -m repro.cli run fig10 --workers 4      # stochastic inference
                                                   # on a 4-process pool

``backends`` lists the registered inference execution backends (and
their aliases). ``plan-inspect`` compiles a request into its
:class:`~repro.runtime.plan.ExecutionPlan` task DAG and prints the
per-stage tasks, window-cost estimates, and the adaptive scheduler's
cost-model decision (chosen mode + predicted wall time per candidate)::

    python -m repro.cli plan-inspect --batch 256 --workers 4
    python -m repro.cli plan-inspect --batch 8 --backend stochastic-packed
    python -m repro.cli plan-inspect --coefficients coeffs.json --tasks

``serve-bench`` trains a small reference model and
measures concurrent serving throughput across the serving front-ends:
the thread-pool ``Serving`` baseline, the coalescing ``ServingDaemon``,
each over both the in-process and process-parallel execution paths
(``--json`` dumps the report rows machine-readably; every row carries
the same fully-populated key set)::

    python -m repro.cli serve-bench --workers 1 2 4 --requests 8
    python -m repro.cli serve-bench --json serve_bench.json

With ``--connect`` the benchmark goes over the wire instead: ``N``
concurrent clients drive the asyncio :class:`~repro.net.server.NetworkServer`
through the framed protocol, sweeping offered load (closed-loop
saturation probe, then paced fractions), recording p50/p95/p99 latency
and saturation throughput into ``BENCH_serving.json`` — and verifying
every response bit-identical against in-process serial ``Session`` runs
with the same explicit seeds::

    python -m repro.cli serve-bench --clients 8 --connect        # in-process server
    python -m repro.cli serve-bench --clients 8 --connect host:7433

``serve`` runs that network front-end in the foreground::

    python -m repro.cli serve --port 7433 --rate-limit 200
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import List, Optional


def _to_jsonable(obj):
    """Best-effort conversion of experiment results to JSON types."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def _parse_override(pair: str):
    """``key=value`` with python-literal values (falls back to str)."""
    if "=" not in pair:
        raise argparse.ArgumentTypeError(
            f"override {pair!r} must look like key=value"
        )
    key, raw = pair.split("=", 1)
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _cmd_run(args) -> int:
    from repro.api.experiments import (
        available_experiments,
        get_experiment,
        run_experiment,
    )

    if args.list or args.experiment is None:
        width = max(len(n) for n in available_experiments())
        for name in available_experiments():
            spec = get_experiment(name)
            print(f"{name:<{width}}  {spec.summary}")
        return 0

    overrides = dict(args.overrides or [])
    if args.workers:
        # Route the experiment's default-dispatch stochastic inference
        # through a process pool: every Engine request for the
        # "stochastic" backend resolves to this instance instead.
        from repro.api.backends import set_dispatch_override
        from repro.api.parallel import StochasticParallelBackend

        override = StochasticParallelBackend(workers=args.workers)
        previous = set_dispatch_override(override)
        try:
            result = run_experiment(args.experiment, **overrides)
        finally:
            set_dispatch_override(previous)
            override.close()
    else:
        result = run_experiment(args.experiment, **overrides)
    payload = json.dumps(_to_jsonable(result), indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


def _cmd_backends(args) -> int:
    from repro.api import available_backends, backend_aliases, get_backend

    aliases = backend_aliases()
    names = available_backends() + sorted(aliases)
    width = max(len(n) for n in names)
    for name in available_backends():
        print(f"{name:<{width}}  {getattr(get_backend(name), 'summary', '')}")
    for alias in sorted(aliases):
        print(f"{alias:<{width}}  alias of {aliases[alias]!r}")
    return 0


def _bench_hardware(args):
    from repro.hardware.config import HardwareConfig

    return HardwareConfig(
        crossbar_size=args.crossbar_size,
        gray_zone_ua=10.0,
        window_bits=args.window_bits,
    )


def _bench_engine(args):
    """Train the shared reference model and wrap it in an Engine.

    Also returns the trained model itself so multi-replica topologies
    can compile *additional* engines from it: ``Engine.from_model``
    compiles with a fixed seed, so every engine built from the same
    model carries identical weights and compile-time state — any
    replica's seeded response is bit-identical to any other's.
    """
    from repro.api import Engine
    from repro.experiments.common import trained_mlp

    print(f"training reference MLP (epochs={args.epochs}) ...")
    model, _, test, software_accuracy = trained_mlp(
        _bench_hardware(args), epochs=args.epochs
    )
    engine = Engine.from_model(model)
    print(f"software accuracy: {software_accuracy:.3f}; engine: {engine}")
    return engine, test, software_accuracy, model


def _request_pool(args, test):
    """Deterministic pool of (images, labels) request batches."""
    import numpy as np

    rng = np.random.default_rng(args.seed)
    requests, labels = [], []
    for _ in range(args.requests):
        idx = rng.integers(0, len(test.images), size=args.batch)
        requests.append(test.images[idx])
        labels.append(test.labels[idx])
    return requests, labels


def _serving_row(mode: str, report, stats=None) -> dict:
    """One fully-populated ``serve-bench --json`` row.

    Every row carries the same key set regardless of mode — counters a
    mode cannot produce (waves for the thread-pool front-end, retries
    for a clean run) are zeros, never missing keys — so downstream
    tooling can diff rows without schema sniffing.
    """
    stats = stats or {}
    return {
        "mode": mode,
        "backend": str(report.backend),
        "workers": int(report.workers),
        "n_requests": int(report.n_requests),
        "total_images": int(report.total_images),
        "waves": int(report.waves or 0),
        "wall_time_s": float(report.wall_time_s),
        "requests_per_s": float(report.requests_per_s),
        "images_per_s": float(report.images_per_s),
        "latency_mean_ms": float(report.mean_latency_s * 1e3),
        "latency_p50_ms": float(report.latency_percentile(50) * 1e3),
        "latency_p95_ms": float(report.latency_percentile(95) * 1e3),
        "latency_p99_ms": float(report.latency_percentile(99) * 1e3),
        "accuracy": float(report.accuracy or 0.0),
        "retries": int(stats.get("retries", 0)),
        "recoveries": int(stats.get("recoveries", 0)),
        "rejected": int(stats.get("rejected", 0)),
        "consumer_restarts": int(stats.get("consumer_restarts", 0)),
    }


def _cmd_serve_bench(args) -> int:
    if args.connect is not None:
        return _serve_bench_network(args)

    from repro.api import Serving, ServingDaemon
    from repro.api.parallel import StochasticParallelBackend

    engine, test, software_accuracy, _ = _bench_engine(args)
    requests, labels = _request_pool(args, test)

    window_s = args.window_ms / 1e3
    rows = []  # (mode, ServingReport, daemon-stats dict or None)
    with Serving(engine, workers=1, backend="stochastic", seed=args.seed) as front:
        rows.append(("serving-serial", front.serve(requests, labels=labels), None))
    # Coalescing daemon on the same in-process backend: requests merge
    # into waves, bit-identical to the per-request sessions above.
    with ServingDaemon(
        engine,
        backend="stochastic",
        seed=args.seed,
        seed_per_request=True,
        coalesce_window_s=window_s,
    ) as daemon:
        report = daemon.serve(requests, labels=labels)
        rows.append(("daemon-coalesced", report, daemon.stats.as_dict()))
    for workers in args.workers:
        with StochasticParallelBackend(workers=workers) as backend:
            with Serving(
                engine, workers=workers, backend=backend, seed=args.seed
            ) as front:
                rows.append(
                    ("serving-parallel", front.serve(requests, labels=labels), None)
                )
            with ServingDaemon(
                engine,
                backend=backend,
                seed=args.seed,
                seed_per_request=True,
                coalesce_window_s=window_s,
            ) as daemon:
                report = daemon.serve(requests, labels=labels)
                rows.append(("daemon-parallel", report, daemon.stats.as_dict()))

    print(
        f"\n{'mode':<17} {'backend':<21} {'workers':>7} {'wall(s)':>8} "
        f"{'req/s':>8} {'img/s':>9} {'latency(ms)':>12} {'waves':>6} "
        f"{'accuracy':>9}"
    )
    for mode, report, _ in rows:
        waves = "-" if report.waves is None else str(report.waves)
        print(
            f"{mode:<17} {report.backend:<21} {report.workers:>7d} "
            f"{report.wall_time_s:>8.3f} {report.requests_per_s:>8.2f} "
            f"{report.images_per_s:>9.1f} {report.mean_latency_s * 1e3:>12.1f} "
            f"{waves:>6} {report.accuracy:>9.3f}"
        )
    print("\ndaemon fault-tolerance counters:")
    for mode, _, stats in rows:
        if stats is None:
            continue
        print(
            f"  {mode:<17} retries={stats['retries']} "
            f"recoveries={stats['recoveries']} rejected={stats['rejected']} "
            f"consumer_restarts={stats['consumer_restarts']}"
        )
    if args.json:
        payload = {
            "config": {
                "requests": args.requests,
                "batch": args.batch,
                "epochs": args.epochs,
                "crossbar_size": args.crossbar_size,
                "window_bits": args.window_bits,
                "coalesce_window_ms": args.window_ms,
                "seed": args.seed,
                "software_accuracy": software_accuracy,
            },
            "rows": [
                _serving_row(mode, report, stats) for mode, report, stats in rows
            ],
        }
        with open(args.json, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _serve_bench_network(args) -> int:
    """``serve-bench --clients N --connect``: drive the asyncio network
    front-end over the framed wire protocol, sweep offered load, and
    verify every response — streamed ones reassembled from PARTIAL
    slices — bit-identical to serial ``Session`` runs.

    ``--replicas`` takes one or more counts (``--replicas 1 2``): each
    count gets its own in-process server run — a single daemon for 1, a
    :class:`~repro.net.router.DaemonRouter` over that many replica
    daemons otherwise — so one report compares topologies on the same
    machine, same model, same request pool.
    """
    import numpy as np

    from repro.api import Engine, ServingDaemon, Session
    from repro.net import DaemonRouter, ServerThread, sweep_load
    from repro.runtime.env import env_int

    engine, test, software_accuracy, model = _bench_engine(args)
    pool, labels_pool = _request_pool(args, test)

    in_process = args.connect == "auto"
    verify = in_process and not args.no_verify
    seed_base = first_seed_base = 10_000 + args.seed
    stream_every = max(0, args.stream_every)
    points_per_run = 1 + len(args.load_fractions)
    daemon_kwargs = dict(
        backend="stochastic",
        coalesce_window_s=args.window_ms / 1e3,
        max_queue=args.max_queue,
    )

    runs = []  # one entry per topology: replica count, points, stats
    if not in_process:
        host, sep, port_text = args.connect.rpartition(":")
        if not sep or not port_text.isdigit():
            print(
                f"--connect must be HOST:PORT or bare (in-process server), "
                f"got {args.connect!r}",
                file=sys.stderr,
            )
            return 2
        port = int(port_text)
        print(
            f"external server {host}:{port}: bit-identity verification "
            f"is skipped (the remote model is not inspectable)"
        )
        points = sweep_load(
            host,
            port,
            clients=args.clients,
            requests_per_point=args.requests,
            pool=pool,
            labels_pool=labels_pool,
            seed_base=seed_base,
            load_fractions=tuple(args.load_fractions),
            keep_logits=verify,
            stream_every=stream_every,
        )
        runs.append(
            {
                "replicas": 0,  # unknown: remote topology
                "points": points,
                "seed_base": seed_base,
                "server_stats": {},
                "daemon_stats": {},
                "router_stats": None,
            }
        )
    else:
        replica_counts = list(
            args.replicas or [env_int("REPRO_ROUTER_REPLICAS", 1, minimum=1)]
        )
        for n_replicas in replica_counts:
            if n_replicas < 1:
                print(f"--replicas must be >= 1, got {n_replicas}", file=sys.stderr)
                return 2
            router = None
            if n_replicas == 1:
                target = ServingDaemon(
                    engine, name="replica-0", seed=args.seed, **daemon_kwargs
                )
            else:
                # Replica 0 reuses the reference engine; the rest are
                # compiled fresh from the same trained model (identical
                # weights + compile seed => identical seeded responses).
                engines = [engine] + [
                    Engine.from_model(model) for _ in range(n_replicas - 1)
                ]
                router = DaemonRouter.build(engines, seed=args.seed, **daemon_kwargs)
                target = router
            server_thread = ServerThread(
                target,
                max_inflight_per_client=args.quota,
                rate_limit_rps=args.rate_limit,
            )
            server_stats = daemon_stats = {}
            router_stats = None
            try:
                host, port = server_thread.start()
                print(
                    f"\nin-process network server on {host}:{port} "
                    f"({n_replicas} replica{'s' if n_replicas != 1 else ''})"
                )
                points = sweep_load(
                    host,
                    port,
                    clients=args.clients,
                    requests_per_point=args.requests,
                    pool=pool,
                    labels_pool=labels_pool,
                    seed_base=seed_base,
                    load_fractions=tuple(args.load_fractions),
                    keep_logits=verify,
                    stream_every=stream_every,
                )
            finally:
                if server_thread.server is not None:
                    server_stats = server_thread.server.stats.as_dict()
                server_thread.close()
                target.close(drain=True)
                if router is not None:
                    daemon_stats = router.aggregate_daemon_stats().as_dict()
                    router_stats = router.stats.as_dict()
                else:
                    daemon_stats = target.stats.as_dict()
            runs.append(
                {
                    "replicas": n_replicas,
                    "points": points,
                    "seed_base": seed_base,
                    "server_stats": server_stats,
                    "daemon_stats": daemon_stats,
                    "router_stats": router_stats,
                }
            )
            seed_base += points_per_run * args.requests

    for run in runs:
        tag = (
            "remote"
            if run["replicas"] == 0
            else f"{run['replicas']} replica{'s' if run['replicas'] != 1 else ''}"
        )
        print(
            f"\n[{tag}] {'point':<14} {'offered(r/s)':>12} {'done':>5} "
            f"{'shed':>5} {'fail':>5} {'ach(r/s)':>9} {'img/s':>9} "
            f"{'p50(ms)':>8} {'p95(ms)':>8} {'p99(ms)':>8}"
        )
        for point, _ in run["points"]:
            row = point.as_row()
            offered = (
                "closed" if not row["offered_rps"] else f"{row['offered_rps']:.1f}"
            )
            print(
                f"{'':>{len(tag) + 3}}{row['label']:<14} {offered:>12} "
                f"{row['completed']:>5} {row['rejected']:>5} {row['failed']:>5} "
                f"{row['achieved_rps']:>9.2f} {row['images_per_s']:>9.1f} "
                f"{row['latency_p50_ms']:>8.1f} {row['latency_p95_ms']:>8.1f} "
                f"{row['latency_p99_ms']:>8.1f}"
            )
        saturation = run["points"][0][0]
        print(
            f"  saturation[{tag}]: {saturation.achieved_rps:.2f} req/s "
            f"({saturation.images_per_s:.1f} img/s) with {args.clients} clients"
        )
    if len(runs) > 1:
        base = runs[0]["points"][0][0].achieved_rps
        for run in runs[1:]:
            rate = run["points"][0][0].achieved_rps
            if base > 0:
                print(
                    f"scaling: {run['replicas']} replicas at {rate:.2f} req/s "
                    f"= {rate / base:.2f}x the {runs[0]['replicas']}-replica "
                    f"saturation ({base:.2f} req/s)"
                )

    verification = None
    exit_code = 0
    if verify:
        checked = matched = streamed_checked = 0
        for run in runs:
            for _, records in run["points"]:
                for record in records:
                    if not record.ok or record.logits is None:
                        continue
                    want = Session(engine, seed=record.seed).run(
                        pool[record.pool_index]
                    )
                    checked += 1
                    if record.streamed:
                        streamed_checked += 1
                    if np.array_equal(record.logits, want.logits):
                        matched += 1
        verification = {
            "checked": checked,
            "matched": matched,
            "streamed_checked": streamed_checked,
            "bit_identical": bool(checked) and matched == checked,
        }
        print(
            f"bit-identity: {matched}/{checked} wire responses "
            f"({streamed_checked} reassembled from streams) match serial "
            f"in-process Session runs with the same seeds"
        )
        if matched != checked:
            print("BIT-IDENTITY VIOLATION", file=sys.stderr)
            exit_code = 1

    rows = []
    for run in runs:
        for point, _ in run["points"]:
            row = point.as_row()
            row["replicas"] = run["replicas"]
            rows.append(row)
    last = runs[-1]
    out_path = args.json or "BENCH_serving.json"
    payload = {
        "config": {
            "clients": args.clients,
            "connect": args.connect,
            "replicas": [run["replicas"] for run in runs],
            "stream_every": stream_every,
            "requests_per_point": args.requests,
            "batch": args.batch,
            "epochs": args.epochs,
            "crossbar_size": args.crossbar_size,
            "window_bits": args.window_bits,
            "coalesce_window_ms": args.window_ms,
            "load_fractions": list(args.load_fractions),
            "seed": args.seed,
            # The base used by the FIRST topology run (each later run
            # starts at the previous base + points_per_run * requests;
            # the per-run base is recorded in each runs[] entry).
            "seed_base": first_seed_base,
            "software_accuracy": software_accuracy,
        },
        "rows": rows,
        "verification": verification,
        "server_stats": _to_jsonable(last["server_stats"]),
        "daemon_stats": _to_jsonable(last["daemon_stats"]),
        "runs": [
            {
                "replicas": run["replicas"],
                "seed_base": run["seed_base"],
                "server_stats": _to_jsonable(run["server_stats"]),
                "daemon_stats": _to_jsonable(run["daemon_stats"]),
                "router_stats": _to_jsonable(run["router_stats"]),
            }
            for run in runs
        ],
    }
    with open(out_path, "w") as fh:
        fh.write(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return exit_code


def _cmd_serve(args) -> int:
    """Run the asyncio network serving front-end in the foreground.

    ``--replicas N`` (default from ``REPRO_ROUTER_REPLICAS``, 1) serves
    through a :class:`~repro.net.router.DaemonRouter` over N replica
    daemons instead of a single daemon."""
    import asyncio

    from repro.api import Engine, ServingDaemon
    from repro.api.parallel import StochasticParallelBackend
    from repro.net import DaemonRouter, NetworkServer
    from repro.runtime.env import env_int

    engine, _, _, model = _bench_engine(args)
    backend = (
        "stochastic"
        if args.serve_workers <= 1
        else StochasticParallelBackend(workers=args.serve_workers)
    )
    n_replicas = (
        args.replicas
        if args.replicas is not None
        else env_int("REPRO_ROUTER_REPLICAS", 1, minimum=1)
    )
    if n_replicas < 1:
        print(f"--replicas must be >= 1, got {n_replicas}", file=sys.stderr)
        return 2
    daemon_kwargs = dict(
        backend=backend,
        coalesce_window_s=args.window_ms / 1e3,
        max_queue=args.max_queue,
    )
    if n_replicas == 1:
        daemon = ServingDaemon(
            engine, name="replica-0", seed=args.seed, **daemon_kwargs
        )
    else:
        engines = [engine] + [
            Engine.from_model(model) for _ in range(n_replicas - 1)
        ]
        daemon = DaemonRouter.build(engines, seed=args.seed, **daemon_kwargs)
        print(f"routing over {n_replicas} replica daemons")

    async def _amain() -> None:
        server = NetworkServer(
            daemon,
            host=args.host,
            port=args.port,
            max_inflight_per_client=args.quota,
            rate_limit_rps=args.rate_limit,
        )
        await server.start()
        host, port = server.address
        print(f"serving on {host}:{port} (Ctrl-C to stop)")
        try:
            await server.serve_forever()
        finally:
            await server.aclose()
            stats = server.stats.as_dict()
            print(
                "server stats: "
                + " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
            )

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        print("\nshutting down ...")
    finally:
        try:
            daemon.close(drain=True)
        except KeyboardInterrupt:
            # Second Ctrl-C while draining: abandon queued requests
            # instead of dying with a traceback mid-join.
            print("forced shutdown, abandoning queued requests")
            daemon.close(drain=False)
        if not isinstance(backend, str):
            backend.close()
    return 0


def _cmd_plan_inspect(args) -> int:
    from repro.api import Engine
    from repro.api.backends import get_backend
    from repro.experiments.common import trained_mlp
    from repro.hardware.config import HardwareConfig
    from repro.runtime.costmodel import candidate_modes, load_cost_model

    hardware = HardwareConfig(
        crossbar_size=args.crossbar_size,
        gray_zone_ua=10.0,
        window_bits=args.window_bits,
    )
    print(f"training reference MLP (epochs={args.epochs}) ...")
    model, _, test, _ = trained_mlp(hardware, epochs=args.epochs)
    engine = Engine.from_model(model)
    session = engine.session(
        seed=args.seed, backend=args.backend, micro_batch=args.micro_batch
    )
    images = test.images[: args.batch]
    plan = session.preview_plan(images)
    cost_model = load_cost_model(args.coefficients)
    strategy = get_backend(args.backend)
    modes = candidate_modes(
        plan,
        backend_name=getattr(strategy, "name", None),
        deterministic=getattr(strategy, "deterministic", False),
    )
    choice = cost_model.choose(plan, workers=args.workers, modes=modes)

    print(
        f"\nplan: batch={plan.batch_size} shards={len(plan)} "
        f"tasks={len(plan.tasks)} total_cost={plan.total_cost:.0f} windows "
        f"critical_path={plan.critical_path_cost():.0f} windows"
    )
    print(
        f"cost model: {cost_model.coefficients.source} "
        f"(break-even {cost_model.coefficients.break_even_windows:.0f} windows); "
        f"workers={args.workers}"
    )
    print(f"\n{'mode':<16} {'predicted(ms)':>14}  candidate")
    for mode in ("serial", "shard-parallel", "tile-parallel"):
        if mode in choice.predictions:
            marker = "<- chosen" if mode == choice.mode else ""
            print(
                f"{mode:<16} {choice.predictions[mode] * 1e3:>14.3f}  {marker}"
            )
        else:
            print(f"{mode:<16} {'-':>14}  (unavailable)")
    print(f"decision: {choice.mode} — {choice.reason}")

    # Per-stage predicted_s is the stage's aggregate work (summed over
    # shards/workers — what the telemetry will measure), while the mode
    # table above compares wall-clock predictions.
    print(
        f"\n{'stage':>5} {'kind':<7} {'tiles':>5} {'windows':>10} "
        f"{'mode':<15} {'work(ms)':>14}"
    )
    for decision in choice.stages:
        print(
            f"{decision.stage:>5} {decision.kind:<7} {decision.tile_width:>5} "
            f"{decision.cost_windows:>10.0f} {decision.mode:<15} "
            f"{decision.predicted_s * 1e3:>14.3f}"
        )
    if args.tasks:
        print(f"\n{'id':>4} {'shard':>5} {'stage':>5} {'kind':<7} "
              f"{'tile':>4} {'cost':>10} deps")
        for task in plan.tasks:
            tile = "-" if task.tile is None else str(task.tile)
            deps = ",".join(str(d) for d in task.deps) or "-"
            print(
                f"{task.id:>4} {task.shard:>5} {task.stage:>5} "
                f"{task.kind:<7} {tile:>4} {task.cost:>10.0f} {deps}"
            )
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.table1 import crossbar_hardware_table

    print(f"{'area':>9} {'latency(ps)':>12} {'#JJs':>9} {'energy(aJ)':>11}")
    for row in crossbar_hardware_table(args.sizes):
        print(
            f"{row['crossbar_area']:>9} {row['latency_ps']:>12.0f} "
            f"{row['jj_count']:>9d} {row['energy_aj']:>11.2f}"
        )
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments.fig4 import gray_zone_response

    result = gray_zone_response(gray_zone_ua=args.gray_zone)
    print(f"{'Iin(uA)':>8} {'P(1)':>8} {'sampled':>8}")
    for point in result["points"][:: args.stride]:
        print(
            f"{point['input_ua']:>8.2f} {point['probability']:>8.4f} "
            f"{point['sampled']:>8.4f}"
        )
    print(f"boundary: +-{result['boundary_ua']:.2f} uA")
    return 0


def _cmd_fig5(args) -> int:
    from repro.experiments.fig5 import attenuation_curve

    result = attenuation_curve()
    print(f"{'Cs':>5} {'measured(uA)':>13} {'fitted(uA)':>11}")
    for point in result["points"]:
        print(
            f"{point['crossbar_size']:>5d} {point['measured_ua']:>13.3f} "
            f"{point['fitted_ua']:>11.3f}"
        )
    print(
        f"I1(Cs) = {result['amplitude_ua']:.2f} * Cs^-{result['exponent']:.3f} "
        f"(max err {result['max_relative_fit_error'] * 100:.1f}%)"
    )
    return 0


def _cmd_clocking(args) -> int:
    from repro.experiments.clocking import clocking_optimization_report

    report = clocking_optimization_report()
    print(f"{'circuit':<15} {'4-ph JJ':>8} {'8-ph':>7} {'16-ph':>7}")
    for name, circuit in report["circuits"].items():
        print(
            f"{name:<15} {circuit[4]['total_jj']:>8.0f} "
            f"{circuit[8]['reduction_vs_4phase'] * 100:>6.1f}% "
            f"{circuit[16]['reduction_vs_4phase'] * 100:>6.1f}%"
        )
    print(f"BCM 3-phase saving: {report['memory_reduction'] * 100:.1f}%")
    return 0


def _cmd_coopt(args) -> int:
    from repro.core.coopt import optimize_hardware_config

    result = optimize_hardware_config(
        gray_zones_ua=args.gray_zones,
        crossbar_sizes=args.sizes,
        max_energy_per_cycle_aj=args.energy_budget,
    )
    print(f"{'dIin(uA)':>9} {'Cs':>5} {'AME':>10}")
    for cell in result.grid:
        print(
            f"{cell['gray_zone_ua']:>9.1f} {cell['crossbar_size']:>5d} "
            f"{cell['ame']:>10.4f}"
        )
    best = result.best_config
    print(
        f"optimum: Cs={best.crossbar_size}, dIin={best.gray_zone_ua} uA "
        f"(AME={result.best_ame:.4f})"
    )
    return 0


def _cmd_fig12(args) -> int:
    from repro.baselines.cryo import frequency_sweep

    rows = frequency_sweep(args.tops)
    print(f"{'GHz':>6} {'AQFP':>12} {'AQFP+cool':>12}")
    for row in rows:
        print(
            f"{row['frequency_ghz']:>6.1f} {row['aqfp']:>12.3g} "
            f"{row['aqfp_cooled']:>12.3g}"
        )
    return 0


def _cmd_lint_static(args) -> int:
    import json as json_mod
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_BASELINE,
        DEFAULT_PATHS,
        Baseline,
        available_rules,
        get_rule,
        run_analysis,
    )

    root = Path(args.root).resolve()
    if args.list_rules:
        for name in available_rules():
            print(f"{name:20s} {get_rule(name).summary}")
        return 0

    if args.check_env_docs:
        from repro.runtime.env import catalog_markdown

        target = root / "docs" / "ENVIRONMENT.md"
        want = catalog_markdown()
        have = target.read_text(encoding="utf-8") if target.exists() else ""
        if have != want:
            print(
                f"lint-static: {target} has drifted from "
                f"repro.runtime.env.ENV_CATALOG — regenerate it with "
                f"`python -m repro.cli lint-static --write-env-docs`",
                file=sys.stderr,
            )
            return 1
        print(f"lint-static: {target} matches ENV_CATALOG")
        return 0

    if args.write_env_docs:
        from repro.runtime.env import catalog_markdown

        target = root / "docs" / "ENVIRONMENT.md"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(catalog_markdown(), encoding="utf-8")
        print(f"wrote {target}")

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    report = run_analysis(
        root,
        paths=tuple(args.paths) if args.paths else DEFAULT_PATHS,
        rules=args.rules or None,
        baseline_path=baseline_path,
    )

    if args.update_baseline:
        updated = Baseline.from_findings(report.new + report.baselined)
        updated.save(baseline_path)
        print(
            f"lint-static: baseline rewritten with {len(updated)} entr(ies) "
            f"at {baseline_path}"
        )
        return 0

    if args.json:
        Path(args.json).write_text(
            json_mod.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
    print(report.render())
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SupeRBNN reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="crossbar cost table (Table 1)")
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[4, 8, 16, 18, 36, 72, 144]
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig4", help="buffer probability curve (Fig. 4)")
    p.add_argument("--gray-zone", type=float, default=2.4, dest="gray_zone")
    p.add_argument("--stride", type=int, default=4)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("fig5", help="attenuation fit (Fig. 5)")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("clocking", help="n-phase clocking reductions (Sec. 4.4)")
    p.set_defaults(func=_cmd_clocking)

    p = sub.add_parser("coopt", help="AME grid search (Sec. 5.4)")
    p.add_argument(
        "--gray-zones",
        type=float,
        nargs="+",
        default=[1.0, 5.0, 20.0, 100.0],
        dest="gray_zones",
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 36, 72])
    p.add_argument(
        "--energy-budget", type=float, default=None, dest="energy_budget"
    )
    p.set_defaults(func=_cmd_coopt)

    p = sub.add_parser("fig12", help="efficiency vs frequency (Fig. 12)")
    p.add_argument("--tops", type=float, default=9e5, help="TOPS/W at 5 GHz")
    p.set_defaults(func=_cmd_fig12)

    p = sub.add_parser(
        "run", help="run any registered experiment by name (JSON output)"
    )
    p.add_argument(
        "experiment", nargs="?", help="experiment name (omit with --list)"
    )
    p.add_argument(
        "--list", action="store_true", help="list registered experiments"
    )
    p.add_argument(
        "-k",
        "--set",
        dest="overrides",
        action="append",
        type=_parse_override,
        metavar="KEY=VALUE",
        help="keyword override for the experiment (repeatable)",
    )
    p.add_argument(
        "-o", "--output", default=None, help="write JSON to this file"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run the experiment's stochastic inference on an N-process "
            "pool (the 'stochastic-parallel' backend)"
        ),
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "backends", help="list inference execution backends (and aliases)"
    )
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser(
        "plan-inspect",
        help="print a request's ExecutionPlan tasks, costs, and the "
        "adaptive scheduler's per-stage decision",
    )
    p.add_argument("--batch", type=int, default=256, help="images in the request")
    p.add_argument(
        "--micro-batch", type=int, default=32, dest="micro_batch",
        help="shard size the session plans with",
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="fan-out width the cost model assumes",
    )
    p.add_argument(
        "--backend", default="stochastic",
        help="execution backend the plan is chosen for",
    )
    p.add_argument(
        "--coefficients", default=None, metavar="PATH",
        help="cost-coefficients JSON (default: REPRO_COST_COEFFICIENTS "
        "or built-in defaults)",
    )
    p.add_argument(
        "--tasks", action="store_true",
        help="also print the full per-task DAG listing",
    )
    p.add_argument("--epochs", type=int, default=2, help="reference-model training epochs")
    p.add_argument("--crossbar-size", type=int, default=16, dest="crossbar_size")
    p.add_argument("--window-bits", type=int, default=8, dest="window_bits")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_plan_inspect)

    p = sub.add_parser(
        "serve-bench",
        help="concurrent serving throughput: serial vs process-parallel",
    )
    p.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 4],
        metavar="N",
        help="parallel worker counts to benchmark (serial baseline always runs)",
    )
    p.add_argument("--requests", type=int, default=8, help="requests per batch")
    p.add_argument("--batch", type=int, default=64, help="images per request")
    p.add_argument("--epochs", type=int, default=8, help="reference-model training epochs")
    p.add_argument("--crossbar-size", type=int, default=16, dest="crossbar_size")
    p.add_argument("--window-bits", type=int, default=8, dest="window_bits")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--window-ms",
        type=float,
        default=10.0,
        dest="window_ms",
        help="daemon batch-coalescing window (milliseconds)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="dump the report rows to PATH as JSON (network mode "
        "defaults to BENCH_serving.json)",
    )
    p.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent client connections in network mode",
    )
    p.add_argument(
        "--connect",
        nargs="?",
        const="auto",
        default=None,
        metavar="HOST:PORT",
        help="benchmark over the network: HOST:PORT targets a running "
        "'repro serve'; bare --connect spawns an in-process server and "
        "verifies every response bit-identical to serial Session runs",
    )
    p.add_argument(
        "--load-fractions",
        type=float,
        nargs="+",
        default=[0.5, 0.9],
        dest="load_fractions",
        metavar="F",
        help="paced sweep points as fractions of measured saturation",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        dest="no_verify",
        help="skip the per-response bit-identity check (network mode)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="replica counts to benchmark in network mode (e.g. "
        "'--replicas 1 2' compares a single daemon against a 2-replica "
        "router in one report; default: REPRO_ROUTER_REPLICAS or 1)",
    )
    p.add_argument(
        "--stream-every",
        type=int,
        default=4,
        dest="stream_every",
        metavar="K",
        help="request every K-th network request as a streamed (PARTIAL) "
        "response, reassembled client-side and bit-verified (0 = never)",
    )
    _add_server_policy_args(p)
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser(
        "serve",
        help="run the asyncio network serving front-end in the foreground",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7433, help="0 = ephemeral")
    p.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        dest="serve_workers",
        metavar="N",
        help="execute waves on an N-process pool (1 = in-process)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="serve through a router over N replica daemons "
        "(default: REPRO_ROUTER_REPLICAS or 1)",
    )
    p.add_argument("--epochs", type=int, default=8, help="reference-model training epochs")
    p.add_argument("--crossbar-size", type=int, default=16, dest="crossbar_size")
    p.add_argument("--window-bits", type=int, default=8, dest="window_bits")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--window-ms",
        type=float,
        default=10.0,
        dest="window_ms",
        help="daemon batch-coalescing window (milliseconds)",
    )
    _add_server_policy_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "lint-static",
        help="run the static contract checker (repro.analysis)",
    )
    p.add_argument(
        "--root",
        default=".",
        help="repository root to scan (default: current directory)",
    )
    p.add_argument(
        "--paths",
        nargs="+",
        default=None,
        metavar="DIR",
        help="root-relative paths to scan (default: src tests benchmarks examples)",
    )
    p.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE",
        help="run only these rules (default: all registered)",
    )
    p.add_argument(
        "--baseline",
        default="lint-static.baseline.json",
        help="baseline file (root-relative unless absolute)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full report as JSON to PATH",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        dest="update_baseline",
        help="rewrite the baseline to exactly the current finding set",
    )
    p.add_argument(
        "--write-env-docs",
        action="store_true",
        dest="write_env_docs",
        help="regenerate docs/ENVIRONMENT.md from the REPRO_* catalog",
    )
    p.add_argument(
        "--check-env-docs",
        action="store_true",
        dest="check_env_docs",
        help="exit 1 if docs/ENVIRONMENT.md has drifted from the "
        "REPRO_* catalog (the docs-sync CI mode; runs no other rules)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="list registered rules and exit",
    )
    p.set_defaults(func=_cmd_lint_static)

    return parser


def _add_server_policy_args(p) -> None:
    """Admission-policy flags shared by ``serve`` and network-mode
    ``serve-bench``."""
    p.add_argument(
        "--max-queue",
        type=int,
        default=256,
        dest="max_queue",
        help="daemon admission-queue depth",
    )
    p.add_argument(
        "--quota",
        type=int,
        default=32,
        help="per-connection in-flight request ceiling",
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        dest="rate_limit",
        metavar="RPS",
        help="per-connection token-bucket rate limit (requests/second)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
