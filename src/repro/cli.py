"""Command-line interface: regenerate the paper artifacts.

The pretty-printing subcommands cover the cheap artifacts::

    python -m repro.cli table1            # crossbar cost table
    python -m repro.cli fig4              # buffer probability curve
    python -m repro.cli fig5              # attenuation fit
    python -m repro.cli clocking          # Sec. 4.4 JJ reductions
    python -m repro.cli coopt             # AME grid + optimum
    python -m repro.cli fig12 --tops 9e5  # efficiency vs frequency

The generic ``run`` subcommand reaches *every* registered experiment
(``repro.api.experiments``), including the training-based ones, and
emits JSON::

    python -m repro.cli run --list                 # what exists
    python -m repro.cli run fig5                   # default arguments
    python -m repro.cli run table3 -k epochs=4 -k n_eval=100
    python -m repro.cli run fig10 -o fig10.json
    python -m repro.cli run fig10 --workers 4      # stochastic inference
                                                   # on a 4-process pool

``backends`` lists the registered inference execution backends (and
their aliases). ``plan-inspect`` compiles a request into its
:class:`~repro.runtime.plan.ExecutionPlan` task DAG and prints the
per-stage tasks, window-cost estimates, and the adaptive scheduler's
cost-model decision (chosen mode + predicted wall time per candidate)::

    python -m repro.cli plan-inspect --batch 256 --workers 4
    python -m repro.cli plan-inspect --batch 8 --backend stochastic-packed
    python -m repro.cli plan-inspect --coefficients coeffs.json --tasks

``serve-bench`` trains a small reference model and
measures concurrent serving throughput across the serving front-ends:
the thread-pool ``Serving`` baseline, the coalescing ``ServingDaemon``,
each over both the in-process and process-parallel execution paths
(``--json`` dumps the report rows machine-readably)::

    python -m repro.cli serve-bench --workers 1 2 4 --requests 8
    python -m repro.cli serve-bench --json serve_bench.json
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import List, Optional


def _to_jsonable(obj):
    """Best-effort conversion of experiment results to JSON types."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def _parse_override(pair: str):
    """``key=value`` with python-literal values (falls back to str)."""
    if "=" not in pair:
        raise argparse.ArgumentTypeError(
            f"override {pair!r} must look like key=value"
        )
    key, raw = pair.split("=", 1)
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _cmd_run(args) -> int:
    from repro.api.experiments import (
        available_experiments,
        get_experiment,
        run_experiment,
    )

    if args.list or args.experiment is None:
        width = max(len(n) for n in available_experiments())
        for name in available_experiments():
            spec = get_experiment(name)
            print(f"{name:<{width}}  {spec.summary}")
        return 0

    overrides = dict(args.overrides or [])
    if args.workers:
        # Route the experiment's default-dispatch stochastic inference
        # through a process pool: every Engine request for the
        # "stochastic" backend resolves to this instance instead.
        from repro.api.backends import set_dispatch_override
        from repro.api.parallel import StochasticParallelBackend

        override = StochasticParallelBackend(workers=args.workers)
        previous = set_dispatch_override(override)
        try:
            result = run_experiment(args.experiment, **overrides)
        finally:
            set_dispatch_override(previous)
            override.close()
    else:
        result = run_experiment(args.experiment, **overrides)
    payload = json.dumps(_to_jsonable(result), indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


def _cmd_backends(args) -> int:
    from repro.api import available_backends, backend_aliases, get_backend

    aliases = backend_aliases()
    names = available_backends() + sorted(aliases)
    width = max(len(n) for n in names)
    for name in available_backends():
        print(f"{name:<{width}}  {getattr(get_backend(name), 'summary', '')}")
    for alias in sorted(aliases):
        print(f"{alias:<{width}}  alias of {aliases[alias]!r}")
    return 0


def _cmd_serve_bench(args) -> int:
    import numpy as np

    from repro.api import Engine, Serving, ServingDaemon
    from repro.api.parallel import StochasticParallelBackend
    from repro.experiments.common import trained_mlp
    from repro.hardware.config import HardwareConfig

    hardware = HardwareConfig(
        crossbar_size=args.crossbar_size,
        gray_zone_ua=10.0,
        window_bits=args.window_bits,
    )
    print(f"training reference MLP (epochs={args.epochs}) ...")
    model, _, test, software_accuracy = trained_mlp(hardware, epochs=args.epochs)
    engine = Engine.from_model(model)
    print(f"software accuracy: {software_accuracy:.3f}; engine: {engine}")

    rng = np.random.default_rng(args.seed)
    requests, labels = [], []
    for _ in range(args.requests):
        idx = rng.integers(0, len(test.images), size=args.batch)
        requests.append(test.images[idx])
        labels.append(test.labels[idx])

    window_s = args.window_ms / 1e3
    rows = []  # (mode, ServingReport)
    daemon_stats = []  # (mode, DaemonStats dict) for the daemon modes
    with Serving(engine, workers=1, backend="stochastic", seed=args.seed) as front:
        rows.append(("serving-serial", front.serve(requests, labels=labels)))
    # Coalescing daemon on the same in-process backend: requests merge
    # into waves, bit-identical to the per-request sessions above.
    with ServingDaemon(
        engine,
        backend="stochastic",
        seed=args.seed,
        seed_per_request=True,
        coalesce_window_s=window_s,
    ) as daemon:
        rows.append(("daemon-coalesced", daemon.serve(requests, labels=labels)))
        daemon_stats.append(("daemon-coalesced", daemon.stats.as_dict()))
    for workers in args.workers:
        with StochasticParallelBackend(workers=workers) as backend:
            with Serving(
                engine, workers=workers, backend=backend, seed=args.seed
            ) as front:
                rows.append(("serving-parallel", front.serve(requests, labels=labels)))
            with ServingDaemon(
                engine,
                backend=backend,
                seed=args.seed,
                seed_per_request=True,
                coalesce_window_s=window_s,
            ) as daemon:
                rows.append(
                    ("daemon-parallel", daemon.serve(requests, labels=labels))
                )
                daemon_stats.append(("daemon-parallel", daemon.stats.as_dict()))

    print(
        f"\n{'mode':<17} {'backend':<21} {'workers':>7} {'wall(s)':>8} "
        f"{'req/s':>8} {'img/s':>9} {'latency(ms)':>12} {'waves':>6} "
        f"{'accuracy':>9}"
    )
    for mode, report in rows:
        waves = "-" if report.waves is None else str(report.waves)
        print(
            f"{mode:<17} {report.backend:<21} {report.workers:>7d} "
            f"{report.wall_time_s:>8.3f} {report.requests_per_s:>8.2f} "
            f"{report.images_per_s:>9.1f} {report.mean_latency_s * 1e3:>12.1f} "
            f"{waves:>6} {report.accuracy:>9.3f}"
        )
    print("\ndaemon fault-tolerance counters:")
    for mode, stats in daemon_stats:
        print(
            f"  {mode:<17} retries={stats['retries']} "
            f"recoveries={stats['recoveries']} rejected={stats['rejected']} "
            f"consumer_restarts={stats['consumer_restarts']}"
        )
    if args.json:
        payload = {
            "config": {
                "requests": args.requests,
                "batch": args.batch,
                "epochs": args.epochs,
                "crossbar_size": args.crossbar_size,
                "window_bits": args.window_bits,
                "coalesce_window_ms": args.window_ms,
                "seed": args.seed,
                "software_accuracy": software_accuracy,
            },
            "rows": [
                {"mode": mode, **_to_jsonable(report.summary())}
                for mode, report in rows
            ],
            "daemon_stats": [
                {"mode": mode, **_to_jsonable(stats)}
                for mode, stats in daemon_stats
            ],
        }
        with open(args.json, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_plan_inspect(args) -> int:
    from repro.api import Engine
    from repro.api.backends import get_backend
    from repro.experiments.common import trained_mlp
    from repro.hardware.config import HardwareConfig
    from repro.runtime.costmodel import candidate_modes, load_cost_model

    hardware = HardwareConfig(
        crossbar_size=args.crossbar_size,
        gray_zone_ua=10.0,
        window_bits=args.window_bits,
    )
    print(f"training reference MLP (epochs={args.epochs}) ...")
    model, _, test, _ = trained_mlp(hardware, epochs=args.epochs)
    engine = Engine.from_model(model)
    session = engine.session(
        seed=args.seed, backend=args.backend, micro_batch=args.micro_batch
    )
    images = test.images[: args.batch]
    plan = session.preview_plan(images)
    cost_model = load_cost_model(args.coefficients)
    strategy = get_backend(args.backend)
    modes = candidate_modes(
        plan,
        backend_name=getattr(strategy, "name", None),
        deterministic=getattr(strategy, "deterministic", False),
    )
    choice = cost_model.choose(plan, workers=args.workers, modes=modes)

    print(
        f"\nplan: batch={plan.batch_size} shards={len(plan)} "
        f"tasks={len(plan.tasks)} total_cost={plan.total_cost:.0f} windows "
        f"critical_path={plan.critical_path_cost():.0f} windows"
    )
    print(
        f"cost model: {cost_model.coefficients.source} "
        f"(break-even {cost_model.coefficients.break_even_windows:.0f} windows); "
        f"workers={args.workers}"
    )
    print(f"\n{'mode':<16} {'predicted(ms)':>14}  candidate")
    for mode in ("serial", "shard-parallel", "tile-parallel"):
        if mode in choice.predictions:
            marker = "<- chosen" if mode == choice.mode else ""
            print(
                f"{mode:<16} {choice.predictions[mode] * 1e3:>14.3f}  {marker}"
            )
        else:
            print(f"{mode:<16} {'-':>14}  (unavailable)")
    print(f"decision: {choice.mode} — {choice.reason}")

    # Per-stage predicted_s is the stage's aggregate work (summed over
    # shards/workers — what the telemetry will measure), while the mode
    # table above compares wall-clock predictions.
    print(
        f"\n{'stage':>5} {'kind':<7} {'tiles':>5} {'windows':>10} "
        f"{'mode':<15} {'work(ms)':>14}"
    )
    for decision in choice.stages:
        print(
            f"{decision.stage:>5} {decision.kind:<7} {decision.tile_width:>5} "
            f"{decision.cost_windows:>10.0f} {decision.mode:<15} "
            f"{decision.predicted_s * 1e3:>14.3f}"
        )
    if args.tasks:
        print(f"\n{'id':>4} {'shard':>5} {'stage':>5} {'kind':<7} "
              f"{'tile':>4} {'cost':>10} deps")
        for task in plan.tasks:
            tile = "-" if task.tile is None else str(task.tile)
            deps = ",".join(str(d) for d in task.deps) or "-"
            print(
                f"{task.id:>4} {task.shard:>5} {task.stage:>5} "
                f"{task.kind:<7} {tile:>4} {task.cost:>10.0f} {deps}"
            )
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.table1 import crossbar_hardware_table

    print(f"{'area':>9} {'latency(ps)':>12} {'#JJs':>9} {'energy(aJ)':>11}")
    for row in crossbar_hardware_table(args.sizes):
        print(
            f"{row['crossbar_area']:>9} {row['latency_ps']:>12.0f} "
            f"{row['jj_count']:>9d} {row['energy_aj']:>11.2f}"
        )
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments.fig4 import gray_zone_response

    result = gray_zone_response(gray_zone_ua=args.gray_zone)
    print(f"{'Iin(uA)':>8} {'P(1)':>8} {'sampled':>8}")
    for point in result["points"][:: args.stride]:
        print(
            f"{point['input_ua']:>8.2f} {point['probability']:>8.4f} "
            f"{point['sampled']:>8.4f}"
        )
    print(f"boundary: +-{result['boundary_ua']:.2f} uA")
    return 0


def _cmd_fig5(args) -> int:
    from repro.experiments.fig5 import attenuation_curve

    result = attenuation_curve()
    print(f"{'Cs':>5} {'measured(uA)':>13} {'fitted(uA)':>11}")
    for point in result["points"]:
        print(
            f"{point['crossbar_size']:>5d} {point['measured_ua']:>13.3f} "
            f"{point['fitted_ua']:>11.3f}"
        )
    print(
        f"I1(Cs) = {result['amplitude_ua']:.2f} * Cs^-{result['exponent']:.3f} "
        f"(max err {result['max_relative_fit_error'] * 100:.1f}%)"
    )
    return 0


def _cmd_clocking(args) -> int:
    from repro.experiments.clocking import clocking_optimization_report

    report = clocking_optimization_report()
    print(f"{'circuit':<15} {'4-ph JJ':>8} {'8-ph':>7} {'16-ph':>7}")
    for name, circuit in report["circuits"].items():
        print(
            f"{name:<15} {circuit[4]['total_jj']:>8.0f} "
            f"{circuit[8]['reduction_vs_4phase'] * 100:>6.1f}% "
            f"{circuit[16]['reduction_vs_4phase'] * 100:>6.1f}%"
        )
    print(f"BCM 3-phase saving: {report['memory_reduction'] * 100:.1f}%")
    return 0


def _cmd_coopt(args) -> int:
    from repro.core.coopt import optimize_hardware_config

    result = optimize_hardware_config(
        gray_zones_ua=args.gray_zones,
        crossbar_sizes=args.sizes,
        max_energy_per_cycle_aj=args.energy_budget,
    )
    print(f"{'dIin(uA)':>9} {'Cs':>5} {'AME':>10}")
    for cell in result.grid:
        print(
            f"{cell['gray_zone_ua']:>9.1f} {cell['crossbar_size']:>5d} "
            f"{cell['ame']:>10.4f}"
        )
    best = result.best_config
    print(
        f"optimum: Cs={best.crossbar_size}, dIin={best.gray_zone_ua} uA "
        f"(AME={result.best_ame:.4f})"
    )
    return 0


def _cmd_fig12(args) -> int:
    from repro.baselines.cryo import frequency_sweep

    rows = frequency_sweep(args.tops)
    print(f"{'GHz':>6} {'AQFP':>12} {'AQFP+cool':>12}")
    for row in rows:
        print(
            f"{row['frequency_ghz']:>6.1f} {row['aqfp']:>12.3g} "
            f"{row['aqfp_cooled']:>12.3g}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SupeRBNN reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="crossbar cost table (Table 1)")
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[4, 8, 16, 18, 36, 72, 144]
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig4", help="buffer probability curve (Fig. 4)")
    p.add_argument("--gray-zone", type=float, default=2.4, dest="gray_zone")
    p.add_argument("--stride", type=int, default=4)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("fig5", help="attenuation fit (Fig. 5)")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("clocking", help="n-phase clocking reductions (Sec. 4.4)")
    p.set_defaults(func=_cmd_clocking)

    p = sub.add_parser("coopt", help="AME grid search (Sec. 5.4)")
    p.add_argument(
        "--gray-zones",
        type=float,
        nargs="+",
        default=[1.0, 5.0, 20.0, 100.0],
        dest="gray_zones",
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 36, 72])
    p.add_argument(
        "--energy-budget", type=float, default=None, dest="energy_budget"
    )
    p.set_defaults(func=_cmd_coopt)

    p = sub.add_parser("fig12", help="efficiency vs frequency (Fig. 12)")
    p.add_argument("--tops", type=float, default=9e5, help="TOPS/W at 5 GHz")
    p.set_defaults(func=_cmd_fig12)

    p = sub.add_parser(
        "run", help="run any registered experiment by name (JSON output)"
    )
    p.add_argument(
        "experiment", nargs="?", help="experiment name (omit with --list)"
    )
    p.add_argument(
        "--list", action="store_true", help="list registered experiments"
    )
    p.add_argument(
        "-k",
        "--set",
        dest="overrides",
        action="append",
        type=_parse_override,
        metavar="KEY=VALUE",
        help="keyword override for the experiment (repeatable)",
    )
    p.add_argument(
        "-o", "--output", default=None, help="write JSON to this file"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run the experiment's stochastic inference on an N-process "
            "pool (the 'stochastic-parallel' backend)"
        ),
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "backends", help="list inference execution backends (and aliases)"
    )
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser(
        "plan-inspect",
        help="print a request's ExecutionPlan tasks, costs, and the "
        "adaptive scheduler's per-stage decision",
    )
    p.add_argument("--batch", type=int, default=256, help="images in the request")
    p.add_argument(
        "--micro-batch", type=int, default=32, dest="micro_batch",
        help="shard size the session plans with",
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="fan-out width the cost model assumes",
    )
    p.add_argument(
        "--backend", default="stochastic",
        help="execution backend the plan is chosen for",
    )
    p.add_argument(
        "--coefficients", default=None, metavar="PATH",
        help="cost-coefficients JSON (default: REPRO_COST_COEFFICIENTS "
        "or built-in defaults)",
    )
    p.add_argument(
        "--tasks", action="store_true",
        help="also print the full per-task DAG listing",
    )
    p.add_argument("--epochs", type=int, default=2, help="reference-model training epochs")
    p.add_argument("--crossbar-size", type=int, default=16, dest="crossbar_size")
    p.add_argument("--window-bits", type=int, default=8, dest="window_bits")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_plan_inspect)

    p = sub.add_parser(
        "serve-bench",
        help="concurrent serving throughput: serial vs process-parallel",
    )
    p.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 4],
        metavar="N",
        help="parallel worker counts to benchmark (serial baseline always runs)",
    )
    p.add_argument("--requests", type=int, default=8, help="requests per batch")
    p.add_argument("--batch", type=int, default=64, help="images per request")
    p.add_argument("--epochs", type=int, default=8, help="reference-model training epochs")
    p.add_argument("--crossbar-size", type=int, default=16, dest="crossbar_size")
    p.add_argument("--window-bits", type=int, default=8, dest="window_bits")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--window-ms",
        type=float,
        default=10.0,
        dest="window_ms",
        help="daemon batch-coalescing window (milliseconds)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="dump the ServingReport rows to PATH as JSON",
    )
    p.set_defaults(func=_cmd_serve_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
