"""String-keyed registry of every paper experiment.

The CLI's generic ``run`` subcommand and any future driver (sweep
runner, CI artifact job) discover experiments here instead of
hard-coding one subcommand per module. Targets are stored as dotted
``"module:function"`` strings and resolved lazily, so listing the
registry stays import-light while heavy experiments (training runs)
only load when invoked.

A test asserts parity between this registry and the modules under
:mod:`repro.experiments` — adding an experiment module without
registering it here fails the suite.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: name, lazy target, one-line summary."""

    name: str
    target: str  # "package.module:function"
    summary: str

    @property
    def module_name(self) -> str:
        """Short module name inside ``repro.experiments``."""
        return self.target.split(":", 1)[0].rsplit(".", 1)[-1]

    def resolve(self) -> Callable:
        module_path, func_name = self.target.split(":", 1)
        module = importlib.import_module(module_path)
        return getattr(module, func_name)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(name: str, target: str, summary: str) -> ExperimentSpec:
    """Register an experiment; returns the spec for convenience."""
    if name in _REGISTRY:
        raise ValueError(f"experiment {name!r} is already registered")
    spec = ExperimentSpec(name=name, target=target, summary=summary)
    _REGISTRY[name] = spec
    return spec


def available_experiments() -> List[str]:
    return sorted(_REGISTRY)


def get_experiment(name: str) -> ExperimentSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{', '.join(available_experiments())}"
        )
    return spec


def run_experiment(name: str, **kwargs):
    """Resolve and invoke an experiment with keyword overrides."""
    return get_experiment(name).resolve()(**kwargs)


def experiment_registry() -> Dict[str, ExperimentSpec]:
    """A copy of the registry (name -> spec)."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# The paper's artifacts — every module under repro/experiments is
# represented (asserted by tests/test_api_experiments.py).
# ----------------------------------------------------------------------
register_experiment(
    "table1",
    "repro.experiments.table1:crossbar_hardware_table",
    "Table 1: crossbar latency / JJ / energy cost table",
)
register_experiment(
    "table2",
    "repro.experiments.table2:cifar10_comparison",
    "Table 2: CIFAR-10 accuracy vs efficiency, ours vs baselines (trains)",
)
register_experiment(
    "table3",
    "repro.experiments.table3:mnist_comparison",
    "Table 3: MNIST comparison vs RSFQ/ERSFQ/SC-AQFP (trains)",
)
register_experiment(
    "fig4",
    "repro.experiments.fig4:gray_zone_response",
    "Fig. 4: AQFP buffer probability vs input current",
)
register_experiment(
    "fig5",
    "repro.experiments.fig5:attenuation_curve",
    "Fig. 5: unit-current attenuation power-law fit",
)
register_experiment(
    "fig10",
    "repro.experiments.fig10:bitstream_length_sweep",
    "Fig. 10: accuracy vs SC bit-stream length (trains)",
)
register_experiment(
    "fig11",
    "repro.experiments.fig11:accuracy_surface",
    "Fig. 11: accuracy over the (gray-zone, crossbar-size) plane (trains)",
)
register_experiment(
    "fig12",
    "repro.experiments.fig12:efficiency_frequency_sweep",
    "Fig. 12: energy efficiency vs clock frequency (trains)",
)
register_experiment(
    "clocking",
    "repro.experiments.clocking:clocking_optimization_report",
    "Sec. 4.4: n-phase clocking JJ reductions",
)
register_experiment(
    "headline",
    "repro.experiments.headline:headline_claims",
    "Abstract's headline comparison ratios (trains)",
)
register_experiment(
    "temperature",
    "repro.experiments.temperature:temperature_sweep",
    "Extension: operating temperature vs accuracy (trains)",
)
register_experiment(
    "ablation-randomized",
    "repro.experiments.ablations:randomized_training_ablation",
    "Ablation: randomized-aware vs deterministic-STE training (trains)",
)
register_experiment(
    "ablation-recu",
    "repro.experiments.ablations:recu_ablation",
    "Ablation: ReCU clamp on vs off (trains)",
)
register_experiment(
    "ablation-apc",
    "repro.experiments.ablations:accumulation_ablation",
    "Ablation: exact vs approximate APC counting",
)
