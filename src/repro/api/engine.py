"""The unified inference engine: model -> Engine -> Session -> result.

One coherent surface over the model/compile/execute/metrics plumbing
that the experiment scripts used to re-wire by hand:

* :class:`Engine` wraps a :class:`~repro.mapping.compiler.CompiledNetwork`
  with a default backend and micro-batch size; build one with
  :meth:`Engine.from_model` or the fluent :class:`EngineBuilder`.
* :class:`Session` owns RNG state and accepts batched inference
  requests, automatically splitting them into micro-batches and merging
  the per-shard telemetry.
* every run returns a structured :class:`~repro.api.results.InferenceResult`
  (logits + per-layer telemetry + wall time).

Execution strategies are pluggable string-keyed backends
(:mod:`repro.api.backends`); the legacy free functions in
:mod:`repro.mapping.executor` are deprecated shims over this engine.

The planning and execution machinery itself lives in the runtime
subsystem (:mod:`repro.runtime`): this module is a thin facade.
A request is *planned* (:func:`repro.runtime.plan.plan_shards` — shard
boundaries plus one deterministic child seed per shard, drawn from the
session generator), optionally *compiled* into an explicit
:class:`~repro.runtime.plan.ExecutionPlan` task DAG, and *scheduled*
by a pluggable scheduler (:mod:`repro.runtime.scheduler`: ``"serial"``,
``"shard-parallel"``, ``"tile-parallel"``). Because every shard pins
the network's sampler state from its own seed before executing, the
logits depend only on the plan, never on which process (or how many
workers) ran each shard — N-worker output is bit-identical to serial.

The symbols that historically lived here (``Shard``, ``ShardPlan``,
``plan_shards``, ``seed_shard``, ``run_stages``) are re-exported from
:mod:`repro.runtime.plan` unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.api.backends import get_backend, resolve_strategy
from repro.api.results import InferenceResult, merge_telemetry, network_workloads
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel, LayerWorkload
from repro.mapping.compiler import CompiledNetwork, compile_model
from repro.runtime.plan import (  # noqa: F401  (re-exported legacy surface)
    ExecutionPlan,
    Shard,
    ShardPlan,
    _run_pool,
    compile_plan,
    plan_shards,
    run_stages,
    seed_shard,
)
from repro.runtime.scheduler import resolve_scheduler
from repro.utils.rng import SeedLike, new_rng

#: Default micro-batch size — matches the legacy ``evaluate_accuracy``
#: batching so migrated experiments replay the same call sequence.
DEFAULT_MICRO_BATCH = 64

#: Sentinel distinguishing "inherit the engine's micro-batch" (the
#: default) from an explicit ``micro_batch=None`` (no sharding).
_INHERIT = object()


class Session:
    """One inference session: pinned RNG state + batched requests.

    A session is the unit of reproducibility: giving it a ``seed``
    makes every request deterministic — at the start of each
    :meth:`run` the session derives per-run child seeds from its own
    generator and reseeds every sampler in the compiled network (via
    :meth:`TiledLinearLayer.reseed_sampling`), so two sessions created
    with the same seed replay identical stochastic inference even when
    other sessions on the same engine ran in between (the layers are
    engine-shared; re-establishing the state at run entry is what makes
    the ownership real). Backends that draw from the session directly
    (``"stochastic-fused-batched"``) use the same generator.
    ``seed=None`` continues the compile-time RNG streams untouched.

    Requests of any batch size are accepted; the session splits them
    into ``micro_batch``-sized shards automatically and merges the
    telemetry, so callers never hand-roll batching loops. Each shard is
    executed under its own child seed (:meth:`plan_shards`), which is
    what makes the process-pool ``"stochastic-parallel"`` backend
    bit-identical to serial execution and lets the serving front-ends
    (:class:`~repro.api.serving.Serving`,
    :class:`~repro.runtime.daemon.ServingDaemon`) interleave sessions
    safely.

    ``scheduler`` selects a runtime scheduler by name or instance
    (:mod:`repro.runtime.scheduler`); the default is the serial
    in-process loop, unless the backend is a shard-level strategy
    (``run_plan``) that executes plans itself. For pool-capable
    backends (any registered layer-level backend) the documented
    default is ``scheduler="adaptive"``: the cost-model chooser
    inspects the compiled :class:`ExecutionPlan` and picks serial,
    shard-parallel, or tile-parallel fan-out per request — always
    bit-identical to serial for the same session seed, with the
    per-stage decision surfaced in
    :attr:`~repro.api.results.InferenceResult.decisions`.

    ``deadline_s`` bounds each request's pool execution: a wave that
    blows it abandons its stragglers and re-executes serially —
    bit-identical, since every shard re-derives its sampler state from
    its own plan seed. What recovery a run needed (retries, pool
    rebuilds, serial fallback) surfaces in
    :attr:`~repro.api.results.InferenceResult.recovery`.
    """

    def __init__(
        self,
        engine: "Engine",
        *,
        seed: SeedLike = None,
        backend=None,
        micro_batch=_INHERIT,
        scheduler=None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.engine = engine
        source = backend if backend is not None else engine.backend
        # Resolve the strategy once per session (not per run): stateless
        # backends come from the registry cache, stateful ones (process
        # pools) keep their workers warm across this session's requests.
        self._strategy, self._owns_strategy = resolve_strategy(source)
        self.backend = getattr(self._strategy, "name", str(source))
        if scheduler is None:
            self._scheduler, self._owns_scheduler = None, False
        else:
            self._scheduler, self._owns_scheduler = resolve_scheduler(scheduler)
            if not hasattr(self._scheduler, "run_plan") and not hasattr(
                self._strategy, "run_layer"
            ):
                raise ValueError(
                    f"scheduler {getattr(self._scheduler, 'name', scheduler)!r} "
                    f"executes in-process and needs a layer-level backend, but "
                    f"{self.backend!r} is shard-level (run_plan only)"
                )
            if hasattr(self._scheduler, "run_plan"):
                self._align_pool_scheduler(backend)
        self.micro_batch = (
            engine.micro_batch if micro_batch is _INHERIT else micro_batch
        )
        if self.micro_batch is not None and self.micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {self.micro_batch}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.deadline_s = deadline_s
        self._seeded = seed is not None
        self.rng = new_rng(seed)
        self._closed = False

    # ------------------------------------------------------------------
    def plan_shards(self, n: int) -> ShardPlan:
        """The session's :class:`ShardPlan` for an ``n``-row request.

        Boundaries come from ``micro_batch``; for a *seeded* session
        per-shard child seeds are drawn from the session generator (its
        state advances by exactly one draw per plan, so successive
        requests stay stochastic while two sessions with the same seed
        produce the same plans). An unseeded session plans seedless
        shards: serial execution then continues the network's
        compile-time sampler streams untouched — the legacy behaviour
        deterministic given the compile seed.
        """
        return plan_shards(
            n, self.micro_batch, rng=self.rng if self._seeded else None
        )

    def preview_plan(self, images: np.ndarray) -> ExecutionPlan:
        """The :class:`~repro.runtime.plan.ExecutionPlan` the next
        :meth:`run` of ``images`` would execute — without advancing the
        session generator (the preview draws from a state copy), so it
        is pure introspection: task DAG, tile fan-out, cost estimates.
        """
        x = np.asarray(images)
        if x.ndim < 2:
            raise ValueError(
                f"images must be batched (N, ...), got shape {x.shape}"
            )
        if self._seeded:
            ghost = new_rng(0)  # state is overwritten on the next line
            ghost.bit_generator.state = self.rng.bit_generator.state
            shard_plan = plan_shards(x.shape[0], self.micro_batch, rng=ghost)
        else:
            shard_plan = plan_shards(x.shape[0], self.micro_batch)
        return compile_plan(
            self.engine.network, shard_plan, input_shape=x.shape[1:]
        )

    def run(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        backend=None,
    ) -> InferenceResult:
        """Execute one batched request; returns a structured result."""
        self._check_open()
        pool_scheduled = self._scheduler is not None and hasattr(
            self._scheduler, "run_plan"
        )
        if pool_scheduled and backend is not None:
            raise ValueError(
                "per-run backend overrides are not supported with a pool "
                "scheduler (workers execute the scheduler's inner strategy); "
                "set the session backend instead"
            )
        strategy, owned = self._resolve(backend)
        try:
            x = np.asarray(images)
            if x.ndim < 2:
                raise ValueError(
                    f"images must be batched (N, ...), got shape {x.shape}"
                )
            n = x.shape[0]
            sharded_backend = (
                hasattr(strategy, "run_plan") and self._scheduler is None
            )
            needs_seeds = sharded_backend or getattr(
                self._scheduler, "requires_seeds", False
            )
            if needs_seeds and not self._seeded:
                # Every worker holds an identical copy of the network's
                # compile-time streams — seedless shards would replay
                # the same draws on each worker. Plan with fresh
                # entropy instead.
                plan = plan_shards(n, self.micro_batch, rng=new_rng(None))
            else:
                plan = self.plan_shards(n)
            start = time.perf_counter()
            if sharded_backend:
                # Shard-level backend (process pool): it executes the
                # whole plan against its own per-worker network copies,
                # so the engine's shared layers are never touched here.
                # Recovery extras ride as kwargs only when configured,
                # so duck-typed strategies with the legacy three-arg
                # run_plan keep working.
                kwargs = (
                    {}
                    if self.deadline_s is None
                    else {"deadline_s": self.deadline_s}
                )
                logits, telemetry = strategy.run_plan(
                    self.engine.network, x, plan, **kwargs
                )
                decisions = None
                recovery = self._recovery_of(strategy)
            else:
                logits, telemetry, decisions, recovery = self._run_scheduled(
                    x, plan, strategy
                )
            return InferenceResult(
                logits=logits,
                # With a pool scheduler the workers executed the
                # session backend (aligned at construction), not the
                # in-process strategy object.
                backend=(
                    self.backend
                    if pool_scheduled
                    else getattr(strategy, "name", str(strategy))
                ),
                batch_size=n,
                micro_batches=len(plan),
                wall_time_s=time.perf_counter() - start,
                layers=telemetry,
                labels=None if labels is None else np.asarray(labels),
                decisions=decisions,
                recovery=recovery,
            )
        finally:
            if owned and hasattr(strategy, "close"):
                strategy.close()

    def run_many(
        self,
        requests: Sequence[np.ndarray],
        labels: Optional[Sequence] = None,
        *,
        backend=None,
    ) -> List[InferenceResult]:
        """Run several independent requests through this session.

        ``labels`` is an optional sequence aligned with ``requests``
        (entries may be None for unlabelled requests); each label set is
        threaded into its request's :class:`InferenceResult` so batched
        serving can report per-request accuracy. An empty ``requests``
        returns an empty list.
        """
        self._check_open()
        if labels is None:
            labels = [None] * len(requests)
        elif len(labels) != len(requests):
            raise ValueError(
                f"labels length {len(labels)} != requests length {len(requests)}"
            )
        return [
            self.run(request, labels=request_labels, backend=backend)
            for request, request_labels in zip(requests, labels)
        ]

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "Session is closed; open a new one with engine.session(...)"
            )

    def _align_pool_scheduler(self, requested_backend) -> None:
        """Keep a pool scheduler's worker-side execution consistent with
        the session's backend — never silently run something else.

        A scheduler built *by this session* from a name adopts the
        session backend as its ``inner`` strategy (the name must be
        registered: workers resolve it by name in their own process).
        A caller-configured scheduler instance wins instead — the
        session relabels itself with the scheduler's ``inner`` so
        results report what actually executed, and an explicitly
        conflicting ``backend=`` is rejected rather than dropped.
        """
        if hasattr(self._strategy, "run_plan"):
            raise ValueError(
                f"backend {self.backend!r} is itself shard-level; combining it "
                f"with a pool scheduler would create two pools — configure the "
                f"scheduler's inner backend instead"
            )
        inner = getattr(self._scheduler, "inner", None)
        if inner is None:  # pragma: no cover - custom scheduler contract
            return
        if self._owns_scheduler:
            try:
                get_backend(self.backend, allow_override=False)
            except KeyError as exc:
                raise ValueError(
                    f"backend {self.backend!r} is not a registered name; pool "
                    f"workers resolve their strategy by name — register it or "
                    f"pass a configured ShardParallelScheduler(inner=...)"
                ) from exc
            self._scheduler.inner = self.backend
        elif requested_backend is not None and self.backend != inner:
            raise ValueError(
                f"session backend {self.backend!r} conflicts with the "
                f"scheduler's inner backend {inner!r}; configure one of them"
            )
        else:
            # The caller-configured scheduler executes its own inner
            # strategy; report that, not the engine default.
            self.backend = inner

    def _resolve(self, backend):
        """Strategy for one run: the session's cached instance, or a
        per-run override. A name override that constructs a *stateful*
        backend is owned by this run and closed when it finishes."""
        if backend is None:
            return self._strategy, False
        return resolve_strategy(backend)

    @staticmethod
    def _recovery_of(source) -> Optional[dict]:
        """The latest :class:`~repro.runtime.recovery.RecoveryLog` of a
        recovering scheduler/strategy, as a dict (None for paths with
        nothing to recover)."""
        log = getattr(source, "last_recovery", None)
        return None if log is None else log.as_dict()

    def _run_scheduled(self, x, plan: ShardPlan, strategy):
        """Execute a plan through the session's runtime scheduler
        (serial by default): run per-shard, merge. The ExecutionPlan
        task DAG is compiled only for schedulers that consume it
        (``needs_task_graph`` — the ``"adaptive"`` chooser and the
        tile scheduler) — the plain shard schedulers execute straight
        off the ShardPlan. Returns ``(logits, telemetry, decisions,
        recovery)``; ``decisions`` is the adaptive scheduler's per-stage
        record for this run, ``recovery`` the recovery log of a
        recovering path (each None otherwise).
        """
        scheduler = self._scheduler
        if scheduler is None:
            scheduler, _ = resolve_scheduler("serial")
        if getattr(scheduler, "needs_task_graph", False):
            exec_plan = compile_plan(
                self.engine.network, plan, input_shape=np.asarray(x).shape[1:]
            )
        else:
            exec_plan = plan
        outputs = scheduler.run_shards(
            self.engine.network,
            x,
            exec_plan,
            strategy=strategy,
            exec_lock=self.engine._exec_lock,
            rng=self.rng,
            deadline_s=self.deadline_s,
        )
        decisions = getattr(scheduler, "last_decisions", None)
        recovery = self._recovery_of(scheduler)
        parts = [logits for logits, _ in outputs]
        telemetry = merge_telemetry(records for _, records in outputs)
        logits = np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]
        return logits, telemetry, decisions, recovery

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release owned resources (a strategy or scheduler constructed
        from a name, e.g. a process pool). Idempotent; a closed session
        rejects further requests with :class:`RuntimeError`."""
        if self._closed:
            return
        self._closed = True
        if self._owns_strategy and hasattr(self._strategy, "close"):
            self._strategy.close()
        if self._owns_scheduler and hasattr(self._scheduler, "close"):
            self._scheduler.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(backend={self.backend!r}, micro_batch={self.micro_batch}, "
            f"engine={self.engine!r})"
        )


class Engine:
    """The inference façade over a compiled network.

    Wraps a :class:`~repro.mapping.compiler.CompiledNetwork` with a
    default execution backend and micro-batch size, hands out
    :class:`Session` objects, and exposes the cost-model plumbing
    (workloads, :class:`~repro.hardware.cost.AcceleratorCostModel`).

    Typical use::

        engine = Engine.from_model(trained_model)
        result = engine.run(test.images, labels=test.labels,
                            backend="stochastic-fused-batched")
        print(result.accuracy, result.wall_time_s)
    """

    def __init__(
        self,
        network: CompiledNetwork,
        *,
        backend: str = "stochastic",
        micro_batch: Optional[int] = DEFAULT_MICRO_BATCH,
    ) -> None:
        get_backend(backend)  # fail fast on unknown names
        self.network = network
        self.backend = backend
        self.micro_batch = micro_batch
        # Serializes in-process shard execution on the shared layers;
        # shard-level backends (process pools) never take it, so a
        # serving front-end gets real concurrency from worker processes
        # while in-process backends interleave safely at shard
        # granularity.
        self._exec_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model,
        config: Optional[HardwareConfig] = None,
        *,
        seed: SeedLike = 0,
        backend: str = "stochastic",
        micro_batch: Optional[int] = DEFAULT_MICRO_BATCH,
    ) -> "Engine":
        """Compile ``model`` (Mlp / VggSmall) and wrap it in an engine.

        ``config`` defaults to the hardware the model was trained
        against; ``seed`` feeds the compile-time sampler spawning.
        """
        network = compile_model(model, config, seed=seed)
        return cls(network, backend=backend, micro_batch=micro_batch)

    @staticmethod
    def builder() -> "EngineBuilder":
        """Start a fluent :class:`EngineBuilder`."""
        return EngineBuilder()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def session(
        self,
        *,
        seed: SeedLike = None,
        backend=None,
        micro_batch=_INHERIT,
        scheduler=None,
        deadline_s: Optional[float] = None,
    ) -> Session:
        """Open a :class:`Session` (pinned RNG + batched requests).

        ``backend`` accepts a registered name or a ready-made strategy
        instance (e.g. a configured
        :class:`~repro.api.parallel.StochasticParallelBackend`).
        ``micro_batch``: omit to inherit the engine default, pass an int
        to shard requests at that size, or ``None`` to disable sharding.
        ``scheduler``: a runtime scheduler name (``"serial"``,
        ``"shard-parallel"``, ``"tile-parallel"``, ``"adaptive"``) or
        instance; omit for the serial loop. ``"adaptive"`` is the
        recommended default for pool-capable backends — it picks the
        fan-out per request from the plan's cost model and stays
        bit-identical to serial. ``deadline_s`` bounds each request's
        pool execution (blown deadlines recover via bit-identical
        serial re-execution).
        """
        return Session(
            self,
            seed=seed,
            backend=backend,
            micro_batch=micro_batch,
            scheduler=scheduler,
            deadline_s=deadline_s,
        )

    def run(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        backend=None,
        seed: SeedLike = None,
        micro_batch=_INHERIT,
        scheduler=None,
    ) -> InferenceResult:
        """One-shot convenience: ephemeral session, single request."""
        with self.session(
            seed=seed, backend=backend, micro_batch=micro_batch, scheduler=scheduler
        ) as s:
            return s.run(images, labels=labels)

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        seed: SeedLike = None,
    ) -> float:
        """Top-1 accuracy on a labelled set (micro-batched)."""
        result = self.run(
            images,
            labels=labels,
            backend=backend,
            seed=seed,
            micro_batch=_INHERIT if batch_size is None else batch_size,
        )
        return result.accuracy

    # ------------------------------------------------------------------
    # Introspection / cost
    # ------------------------------------------------------------------
    @property
    def config(self) -> HardwareConfig:
        return self.network.config

    @property
    def stages(self):
        return self.network.stages

    @property
    def tiled_layers(self):
        return self.network.tiled_layers

    def workloads(self, image_shape) -> List[LayerWorkload]:
        """Cost-model workloads for a (C, H, W) input geometry."""
        return network_workloads(self.network, image_shape)

    def cost_model(self, image_shape, **kwargs) -> AcceleratorCostModel:
        """Hardware cost model over this network's real workloads."""
        return AcceleratorCostModel(
            self.config, self.workloads(image_shape), **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(stages={len(self.network.stages)}, "
            f"backend={self.backend!r}, Cs={self.config.crossbar_size})"
        )


class EngineBuilder:
    """Fluent construction: ``Engine.builder().model(m).backend(...).build()``.

    Collects the model (or an already-compiled network), an optional
    hardware override (a full :class:`HardwareConfig` or field
    overrides applied to the model's training hardware), the compile
    seed, and the engine defaults, then :meth:`build`\\ s the engine.
    """

    def __init__(self) -> None:
        self._model = None
        self._network: Optional[CompiledNetwork] = None
        self._config: Optional[HardwareConfig] = None
        self._overrides: dict = {}
        self._seed: SeedLike = 0
        self._backend: str = "stochastic"
        self._micro_batch: Optional[int] = DEFAULT_MICRO_BATCH

    def model(self, model) -> "EngineBuilder":
        self._model = model
        return self

    def network(self, network: CompiledNetwork) -> "EngineBuilder":
        self._network = network
        return self

    def hardware(self, config: Optional[HardwareConfig] = None, **overrides) -> "EngineBuilder":
        """Deploy hardware: a full config, field overrides, or both.

        Calls accumulate: a later overrides-only call refines the
        previously set base config rather than discarding it.
        """
        if config is not None:
            self._config = config
        self._overrides.update(overrides)
        return self

    def seed(self, seed: SeedLike) -> "EngineBuilder":
        self._seed = seed
        return self

    def backend(self, name: str) -> "EngineBuilder":
        get_backend(name)  # fail fast
        self._backend = name
        return self

    def micro_batch(self, size: Optional[int]) -> "EngineBuilder":
        self._micro_batch = size
        return self

    def build(self) -> Engine:
        if self._network is not None:
            if self._model is not None or self._config is not None or self._overrides:
                raise ValueError(
                    "network() is exclusive with model()/hardware(): a compiled "
                    "network already fixes both"
                )
            return Engine(
                self._network, backend=self._backend, micro_batch=self._micro_batch
            )
        if self._model is None:
            raise ValueError("EngineBuilder needs model(...) or network(...)")
        config = self._config or getattr(self._model, "hardware", None)
        if self._overrides:
            if config is None:
                raise ValueError(
                    "hardware overrides need a base config (model.hardware "
                    "or hardware(config))"
                )
            config = config.with_(**self._overrides)
        return Engine.from_model(
            self._model,
            config,
            seed=self._seed,
            backend=self._backend,
            micro_batch=self._micro_batch,
        )
