"""The unified inference engine: model -> Engine -> Session -> result.

One coherent surface over the model/compile/execute/metrics plumbing
that the experiment scripts used to re-wire by hand:

* :class:`Engine` wraps a :class:`~repro.mapping.compiler.CompiledNetwork`
  with a default backend and micro-batch size; build one with
  :meth:`Engine.from_model` or the fluent :class:`EngineBuilder`.
* :class:`Session` owns RNG state and accepts batched inference
  requests, automatically splitting them into micro-batches and merging
  the per-shard telemetry.
* every run returns a structured :class:`~repro.api.results.InferenceResult`
  (logits + per-layer telemetry + wall time).

Execution strategies are pluggable string-keyed backends
(:mod:`repro.api.backends`); the legacy free functions in
:mod:`repro.mapping.executor` are deprecated shims over this engine.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.api.backends import get_backend
from repro.api.results import InferenceResult, LayerTelemetry, network_workloads
from repro.autograd.functional import im2col
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel, LayerWorkload
from repro.mapping.compiler import (
    CompiledNetwork,
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    SignStage,
    ThermometerStage,
    compile_model,
)
from repro.mapping.tiling import conv_output_geometry
from repro.utils.rng import SeedLike, new_rng, spawn_rng

_INT8_ONE = np.int8(1)
_INT8_MINUS_ONE = np.int8(-1)

#: Default micro-batch size — matches the legacy ``evaluate_accuracy``
#: batching so migrated experiments replay the same call sequence.
DEFAULT_MICRO_BATCH = 64

#: Sentinel distinguishing "inherit the engine's micro-batch" (the
#: default) from an explicit ``micro_batch=None`` (no sharding).
_INHERIT = object()


def _run_pool(stage: PoolStage, x: np.ndarray) -> np.ndarray:
    """2x2-style max pooling of +-1 maps (a digital OR in hardware)."""
    n, c, h, w = x.shape
    k = stage.kernel
    if h % k or w % k:
        raise ValueError(f"pooling {k} does not divide spatial dims {(h, w)}")
    view = x.reshape(n, c, h // k, k, w // k, k)
    return view.max(axis=(3, 5))


class Session:
    """One inference session: pinned RNG state + batched requests.

    A session is the unit of reproducibility: giving it a ``seed``
    makes every request deterministic — at the start of each
    :meth:`run` the session derives per-run child seeds from its own
    generator and reseeds every sampler in the compiled network (via
    :meth:`TiledLinearLayer.reseed_sampling`), so two sessions created
    with the same seed replay identical stochastic inference even when
    other sessions on the same engine ran in between (the layers are
    engine-shared; re-establishing the state at run entry is what makes
    the ownership real). Backends that draw from the session directly
    (``"stochastic-fused-batched"``) use the same generator.
    ``seed=None`` continues the compile-time RNG streams untouched.

    Requests of any batch size are accepted; the session splits them
    into ``micro_batch``-sized shards automatically and merges the
    telemetry, so callers never hand-roll batching loops.
    """

    def __init__(
        self,
        engine: "Engine",
        *,
        seed: SeedLike = None,
        backend: Optional[str] = None,
        micro_batch=_INHERIT,
    ) -> None:
        self.engine = engine
        self.backend = backend or engine.backend
        self.micro_batch = (
            engine.micro_batch if micro_batch is _INHERIT else micro_batch
        )
        if self.micro_batch is not None and self.micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {self.micro_batch}")
        self._seeded = seed is not None
        self.rng = new_rng(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        backend: Optional[str] = None,
    ) -> InferenceResult:
        """Execute one batched request; returns a structured result."""
        strategy = get_backend(backend or self.backend)
        x = np.asarray(images)
        if x.ndim < 2:
            raise ValueError(f"images must be batched (N, ...), got shape {x.shape}")
        n = x.shape[0]
        if self._seeded:
            # Re-establish this session's sampler state on the shared
            # layers (another session may have run since) and advance it
            # per request so successive runs stay stochastic.
            layers = self.engine.tiled_layers
            for layer, layer_seed in zip(layers, spawn_rng(self.rng, len(layers))):
                layer.reseed_sampling(layer_seed)
        # An empty request still flows through the pipeline once (numpy
        # handles N=0 throughout), returning (0, n_classes) logits like
        # the legacy executor did.
        shard = self.micro_batch or n or 1
        start = time.perf_counter()
        telemetry: List[LayerTelemetry] = []
        logits = []
        shards = 0
        for lo in range(0, max(n, 1), shard):
            # float64 conversion happens per shard so micro-batching
            # bounds peak memory on large requests.
            chunk = np.asarray(x[lo : lo + shard], dtype=np.float64)
            logits.append(self._execute(chunk, strategy, telemetry))
            shards += 1
        return InferenceResult(
            logits=np.concatenate(logits, axis=0) if shards > 1 else logits[0],
            backend=getattr(strategy, "name", str(strategy)),
            batch_size=n,
            micro_batches=shards,
            wall_time_s=time.perf_counter() - start,
            layers=telemetry,
            labels=None if labels is None else np.asarray(labels),
        )

    def run_many(
        self, requests: Sequence[np.ndarray], *, backend: Optional[str] = None
    ) -> List[InferenceResult]:
        """Run several independent requests through this session."""
        return [self.run(request, backend=backend) for request in requests]

    # ------------------------------------------------------------------
    def _execute(self, x, strategy, telemetry: List[LayerTelemetry]) -> np.ndarray:
        """One micro-batch through the stage pipeline (same dataflow and
        dtype discipline as the legacy executor, plus telemetry)."""
        merge = bool(telemetry)  # later micro-batches fold into the first's records
        deterministic = getattr(strategy, "deterministic", False)
        n = x.shape[0]
        trusted = False
        for index, stage in enumerate(self.engine.network.stages):
            t0 = time.perf_counter()
            record = LayerTelemetry(index=index, kind="?")
            if isinstance(stage, SignStage):
                x = np.where(x >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                trusted = True
                record.kind = "encode"
            elif isinstance(stage, ThermometerStage):
                planes = [
                    np.where(x - t >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                    for t in stage.thresholds
                ]
                x = np.concatenate(planes, axis=1)
                trusted = True
                record.kind = "encode"
            elif isinstance(stage, ConvStage):
                validate = None if not trusted else False
                h, w = x.shape[2], x.shape[3]
                h_out, w_out = conv_output_geometry(
                    h, w, stage.kernel, stage.stride, stage.padding
                )
                cols, _ = im2col(x, stage.kernel, stage.stride, stage.padding)
                fan_in = cols.shape[1]
                flat = cols.transpose(0, 2, 1).reshape(-1, fan_in)
                out = strategy.run_layer(
                    stage.layer, flat, rng=self.rng, validate=validate
                )
                out = out.reshape(n, h_out * w_out, stage.out_channels).transpose(
                    0, 2, 1
                )
                x = out.reshape(n, stage.out_channels, h_out, w_out)
                x = x.astype(np.int8, copy=False)
                trusted = True
                record.kind = "conv"
                record.in_features = stage.layer.in_features
                record.out_features = stage.layer.out_features
                record.positions = h_out * w_out
                if not deterministic:
                    record.windows = (
                        n
                        * record.positions
                        * stage.layer.n_row_tiles
                        * stage.layer.n_col_tiles
                    )
            elif isinstance(stage, LinearStage):
                validate = None if not trusted else False
                if x.ndim > 2:
                    # explicit fan-in (reshape -1 cannot infer it when N=0)
                    x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
                x = strategy.run_layer(stage.layer, x, rng=self.rng, validate=validate)
                x = x.astype(np.int8, copy=False)
                trusted = True
                record.kind = "linear"
                record.in_features = stage.layer.in_features
                record.out_features = stage.layer.out_features
                if not deterministic:
                    record.windows = (
                        n * stage.layer.n_row_tiles * stage.layer.n_col_tiles
                    )
            elif isinstance(stage, PoolStage):
                x = _run_pool(stage, x)
                record.kind = "pool"
            elif isinstance(stage, HeadStage):
                if x.ndim > 2:
                    # explicit fan-in (reshape -1 cannot infer it when N=0)
                    x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
                x = stage.logits(x)
                record.kind = "head"
                record.in_features = stage.weight.shape[1]
                record.out_features = stage.weight.shape[0]
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown stage {type(stage).__name__}")
            record.wall_time_s = time.perf_counter() - t0
            if merge:
                telemetry[index].merge(record)
            else:
                telemetry.append(record)
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(backend={self.backend!r}, micro_batch={self.micro_batch}, "
            f"engine={self.engine!r})"
        )


class Engine:
    """The inference façade over a compiled network.

    Wraps a :class:`~repro.mapping.compiler.CompiledNetwork` with a
    default execution backend and micro-batch size, hands out
    :class:`Session` objects, and exposes the cost-model plumbing
    (workloads, :class:`~repro.hardware.cost.AcceleratorCostModel`).

    Typical use::

        engine = Engine.from_model(trained_model)
        result = engine.run(test.images, labels=test.labels,
                            backend="stochastic-fused-batched")
        print(result.accuracy, result.wall_time_s)
    """

    def __init__(
        self,
        network: CompiledNetwork,
        *,
        backend: str = "stochastic",
        micro_batch: Optional[int] = DEFAULT_MICRO_BATCH,
    ) -> None:
        get_backend(backend)  # fail fast on unknown names
        self.network = network
        self.backend = backend
        self.micro_batch = micro_batch

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model,
        config: Optional[HardwareConfig] = None,
        *,
        seed: SeedLike = 0,
        backend: str = "stochastic",
        micro_batch: Optional[int] = DEFAULT_MICRO_BATCH,
    ) -> "Engine":
        """Compile ``model`` (Mlp / VggSmall) and wrap it in an engine.

        ``config`` defaults to the hardware the model was trained
        against; ``seed`` feeds the compile-time sampler spawning.
        """
        network = compile_model(model, config, seed=seed)
        return cls(network, backend=backend, micro_batch=micro_batch)

    @staticmethod
    def builder() -> "EngineBuilder":
        """Start a fluent :class:`EngineBuilder`."""
        return EngineBuilder()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def session(
        self,
        *,
        seed: SeedLike = None,
        backend: Optional[str] = None,
        micro_batch=_INHERIT,
    ) -> Session:
        """Open a :class:`Session` (pinned RNG + batched requests).

        ``micro_batch``: omit to inherit the engine default, pass an int
        to shard requests at that size, or ``None`` to disable sharding.
        """
        return Session(self, seed=seed, backend=backend, micro_batch=micro_batch)

    def run(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        backend: Optional[str] = None,
        seed: SeedLike = None,
        micro_batch=_INHERIT,
    ) -> InferenceResult:
        """One-shot convenience: ephemeral session, single request."""
        return self.session(seed=seed, backend=backend, micro_batch=micro_batch).run(
            images, labels=labels
        )

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        seed: SeedLike = None,
    ) -> float:
        """Top-1 accuracy on a labelled set (micro-batched)."""
        result = self.run(
            images,
            labels=labels,
            backend=backend,
            seed=seed,
            micro_batch=_INHERIT if batch_size is None else batch_size,
        )
        return result.accuracy

    # ------------------------------------------------------------------
    # Introspection / cost
    # ------------------------------------------------------------------
    @property
    def config(self) -> HardwareConfig:
        return self.network.config

    @property
    def stages(self):
        return self.network.stages

    @property
    def tiled_layers(self):
        return self.network.tiled_layers

    def workloads(self, image_shape) -> List[LayerWorkload]:
        """Cost-model workloads for a (C, H, W) input geometry."""
        return network_workloads(self.network, image_shape)

    def cost_model(self, image_shape, **kwargs) -> AcceleratorCostModel:
        """Hardware cost model over this network's real workloads."""
        return AcceleratorCostModel(
            self.config, self.workloads(image_shape), **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(stages={len(self.network.stages)}, "
            f"backend={self.backend!r}, Cs={self.config.crossbar_size})"
        )


class EngineBuilder:
    """Fluent construction: ``Engine.builder().model(m).backend(...).build()``.

    Collects the model (or an already-compiled network), an optional
    hardware override (a full :class:`HardwareConfig` or field
    overrides applied to the model's training hardware), the compile
    seed, and the engine defaults, then :meth:`build`\\ s the engine.
    """

    def __init__(self) -> None:
        self._model = None
        self._network: Optional[CompiledNetwork] = None
        self._config: Optional[HardwareConfig] = None
        self._overrides: dict = {}
        self._seed: SeedLike = 0
        self._backend: str = "stochastic"
        self._micro_batch: Optional[int] = DEFAULT_MICRO_BATCH

    def model(self, model) -> "EngineBuilder":
        self._model = model
        return self

    def network(self, network: CompiledNetwork) -> "EngineBuilder":
        self._network = network
        return self

    def hardware(self, config: Optional[HardwareConfig] = None, **overrides) -> "EngineBuilder":
        """Deploy hardware: a full config, field overrides, or both.

        Calls accumulate: a later overrides-only call refines the
        previously set base config rather than discarding it.
        """
        if config is not None:
            self._config = config
        self._overrides.update(overrides)
        return self

    def seed(self, seed: SeedLike) -> "EngineBuilder":
        self._seed = seed
        return self

    def backend(self, name: str) -> "EngineBuilder":
        get_backend(name)  # fail fast
        self._backend = name
        return self

    def micro_batch(self, size: Optional[int]) -> "EngineBuilder":
        self._micro_batch = size
        return self

    def build(self) -> Engine:
        if self._network is not None:
            if self._model is not None or self._config is not None or self._overrides:
                raise ValueError(
                    "network() is exclusive with model()/hardware(): a compiled "
                    "network already fixes both"
                )
            return Engine(
                self._network, backend=self._backend, micro_batch=self._micro_batch
            )
        if self._model is None:
            raise ValueError("EngineBuilder needs model(...) or network(...)")
        config = self._config or getattr(self._model, "hardware", None)
        if self._overrides:
            if config is None:
                raise ValueError(
                    "hardware overrides need a base config (model.hardware "
                    "or hardware(config))"
                )
            config = config.with_(**self._overrides)
        return Engine.from_model(
            self._model,
            config,
            seed=self._seed,
            backend=self._backend,
            micro_batch=self._micro_batch,
        )
