"""The unified inference engine: model -> Engine -> Session -> result.

One coherent surface over the model/compile/execute/metrics plumbing
that the experiment scripts used to re-wire by hand:

* :class:`Engine` wraps a :class:`~repro.mapping.compiler.CompiledNetwork`
  with a default backend and micro-batch size; build one with
  :meth:`Engine.from_model` or the fluent :class:`EngineBuilder`.
* :class:`Session` owns RNG state and accepts batched inference
  requests, automatically splitting them into micro-batches and merging
  the per-shard telemetry.
* every run returns a structured :class:`~repro.api.results.InferenceResult`
  (logits + per-layer telemetry + wall time).

Execution strategies are pluggable string-keyed backends
(:mod:`repro.api.backends`); the legacy free functions in
:mod:`repro.mapping.executor` are deprecated shims over this engine.

Sharding is planned, not improvised: :meth:`Session.plan_shards`
produces a :class:`ShardPlan` — shard boundaries plus one deterministic
child seed per shard, drawn from the session generator — and both the
in-process serial loop and the process-pool backend
(:mod:`repro.api.parallel`) execute the *same* plan through the same
:func:`seed_shard` + :func:`run_stages` pair. Because every shard pins
the network's sampler state from its own seed before executing, the
logits depend only on the plan, never on which process (or how many
workers) ran each shard — N-worker output is bit-identical to serial.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.backends import get_backend, resolve_strategy
from repro.api.results import InferenceResult, LayerTelemetry, network_workloads
from repro.autograd.functional import im2col
from repro.hardware.config import HardwareConfig
from repro.hardware.cost import AcceleratorCostModel, LayerWorkload
from repro.mapping.compiler import (
    CompiledNetwork,
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    SignStage,
    ThermometerStage,
    compile_model,
)
from repro.mapping.tiling import conv_output_geometry
from repro.utils.rng import SeedLike, new_rng, spawn_rng

_INT8_ONE = np.int8(1)
_INT8_MINUS_ONE = np.int8(-1)

#: Default micro-batch size — matches the legacy ``evaluate_accuracy``
#: batching so migrated experiments replay the same call sequence.
DEFAULT_MICRO_BATCH = 64

#: Sentinel distinguishing "inherit the engine's micro-batch" (the
#: default) from an explicit ``micro_batch=None`` (no sharding).
_INHERIT = object()


def _run_pool(stage: PoolStage, x: np.ndarray) -> np.ndarray:
    """2x2-style max pooling of +-1 maps (a digital OR in hardware)."""
    n, c, h, w = x.shape
    k = stage.kernel
    if h % k or w % k:
        raise ValueError(f"pooling {k} does not divide spatial dims {(h, w)}")
    view = x.reshape(n, c, h // k, k, w // k, k)
    return view.max(axis=(3, 5))


# ----------------------------------------------------------------------
# Shard planning — the one splitting/seeding code path shared by the
# serial session loop and the multiprocessing backend.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One micro-batch of a request: a half-open row range plus the
    child seed that pins the network's sampler state for it."""

    index: int
    start: int
    stop: int
    seed: Optional[int]


@dataclass(frozen=True)
class ShardPlan:
    """How one batched request is split into independently executable,
    independently seeded micro-batches.

    The plan is the unit of reproducibility for sharded execution:
    executing the same plan over the same inputs yields bit-identical
    logits no matter which process runs which shard, because each shard
    re-establishes the sampler state from its own ``seed`` first (see
    :func:`seed_shard`).
    """

    batch_size: int
    shards: Tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(
    n: int, micro_batch: Optional[int], rng: Optional[np.random.Generator] = None
) -> ShardPlan:
    """Split an ``n``-row request into ``micro_batch``-sized shards.

    ``rng`` supplies one child seed per shard (drawn in shard order, so
    the draw count — and therefore the generator's subsequent state —
    depends only on the shard count, never on who executes the plan).
    Without a generator the shards carry ``seed=None`` and execution
    falls back to each worker's own entropy.

    An empty request still gets one (empty) shard so it flows through
    the pipeline once, preserving the legacy ``(0, n_classes)`` output.
    """
    size = micro_batch or n or 1
    starts = range(0, max(n, 1), size)
    if rng is None:
        seeds: List[Optional[int]] = [None] * len(starts)
    else:
        seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=len(starts))]
    shards = tuple(
        Shard(index=i, start=lo, stop=min(lo + size, n), seed=seeds[i])
        for i, lo in enumerate(starts)
    )
    return ShardPlan(batch_size=n, shards=shards)


def seed_shard(
    network: CompiledNetwork, seed: Optional[int]
) -> np.random.Generator:
    """Pin every sampler in ``network`` for one shard; returns the shard
    generator (backends that draw directly, like
    ``"stochastic-fused-batched"``, consume it after the reseed).

    The derivation is pure: shard seed -> per-layer children -> per-tile
    children, so any process holding an equivalent copy of the network
    replays identical stochastic draws for the shard. ``seed=None``
    (unplanned execution) leaves the network's current streams untouched.
    """
    if seed is None:
        return new_rng(None)
    rng = new_rng(seed)
    layers = network.tiled_layers
    for layer, child in zip(layers, spawn_rng(rng, len(layers))):
        layer.reseed_sampling(child)
    return rng


def run_stages(
    network: CompiledNetwork,
    x: np.ndarray,
    strategy,
    rng: np.random.Generator,
    telemetry: List[LayerTelemetry],
) -> np.ndarray:
    """One micro-batch through the stage pipeline (same dataflow and
    dtype discipline as the legacy executor, plus telemetry).

    Module-level on purpose: the in-process session loop and the
    process-pool workers (:mod:`repro.api.parallel`) both execute
    shards through this exact function, so the two paths cannot drift.
    ``telemetry`` accumulates in place — later micro-batches fold into
    the first's records.
    """
    merge = bool(telemetry)
    deterministic = getattr(strategy, "deterministic", False)
    n = x.shape[0]
    trusted = False
    for index, stage in enumerate(network.stages):
        t0 = time.perf_counter()
        record = LayerTelemetry(index=index, kind="?")
        if isinstance(stage, SignStage):
            x = np.where(x >= 0, _INT8_ONE, _INT8_MINUS_ONE)
            trusted = True
            record.kind = "encode"
        elif isinstance(stage, ThermometerStage):
            planes = [
                np.where(x - t >= 0, _INT8_ONE, _INT8_MINUS_ONE)
                for t in stage.thresholds
            ]
            x = np.concatenate(planes, axis=1)
            trusted = True
            record.kind = "encode"
        elif isinstance(stage, ConvStage):
            validate = None if not trusted else False
            h, w = x.shape[2], x.shape[3]
            h_out, w_out = conv_output_geometry(
                h, w, stage.kernel, stage.stride, stage.padding
            )
            cols, _ = im2col(x, stage.kernel, stage.stride, stage.padding)
            fan_in = cols.shape[1]
            flat = cols.transpose(0, 2, 1).reshape(-1, fan_in)
            out = strategy.run_layer(stage.layer, flat, rng=rng, validate=validate)
            out = out.reshape(n, h_out * w_out, stage.out_channels).transpose(
                0, 2, 1
            )
            x = out.reshape(n, stage.out_channels, h_out, w_out)
            x = x.astype(np.int8, copy=False)
            trusted = True
            record.kind = "conv"
            record.in_features = stage.layer.in_features
            record.out_features = stage.layer.out_features
            record.positions = h_out * w_out
            if not deterministic:
                record.windows = (
                    n
                    * record.positions
                    * stage.layer.n_row_tiles
                    * stage.layer.n_col_tiles
                )
        elif isinstance(stage, LinearStage):
            validate = None if not trusted else False
            if x.ndim > 2:
                # explicit fan-in (reshape -1 cannot infer it when N=0)
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = strategy.run_layer(stage.layer, x, rng=rng, validate=validate)
            x = x.astype(np.int8, copy=False)
            trusted = True
            record.kind = "linear"
            record.in_features = stage.layer.in_features
            record.out_features = stage.layer.out_features
            if not deterministic:
                record.windows = (
                    n * stage.layer.n_row_tiles * stage.layer.n_col_tiles
                )
        elif isinstance(stage, PoolStage):
            x = _run_pool(stage, x)
            record.kind = "pool"
        elif isinstance(stage, HeadStage):
            if x.ndim > 2:
                # explicit fan-in (reshape -1 cannot infer it when N=0)
                x = x.reshape(x.shape[0], int(np.prod(x.shape[1:])))
            x = stage.logits(x)
            record.kind = "head"
            record.in_features = stage.weight.shape[1]
            record.out_features = stage.weight.shape[0]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage {type(stage).__name__}")
        record.wall_time_s = time.perf_counter() - t0
        if merge:
            telemetry[index].merge(record)
        else:
            telemetry.append(record)
    return x


class Session:
    """One inference session: pinned RNG state + batched requests.

    A session is the unit of reproducibility: giving it a ``seed``
    makes every request deterministic — at the start of each
    :meth:`run` the session derives per-run child seeds from its own
    generator and reseeds every sampler in the compiled network (via
    :meth:`TiledLinearLayer.reseed_sampling`), so two sessions created
    with the same seed replay identical stochastic inference even when
    other sessions on the same engine ran in between (the layers are
    engine-shared; re-establishing the state at run entry is what makes
    the ownership real). Backends that draw from the session directly
    (``"stochastic-fused-batched"``) use the same generator.
    ``seed=None`` continues the compile-time RNG streams untouched.

    Requests of any batch size are accepted; the session splits them
    into ``micro_batch``-sized shards automatically and merges the
    telemetry, so callers never hand-roll batching loops. Each shard is
    executed under its own child seed (:meth:`plan_shards`), which is
    what makes the process-pool ``"stochastic-parallel"`` backend
    bit-identical to serial execution and lets a
    :class:`~repro.api.serving.Serving` front-end interleave sessions
    safely.
    """

    def __init__(
        self,
        engine: "Engine",
        *,
        seed: SeedLike = None,
        backend=None,
        micro_batch=_INHERIT,
    ) -> None:
        self.engine = engine
        source = backend if backend is not None else engine.backend
        # Resolve the strategy once per session (not per run): stateless
        # backends come from the registry cache, stateful ones (process
        # pools) keep their workers warm across this session's requests.
        self._strategy, self._owns_strategy = resolve_strategy(source)
        self.backend = getattr(self._strategy, "name", str(source))
        self.micro_batch = (
            engine.micro_batch if micro_batch is _INHERIT else micro_batch
        )
        if self.micro_batch is not None and self.micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {self.micro_batch}")
        self._seeded = seed is not None
        self.rng = new_rng(seed)

    # ------------------------------------------------------------------
    def plan_shards(self, n: int) -> ShardPlan:
        """The session's :class:`ShardPlan` for an ``n``-row request.

        Boundaries come from ``micro_batch``; for a *seeded* session
        per-shard child seeds are drawn from the session generator (its
        state advances by exactly one draw per plan, so successive
        requests stay stochastic while two sessions with the same seed
        produce the same plans). An unseeded session plans seedless
        shards: serial execution then continues the network's
        compile-time sampler streams untouched — the legacy behaviour
        deterministic given the compile seed.
        """
        return plan_shards(
            n, self.micro_batch, rng=self.rng if self._seeded else None
        )

    def run(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        backend=None,
    ) -> InferenceResult:
        """Execute one batched request; returns a structured result."""
        strategy, owned = self._resolve(backend)
        try:
            x = np.asarray(images)
            if x.ndim < 2:
                raise ValueError(
                    f"images must be batched (N, ...), got shape {x.shape}"
                )
            n = x.shape[0]
            sharded_backend = hasattr(strategy, "run_plan")
            if sharded_backend and not self._seeded:
                # Every worker holds an identical copy of the network's
                # compile-time streams — seedless shards would replay
                # the same draws on each worker. Plan with fresh
                # entropy instead.
                plan = plan_shards(n, self.micro_batch, rng=new_rng(None))
            else:
                plan = self.plan_shards(n)
            start = time.perf_counter()
            if sharded_backend:
                # Shard-level backend (process pool): it executes the
                # whole plan against its own per-worker network copies,
                # so the engine's shared layers are never touched here.
                logits, telemetry = strategy.run_plan(self.engine.network, x, plan)
            else:
                logits, telemetry = self._run_plan_serial(x, plan, strategy)
            return InferenceResult(
                logits=logits,
                backend=getattr(strategy, "name", str(strategy)),
                batch_size=n,
                micro_batches=len(plan),
                wall_time_s=time.perf_counter() - start,
                layers=telemetry,
                labels=None if labels is None else np.asarray(labels),
            )
        finally:
            if owned and hasattr(strategy, "close"):
                strategy.close()

    def run_many(
        self,
        requests: Sequence[np.ndarray],
        labels: Optional[Sequence] = None,
        *,
        backend=None,
    ) -> List[InferenceResult]:
        """Run several independent requests through this session.

        ``labels`` is an optional sequence aligned with ``requests``
        (entries may be None for unlabelled requests); each label set is
        threaded into its request's :class:`InferenceResult` so batched
        serving can report per-request accuracy.
        """
        if labels is None:
            labels = [None] * len(requests)
        elif len(labels) != len(requests):
            raise ValueError(
                f"labels length {len(labels)} != requests length {len(requests)}"
            )
        return [
            self.run(request, labels=request_labels, backend=backend)
            for request, request_labels in zip(requests, labels)
        ]

    # ------------------------------------------------------------------
    def _resolve(self, backend):
        """Strategy for one run: the session's cached instance, or a
        per-run override. A name override that constructs a *stateful*
        backend is owned by this run and closed when it finishes."""
        if backend is None:
            return self._strategy, False
        return resolve_strategy(backend)

    def _run_plan_serial(self, x, plan: ShardPlan, strategy):
        """Execute a plan in-process, shard by shard.

        Each shard's (reseed, execute) pair runs under the engine's
        execution lock: the shared layers hold that shard's sampler
        state for exactly the critical section, so concurrent sessions
        (a serving front-end's worker threads) interleave at shard
        granularity without clobbering each other.
        """
        telemetry: List[LayerTelemetry] = []
        parts = []
        network = self.engine.network
        for shard in plan.shards:
            # float64 conversion happens per shard so micro-batching
            # bounds peak memory on large requests.
            chunk = np.asarray(x[shard.start : shard.stop], dtype=np.float64)
            with self.engine._exec_lock:
                # Seedless shards (unseeded session) continue the
                # network's current streams, exactly like the legacy
                # executor; seeded shards pin the sampler state first.
                rng = (
                    self.rng
                    if shard.seed is None
                    else seed_shard(network, shard.seed)
                )
                parts.append(run_stages(network, chunk, strategy, rng, telemetry))
        logits = np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]
        return logits, telemetry

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session's strategy if it owns one (e.g. shut
        down a process pool created from a backend name)."""
        if self._owns_strategy and hasattr(self._strategy, "close"):
            self._strategy.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(backend={self.backend!r}, micro_batch={self.micro_batch}, "
            f"engine={self.engine!r})"
        )


class Engine:
    """The inference façade over a compiled network.

    Wraps a :class:`~repro.mapping.compiler.CompiledNetwork` with a
    default execution backend and micro-batch size, hands out
    :class:`Session` objects, and exposes the cost-model plumbing
    (workloads, :class:`~repro.hardware.cost.AcceleratorCostModel`).

    Typical use::

        engine = Engine.from_model(trained_model)
        result = engine.run(test.images, labels=test.labels,
                            backend="stochastic-fused-batched")
        print(result.accuracy, result.wall_time_s)
    """

    def __init__(
        self,
        network: CompiledNetwork,
        *,
        backend: str = "stochastic",
        micro_batch: Optional[int] = DEFAULT_MICRO_BATCH,
    ) -> None:
        get_backend(backend)  # fail fast on unknown names
        self.network = network
        self.backend = backend
        self.micro_batch = micro_batch
        # Serializes in-process shard execution on the shared layers;
        # shard-level backends (process pools) never take it, so a
        # serving front-end gets real concurrency from worker processes
        # while in-process backends interleave safely at shard
        # granularity.
        self._exec_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model,
        config: Optional[HardwareConfig] = None,
        *,
        seed: SeedLike = 0,
        backend: str = "stochastic",
        micro_batch: Optional[int] = DEFAULT_MICRO_BATCH,
    ) -> "Engine":
        """Compile ``model`` (Mlp / VggSmall) and wrap it in an engine.

        ``config`` defaults to the hardware the model was trained
        against; ``seed`` feeds the compile-time sampler spawning.
        """
        network = compile_model(model, config, seed=seed)
        return cls(network, backend=backend, micro_batch=micro_batch)

    @staticmethod
    def builder() -> "EngineBuilder":
        """Start a fluent :class:`EngineBuilder`."""
        return EngineBuilder()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def session(
        self,
        *,
        seed: SeedLike = None,
        backend=None,
        micro_batch=_INHERIT,
    ) -> Session:
        """Open a :class:`Session` (pinned RNG + batched requests).

        ``backend`` accepts a registered name or a ready-made strategy
        instance (e.g. a configured
        :class:`~repro.api.parallel.StochasticParallelBackend`).
        ``micro_batch``: omit to inherit the engine default, pass an int
        to shard requests at that size, or ``None`` to disable sharding.
        """
        return Session(self, seed=seed, backend=backend, micro_batch=micro_batch)

    def run(
        self,
        images: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        backend=None,
        seed: SeedLike = None,
        micro_batch=_INHERIT,
    ) -> InferenceResult:
        """One-shot convenience: ephemeral session, single request."""
        with self.session(seed=seed, backend=backend, micro_batch=micro_batch) as s:
            return s.run(images, labels=labels)

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        seed: SeedLike = None,
    ) -> float:
        """Top-1 accuracy on a labelled set (micro-batched)."""
        result = self.run(
            images,
            labels=labels,
            backend=backend,
            seed=seed,
            micro_batch=_INHERIT if batch_size is None else batch_size,
        )
        return result.accuracy

    # ------------------------------------------------------------------
    # Introspection / cost
    # ------------------------------------------------------------------
    @property
    def config(self) -> HardwareConfig:
        return self.network.config

    @property
    def stages(self):
        return self.network.stages

    @property
    def tiled_layers(self):
        return self.network.tiled_layers

    def workloads(self, image_shape) -> List[LayerWorkload]:
        """Cost-model workloads for a (C, H, W) input geometry."""
        return network_workloads(self.network, image_shape)

    def cost_model(self, image_shape, **kwargs) -> AcceleratorCostModel:
        """Hardware cost model over this network's real workloads."""
        return AcceleratorCostModel(
            self.config, self.workloads(image_shape), **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(stages={len(self.network.stages)}, "
            f"backend={self.backend!r}, Cs={self.config.crossbar_size})"
        )


class EngineBuilder:
    """Fluent construction: ``Engine.builder().model(m).backend(...).build()``.

    Collects the model (or an already-compiled network), an optional
    hardware override (a full :class:`HardwareConfig` or field
    overrides applied to the model's training hardware), the compile
    seed, and the engine defaults, then :meth:`build`\\ s the engine.
    """

    def __init__(self) -> None:
        self._model = None
        self._network: Optional[CompiledNetwork] = None
        self._config: Optional[HardwareConfig] = None
        self._overrides: dict = {}
        self._seed: SeedLike = 0
        self._backend: str = "stochastic"
        self._micro_batch: Optional[int] = DEFAULT_MICRO_BATCH

    def model(self, model) -> "EngineBuilder":
        self._model = model
        return self

    def network(self, network: CompiledNetwork) -> "EngineBuilder":
        self._network = network
        return self

    def hardware(self, config: Optional[HardwareConfig] = None, **overrides) -> "EngineBuilder":
        """Deploy hardware: a full config, field overrides, or both.

        Calls accumulate: a later overrides-only call refines the
        previously set base config rather than discarding it.
        """
        if config is not None:
            self._config = config
        self._overrides.update(overrides)
        return self

    def seed(self, seed: SeedLike) -> "EngineBuilder":
        self._seed = seed
        return self

    def backend(self, name: str) -> "EngineBuilder":
        get_backend(name)  # fail fast
        self._backend = name
        return self

    def micro_batch(self, size: Optional[int]) -> "EngineBuilder":
        self._micro_batch = size
        return self

    def build(self) -> Engine:
        if self._network is not None:
            if self._model is not None or self._config is not None or self._overrides:
                raise ValueError(
                    "network() is exclusive with model()/hardware(): a compiled "
                    "network already fixes both"
                )
            return Engine(
                self._network, backend=self._backend, micro_batch=self._micro_batch
            )
        if self._model is None:
            raise ValueError("EngineBuilder needs model(...) or network(...)")
        config = self._config or getattr(self._model, "hardware", None)
        if self._overrides:
            if config is None:
                raise ValueError(
                    "hardware overrides need a base config (model.hardware "
                    "or hardware(config))"
                )
            config = config.with_(**self._overrides)
        return Engine.from_model(
            self._model,
            config,
            seed=self._seed,
            backend=self._backend,
            micro_batch=self._micro_batch,
        )
