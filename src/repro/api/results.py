"""Structured inference results and per-layer telemetry.

Every :meth:`repro.api.Session.run` returns an :class:`InferenceResult`
instead of a bare logits array: the outputs plus what it cost to produce
them — per-stage wall time, the number of stochastic windows sampled,
and the :class:`~repro.hardware.cost.LayerWorkload` records that feed
the hardware cost model. Telemetry accumulates across micro-batches, so
one result describes the whole request regardless of how the session
sharded it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import (
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    ThermometerStage,
)
from repro.mapping.tiling import conv_output_geometry


@dataclass
class LayerTelemetry:
    """What one compiled stage did during a request.

    ``windows`` counts sampled observation windows (crossbar column
    windows observed for L clocks) — zero for deterministic backends and
    non-crossbar stages. ``workload`` derives the stage's
    :class:`~repro.hardware.cost.LayerWorkload` from the geometry
    fields (None for encode/pool stages, which the cost model does not
    charge).
    """

    index: int
    kind: str  # "encode" | "conv" | "linear" | "pool" | "head"
    in_features: int = 0
    out_features: int = 0
    positions: int = 1
    windows: int = 0
    wall_time_s: float = 0.0

    @property
    def workload(self) -> Optional[LayerWorkload]:
        if self.kind not in ("conv", "linear", "head"):
            return None
        return LayerWorkload(
            in_features=self.in_features,
            out_features=self.out_features,
            positions=self.positions,
        )

    def merge(self, other: "LayerTelemetry") -> None:
        """Fold another micro-batch's record for the same stage in."""
        self.windows += other.windows
        self.wall_time_s += other.wall_time_s


@dataclass
class InferenceResult:
    """Outputs plus telemetry for one batched inference request."""

    logits: np.ndarray
    backend: str
    batch_size: int
    micro_batches: int
    wall_time_s: float
    layers: List[LayerTelemetry] = field(default_factory=list)
    labels: Optional[np.ndarray] = None

    @property
    def predictions(self) -> np.ndarray:
        """Top-1 class per request item."""
        return self.logits.argmax(axis=1)

    @property
    def accuracy(self) -> Optional[float]:
        """Top-1 accuracy against ``labels`` (None when unlabelled)."""
        if self.labels is None:
            return None
        labels = np.asarray(self.labels)
        return float((self.predictions == labels).mean())

    @property
    def workloads(self) -> List[LayerWorkload]:
        """Cost-model workloads of the crossbar/head stages, in order.

        Matches :func:`repro.mapping.executor.network_workloads`, so the
        result plugs straight into
        :class:`~repro.hardware.cost.AcceleratorCostModel`.
        """
        return [t.workload for t in self.layers if t.workload is not None]

    @property
    def total_windows(self) -> int:
        """Stochastic observation windows sampled across all stages."""
        return sum(t.windows for t in self.layers)

    def summary(self) -> Dict[str, float]:
        """Flat report for logs and tables."""
        report = {
            "backend": self.backend,
            "batch_size": self.batch_size,
            "micro_batches": self.micro_batches,
            "wall_time_s": self.wall_time_s,
            "total_windows": self.total_windows,
        }
        if self.labels is not None:
            report["accuracy"] = self.accuracy
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        acc = "" if self.labels is None else f", accuracy={self.accuracy:.3f}"
        return (
            f"InferenceResult(batch={self.batch_size}, backend={self.backend!r}, "
            f"wall_time={self.wall_time_s:.4f}s{acc})"
        )


def network_workloads(network, image_shape) -> List[LayerWorkload]:
    """Per-layer :class:`LayerWorkload` records for the cost model.

    ``image_shape`` is the (C, H, W) input geometry *before* the input
    encoding stage.
    """
    c, h, w = image_shape
    workloads: List[LayerWorkload] = []
    for stage in network.stages:
        if isinstance(stage, ThermometerStage):
            c = c * len(stage.thresholds)
        elif isinstance(stage, ConvStage):
            h, w = conv_output_geometry(h, w, stage.kernel, stage.stride, stage.padding)
            workloads.append(
                LayerWorkload(
                    in_features=stage.layer.in_features,
                    out_features=stage.layer.out_features,
                    positions=h * w,
                )
            )
            c = stage.out_channels
        elif isinstance(stage, PoolStage):
            h //= stage.kernel
            w //= stage.kernel
        elif isinstance(stage, LinearStage):
            workloads.append(
                LayerWorkload(
                    in_features=stage.layer.in_features,
                    out_features=stage.layer.out_features,
                )
            )
        elif isinstance(stage, HeadStage):
            workloads.append(
                LayerWorkload(
                    in_features=stage.weight.shape[1],
                    out_features=stage.weight.shape[0],
                )
            )
    return workloads
