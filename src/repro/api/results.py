"""Structured inference results and per-layer telemetry.

Every :meth:`repro.api.Session.run` returns an :class:`InferenceResult`
instead of a bare logits array: the outputs plus what it cost to produce
them — per-stage wall time, the number of stochastic windows sampled,
and the :class:`~repro.hardware.cost.LayerWorkload` records that feed
the hardware cost model. Telemetry accumulates across micro-batches, so
one result describes the whole request regardless of how the session
sharded it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.cost import LayerWorkload
from repro.mapping.compiler import (
    ConvStage,
    HeadStage,
    LinearStage,
    PoolStage,
    ThermometerStage,
)
from repro.mapping.tiling import conv_output_geometry


@dataclass
class LayerTelemetry:
    """What one compiled stage did during a request.

    ``windows`` counts sampled observation windows (crossbar column
    windows observed for L clocks) — zero for deterministic backends and
    non-crossbar stages. ``workload`` derives the stage's
    :class:`~repro.hardware.cost.LayerWorkload` from the geometry
    fields (None for encode/pool stages, which the cost model does not
    charge).
    """

    index: int
    kind: str  # "encode" | "conv" | "linear" | "pool" | "head"
    in_features: int = 0
    out_features: int = 0
    positions: int = 1
    windows: int = 0
    wall_time_s: float = 0.0

    @property
    def workload(self) -> Optional[LayerWorkload]:
        if self.kind not in ("conv", "linear", "head"):
            return None
        return LayerWorkload(
            in_features=self.in_features,
            out_features=self.out_features,
            positions=self.positions,
        )

    def merge(self, other: "LayerTelemetry") -> None:
        """Fold another micro-batch's record for the same stage in."""
        self.windows += other.windows
        self.wall_time_s += other.wall_time_s


def merge_telemetry(per_shard) -> List["LayerTelemetry"]:
    """Merge per-shard telemetry lists (workers report independently).

    ``per_shard`` is an iterable of per-stage record lists, one per
    shard in plan order; the first shard's records become the base and
    every later shard folds in via :meth:`LayerTelemetry.merge` —
    exactly what the serial loop does incrementally, so a result's
    telemetry is the same whether its shards ran in-process or on a
    worker pool.
    """
    merged: List[LayerTelemetry] = []
    for records in per_shard:
        if not merged:
            merged = list(records)
        else:
            for base, record in zip(merged, records):
                base.merge(record)
    return merged


@dataclass
class InferenceResult:
    """Outputs plus telemetry for one batched inference request.

    ``decisions`` is present only when the request ran under the
    ``"adaptive"`` runtime scheduler: one
    :class:`~repro.runtime.costmodel.StageDecision` per stage recording
    the chosen execution mode and the predicted vs measured cost.

    ``recovery`` is present when the request ran through a recovering
    execution path (the shard-parallel pool, directly or under the
    adaptive chooser): the
    :class:`~repro.runtime.recovery.RecoveryLog` as a dict —
    ``attempts``, per-retry actions, and whether a serial fallback
    rescued the request. A clean first-attempt run reports
    ``attempts=1`` with no retries; the logits are bit-identical either
    way.
    """

    logits: np.ndarray
    backend: str
    batch_size: int
    micro_batches: int
    wall_time_s: float
    layers: List[LayerTelemetry] = field(default_factory=list)
    labels: Optional[np.ndarray] = None
    decisions: Optional[List] = None  # List[StageDecision] (adaptive runs)
    recovery: Optional[dict] = None  # RecoveryLog.as_dict() (recovering paths)

    @property
    def predictions(self) -> np.ndarray:
        """Top-1 class per request item."""
        return self.logits.argmax(axis=1)

    @property
    def accuracy(self) -> Optional[float]:
        """Top-1 accuracy against ``labels`` (None when unlabelled).

        A labelled-but-empty request scores 0.0 — matching the legacy
        ``evaluate_accuracy`` convention — instead of the NaN (plus
        RuntimeWarning) that ``(empty == empty).mean()`` would produce.
        """
        if self.labels is None:
            return None
        labels = np.asarray(self.labels)
        if labels.size == 0:
            return 0.0
        return float((self.predictions == labels).mean())

    @property
    def workloads(self) -> List[LayerWorkload]:
        """Cost-model workloads of the crossbar/head stages, in order.

        Matches :func:`repro.mapping.executor.network_workloads`, so the
        result plugs straight into
        :class:`~repro.hardware.cost.AcceleratorCostModel`.
        """
        return [t.workload for t in self.layers if t.workload is not None]

    @property
    def total_windows(self) -> int:
        """Stochastic observation windows sampled across all stages."""
        return sum(t.windows for t in self.layers)

    def summary(self) -> Dict[str, float]:
        """Flat report for logs and tables."""
        report = {
            "backend": self.backend,
            "batch_size": self.batch_size,
            "micro_batches": self.micro_batches,
            "wall_time_s": self.wall_time_s,
            "total_windows": self.total_windows,
        }
        if self.labels is not None:
            report["accuracy"] = self.accuracy
        if self.decisions:
            report["scheduler_modes"] = ",".join(
                sorted({d.mode for d in self.decisions})
            )
        if self.recovery is not None and self.recovery.get("recovered"):
            report["recovered"] = True
            report["recovery_attempts"] = self.recovery.get("attempts", 0)
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        acc = "" if self.labels is None else f", accuracy={self.accuracy:.3f}"
        return (
            f"InferenceResult(batch={self.batch_size}, backend={self.backend!r}, "
            f"wall_time={self.wall_time_s:.4f}s{acc})"
        )


@dataclass
class ServingReport:
    """Aggregate outcome of one concurrent serving batch.

    Wraps the per-request :class:`InferenceResult` list (in submission
    order) with front-end throughput telemetry: the wall time of the
    whole batch measured at the front end — requests overlap, so this
    is *not* the sum of per-request wall times — and rates derived from
    it. ``waves`` is the number of coalesced execution waves the batch
    ran as (set by the :class:`~repro.runtime.daemon.ServingDaemon`;
    None for the thread-pool front-end, which has no coalescing).
    """

    results: List[InferenceResult]
    wall_time_s: float
    workers: int
    backend: str
    waves: Optional[int] = None

    @property
    def n_requests(self) -> int:
        return len(self.results)

    @property
    def total_images(self) -> int:
        return sum(r.batch_size for r in self.results)

    @property
    def requests_per_s(self) -> float:
        return self.n_requests / self.wall_time_s if self.wall_time_s else 0.0

    @property
    def images_per_s(self) -> float:
        return self.total_images / self.wall_time_s if self.wall_time_s else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean per-request wall time (the latency a client observed)."""
        if not self.results:
            return 0.0
        return sum(r.wall_time_s for r in self.results) / len(self.results)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank latency percentile over per-request wall times
        (``q`` in [0, 100]; 0.0 for an empty report) — the same
        convention as the network tier's load generator, so in-process
        and over-the-wire serving benchmarks are directly comparable."""
        if not self.results:
            return 0.0
        ordered = sorted(r.wall_time_s for r in self.results)
        rank = int(np.ceil(q / 100.0 * len(ordered))) - 1
        return float(ordered[max(0, min(len(ordered) - 1, rank))])

    @property
    def total_windows(self) -> int:
        return sum(r.total_windows for r in self.results)

    @property
    def accuracy(self) -> Optional[float]:
        """Image-weighted top-1 accuracy over the labelled requests
        (None when no request carried labels)."""
        correct = 0.0
        total = 0
        for result in self.results:
            if result.labels is None:
                continue
            n = len(np.asarray(result.labels))
            correct += result.accuracy * n
            total += n
        return correct / total if total else None

    def summary(self) -> Dict[str, float]:
        """Flat report for logs and tables."""
        report = {
            "backend": self.backend,
            "workers": self.workers,
            "n_requests": self.n_requests,
            "total_images": self.total_images,
            "wall_time_s": self.wall_time_s,
            "requests_per_s": self.requests_per_s,
            "images_per_s": self.images_per_s,
            "mean_latency_s": self.mean_latency_s,
            "latency_p50_s": self.latency_percentile(50),
            "latency_p95_s": self.latency_percentile(95),
            "latency_p99_s": self.latency_percentile(99),
        }
        if self.waves is not None:
            report["waves"] = self.waves
        accuracy = self.accuracy
        if accuracy is not None:
            report["accuracy"] = accuracy
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingReport(requests={self.n_requests}, "
            f"images={self.total_images}, backend={self.backend!r}, "
            f"workers={self.workers}, {self.images_per_s:.1f} img/s)"
        )


def network_workloads(network, image_shape) -> List[LayerWorkload]:
    """Per-layer :class:`LayerWorkload` records for the cost model.

    ``image_shape`` is the (C, H, W) input geometry *before* the input
    encoding stage.
    """
    c, h, w = image_shape
    workloads: List[LayerWorkload] = []
    for stage in network.stages:
        if isinstance(stage, ThermometerStage):
            c = c * len(stage.thresholds)
        elif isinstance(stage, ConvStage):
            h, w = conv_output_geometry(h, w, stage.kernel, stage.stride, stage.padding)
            workloads.append(
                LayerWorkload(
                    in_features=stage.layer.in_features,
                    out_features=stage.layer.out_features,
                    positions=h * w,
                )
            )
            c = stage.out_channels
        elif isinstance(stage, PoolStage):
            h //= stage.kernel
            w //= stage.kernel
        elif isinstance(stage, LinearStage):
            workloads.append(
                LayerWorkload(
                    in_features=stage.layer.in_features,
                    out_features=stage.layer.out_features,
                )
            )
        elif isinstance(stage, HeadStage):
            workloads.append(
                LayerWorkload(
                    in_features=stage.weight.shape[1],
                    out_features=stage.weight.shape[0],
                )
            )
    return workloads
