"""Multiprocessing shard execution: the ``"stochastic-parallel"`` backend.

The paper's stochastic crossbar inference is embarrassingly parallel —
every micro-batch shard is an independent sample-and-count — so the
session's :class:`~repro.api.engine.ShardPlan` maps directly onto a
process pool:

* the compiled network is shipped **once per worker** via the pool
  initializer (pickled layers, cached sampler tables rebuilt lazily in
  each worker);
* each shard task re-derives the network's full sampler state from the
  shard's child seed (:func:`repro.api.engine.seed_shard`) and executes
  through the same :func:`repro.api.engine.run_stages` the serial loop
  uses, so which worker runs which shard is irrelevant: N-worker output
  is **bit-identical** to serial execution for the same session seed;
* per-shard telemetry travels back with the logits and is merged in
  plan order (:func:`repro.api.results.merge_telemetry`).

The backend is *stateful* (it owns a pool configured for one network),
so :func:`~repro.api.backends.get_backend` constructs a fresh instance
per request-for-name instead of caching it; a :class:`~repro.api.Session`
resolves its strategy once and keeps the pool warm across requests.
Construct it directly to configure it::

    from repro.api.parallel import StochasticParallelBackend

    backend = StochasticParallelBackend(workers=4)
    with engine.session(seed=0, backend=backend) as session:
        result = session.run(images)
    backend.close()
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.api.backends import get_backend, register_backend
from repro.api.engine import ShardPlan, run_stages, seed_shard
from repro.api.results import LayerTelemetry, merge_telemetry

#: Per-worker-process state, populated by the pool initializer: each
#: worker holds its own copy of the compiled network plus the inner
#: layer-level strategy it executes shards with.
_WORKER_STATE: dict = {}


def _worker_init(network, inner_backend: str) -> None:
    """Pool initializer: receive the network once, resolve the inner
    strategy. Runs in the worker process. The inner resolution bypasses
    any dispatch override a forked worker inherited from the parent —
    a worker must execute layers in-process, never recurse into
    another pool."""
    _WORKER_STATE["network"] = network
    _WORKER_STATE["strategy"] = get_backend(inner_backend, allow_override=False)


def _worker_run_shard(
    chunk: np.ndarray, seed: Optional[int]
) -> Tuple[np.ndarray, List[LayerTelemetry]]:
    """Execute one shard in the worker: reseed from the shard's child
    seed, run the stage pipeline, return (logits, telemetry)."""
    network = _WORKER_STATE["network"]
    strategy = _WORKER_STATE["strategy"]
    rng = seed_shard(network, seed)
    telemetry: List[LayerTelemetry] = []
    logits = run_stages(
        network, np.asarray(chunk, dtype=np.float64), strategy, rng, telemetry
    )
    return logits, telemetry


@register_backend(
    "stochastic-parallel",
    summary="process-pool micro-batch shards (bit-identical to serial)",
)
class StochasticParallelBackend:
    """Shard-level execution strategy over a worker process pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to the host's CPU count.
    inner:
        Name of the layer-level backend each worker executes shards
        with (default ``"stochastic"``, the hardware-default dispatch).
    """

    deterministic = False
    #: Carries configuration and a live pool — never registry-cached.
    stateless = False

    def __init__(self, workers: Optional[int] = None, inner: str = "stochastic") -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers or os.cpu_count() or 1)
        self.inner = inner
        get_backend(inner, allow_override=False)  # fail fast on unknown names
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_network = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def run_plan(self, network, x: np.ndarray, plan: ShardPlan):
        """Execute a session's shard plan; returns (logits, telemetry).

        Shards are submitted in plan order and collected in plan order,
        so the concatenated logits match serial execution row for row.
        An empty request short-circuits to an in-process pass (spinning
        up workers to produce ``(0, n_classes)`` would be silly).
        """
        if plan.batch_size == 0:
            # N=0 draws nothing, so skip the reseed too: the shared
            # layers are left untouched (no lock needed) and the
            # (0, n_classes) output is identical to serial.
            telemetry: List[LayerTelemetry] = []
            logits = run_stages(
                network,
                np.asarray(x[0:0], dtype=np.float64),
                get_backend(self.inner, allow_override=False),
                np.random.default_rng(),
                telemetry,
            )
            return logits, telemetry
        pool = self._ensure_pool(network)
        futures = [
            pool.submit(_worker_run_shard, x[shard.start : shard.stop], shard.seed)
            for shard in plan.shards
        ]
        outputs = [future.result() for future in futures]
        parts = [logits for logits, _ in outputs]
        telemetry = merge_telemetry(records for _, records in outputs)
        logits = np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]
        return logits, telemetry

    def _ensure_pool(self, network) -> ProcessPoolExecutor:
        """The live pool for ``network``, (re)created under a lock so a
        serving front-end's threads can share one backend instance."""
        with self._lock:
            if self._pool is not None and self._pool_network is not network:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(network, self.inner),
                )
                self._pool_network = network
            return self._pool

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_network = None

    def __enter__(self) -> "StochasticParallelBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<backend stochastic-parallel workers={self.workers} "
            f"inner={self.inner!r}>"
        )
