"""Multiprocessing shard execution: the ``"stochastic-parallel"`` backend.

Since the runtime refactor this module is a thin registration shim:
the pool machinery (worker initializer, per-shard reseed-and-execute
tasks, shared-memory activation transport) lives in
:class:`repro.runtime.scheduler.ShardParallelScheduler`, and
:class:`StochasticParallelBackend` simply *is* that scheduler exposed
under the backend registry's shard-level protocol (``run_plan``), so
every existing entry point — ``Session(backend="stochastic-parallel")``,
``repro.cli run --workers N``, serving front-ends sharing one pool —
keeps working unchanged.

The guarantees are the scheduler's:

* the compiled network is shipped **once per worker** via the pool
  initializer; shard activations ride the shared-memory ring
  (:mod:`repro.runtime.transport`) instead of the pickle pipe;
* each shard task re-derives the network's full sampler state from the
  shard's child seed (:func:`repro.runtime.plan.seed_shard`) and
  executes through the same :func:`repro.runtime.plan.run_stages` the
  serial loop uses, so N-worker output is **bit-identical** to serial
  execution for the same session seed;
* per-shard telemetry travels back with the logits and is merged in
  plan order (:func:`repro.api.results.merge_telemetry`).

The backend is *stateful* (it owns a pool configured for one network),
so :func:`~repro.api.backends.get_backend` constructs a fresh instance
per request-for-name instead of caching it; a :class:`~repro.api.Session`
resolves its strategy once and keeps the pool warm across requests.
Construct it directly to configure it::

    from repro.api.parallel import StochasticParallelBackend

    backend = StochasticParallelBackend(workers=4)
    with engine.session(seed=0, backend=backend) as session:
        result = session.run(images)
    backend.close()
"""

from __future__ import annotations

from repro.api.backends import register_backend
from repro.runtime.scheduler import ShardParallelScheduler


@register_backend(
    "stochastic-parallel",
    summary="process-pool micro-batch shards (bit-identical to serial)",
)
class StochasticParallelBackend(ShardParallelScheduler):
    """Shard-level execution strategy over a worker process pool.

    A facade over :class:`~repro.runtime.scheduler.ShardParallelScheduler`
    (which see, for ``workers`` / ``inner`` / ``transport`` /
    ``ring_slots``); registered as the ``"stochastic-parallel"``
    backend so sessions select it by name.
    """

    deterministic = False
    #: Carries configuration and a live pool — never registry-cached.
    stateless = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<backend stochastic-parallel workers={self.workers} "
            f"inner={self.inner!r} transport={self.transport!r}>"
        )
