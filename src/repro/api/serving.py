"""Concurrent thread-pool serving front-end (the legacy entry point).

:class:`Serving` turns an :class:`~repro.api.Engine` into a bounded
request processor: a batch of independent inference requests is fanned
out to ``workers`` front-end threads, each request runs in its own
child-seeded :class:`~repro.api.Session` (whose execution flows
through the runtime schedulers of :mod:`repro.runtime.scheduler`), and
the per-request :class:`~repro.api.results.InferenceResult` list comes
back wrapped in a :class:`~repro.api.results.ServingReport` with
aggregate throughput telemetry.

This is the *batch-at-once* front-end, kept as the compatibility
surface (and the thread-pool baseline the serving benchmarks compare
against). The runtime's successor is the long-lived
:class:`~repro.runtime.daemon.ServingDaemon`: a bounded request queue
with deadline-based batch coalescing — use it when requests arrive
over time rather than as one batch, or to amortize execution across
requests (``ServingDaemon(engine, seed_per_request=True)`` reproduces
this front-end's seeding contract bit for bit). Remote clients reach
that daemon over TCP through :mod:`repro.net` — the framed wire
protocol, the asyncio :class:`~repro.net.server.NetworkServer`, and
the ``repro serve`` / ``serve-bench --connect`` CLI entry points.

Correctness under concurrency comes from the engine's per-shard
execution discipline: every shard pins the shared layers' sampler
state from its own child seed inside the engine's execution lock, so
interleaved requests cannot clobber each other and a seeded front-end
replays identically regardless of thread scheduling. Real wall-clock
parallelism comes from pairing the front-end with the
``"stochastic-parallel"`` backend — all request sessions then share
one worker process pool and the front-end threads only split, submit,
and merge::

    from repro.api import Engine, Serving
    from repro.api.parallel import StochasticParallelBackend

    engine = Engine.from_model(model)
    with Serving(engine, workers=4,
                 backend=StochasticParallelBackend(workers=4),
                 seed=0) as front:
        report = front.serve(requests, labels=labels)
    print(report.images_per_s, report.accuracy)
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.api.backends import resolve_strategy
from repro.api.engine import _INHERIT, Session
from repro.api.results import InferenceResult, ServingReport
from repro.utils.rng import SeedLike, new_rng


class Serving:
    """Bounded-concurrency inference front-end for one engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.api.Engine` to serve.
    workers:
        Maximum number of requests in flight at once.
    backend:
        Execution strategy shared by every request session — a
        registered name or a ready-made instance (pass a configured
        :class:`~repro.api.parallel.StochasticParallelBackend` so all
        requests share one process pool). Defaults to the engine's
        backend.
    seed:
        Seeds the front-end generator; each request session gets a
        deterministic child seed drawn in submission order, so a seeded
        front-end is reproducible end to end. ``None`` serves from
        fresh entropy.
    micro_batch:
        Per-session micro-batch override (inherits the engine default).
    scheduler:
        Runtime scheduler spec passed through to every request session
        (:mod:`repro.runtime.scheduler` name or instance). A *name* is
        resolved per session — each request then owns its scheduler —
        so prefer passing a shared instance (or use the coalescing
        :class:`~repro.runtime.daemon.ServingDaemon`, which owns one
        scheduler for all waves) when the scheduler carries a pool.
    """

    def __init__(
        self,
        engine,
        *,
        workers: int = 4,
        backend=None,
        seed: SeedLike = None,
        micro_batch=_INHERIT,
        scheduler=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.workers = int(workers)
        source = backend if backend is not None else engine.backend
        # One strategy instance for the whole front end: every request
        # session shares it (and with it, any worker pool it owns).
        self._strategy, self._owns_strategy = resolve_strategy(source)
        self.backend = getattr(self._strategy, "name", str(source))
        self.micro_batch = micro_batch
        self.scheduler = scheduler
        self.rng = new_rng(seed)
        self._closed = False

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[np.ndarray],
        labels: Optional[Sequence] = None,
    ) -> ServingReport:
        """Run a batch of independent requests concurrently.

        ``labels`` is an optional sequence aligned with ``requests``
        (entries may be None); results come back in submission order.
        """
        if self._closed:
            raise RuntimeError("cannot serve through a closed Serving front-end")
        if labels is None:
            labels = [None] * len(requests)
        elif len(labels) != len(requests):
            raise ValueError(
                f"labels length {len(labels)} != requests length {len(requests)}"
            )
        # Child seeds are drawn up front in submission order so thread
        # scheduling cannot reorder the derivation. Every request
        # session gets a real seed — an unseeded front end draws them
        # from fresh entropy — because seedless sessions would share
        # the engine's compile-time streams across threads.
        seeds: List[int] = [
            int(s) for s in self.rng.integers(0, 2**63 - 1, size=len(requests))
        ]

        def _serve_one(index: int) -> InferenceResult:
            with Session(
                self.engine,
                seed=seeds[index],
                backend=self._strategy,
                micro_batch=self.micro_batch,
                scheduler=self.scheduler,
            ) as session:
                return session.run(requests[index], labels=labels[index])

        start = time.perf_counter()
        if not requests:
            results: List[InferenceResult] = []
        else:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(requests))
            ) as pool:
                results = list(pool.map(_serve_one, range(len(requests))))
        return ServingReport(
            results=results,
            wall_time_s=time.perf_counter() - start,
            workers=self.workers,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the strategy if the front end owns it (e.g. shut
        down a process pool resolved from a backend name). Idempotent;
        a closed front-end rejects further batches with
        :class:`RuntimeError`."""
        if self._closed:
            return
        self._closed = True
        if self._owns_strategy and hasattr(self._strategy, "close"):
            self._strategy.close()

    def __enter__(self) -> "Serving":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Serving(workers={self.workers}, backend={self.backend!r}, "
            f"engine={self.engine!r})"
        )
