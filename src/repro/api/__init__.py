"""``repro.api`` — the unified inference surface.

Façade over model compilation, execution, and metrics:

* :class:`Engine` / :class:`EngineBuilder` — build an inference engine
  from a trained model (or compiled network) + hardware config.
* :class:`Session` — owns RNG state, accepts batched requests with
  automatic micro-batching.
* :class:`InferenceResult` / :class:`LayerTelemetry` — structured
  outputs: logits, per-layer window counts, workloads, wall time.
* backend registry — string-keyed pluggable execution strategies
  (``"ideal"``, ``"stochastic"``, ``"stochastic-dense"``,
  ``"stochastic-packed"``, ``"stochastic-fused-batched"``); extend via
  :func:`register_backend`.
* experiment registry — every paper artifact, runnable by name
  (:func:`run_experiment`, CLI ``repro run``).

Quickstart::

    from repro.api import Engine

    engine = Engine.from_model(trained_model)
    result = engine.run(test.images, labels=test.labels,
                        backend="stochastic-fused-batched")
    print(result.accuracy, result.wall_time_s, result.total_windows)
"""

from repro.api.backends import (
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.engine import DEFAULT_MICRO_BATCH, Engine, EngineBuilder, Session
from repro.api.experiments import (
    ExperimentSpec,
    available_experiments,
    experiment_registry,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.api.results import InferenceResult, LayerTelemetry, network_workloads

__all__ = [
    "Engine",
    "EngineBuilder",
    "Session",
    "InferenceResult",
    "LayerTelemetry",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "available_experiments",
    "experiment_registry",
    "run_experiment",
    "network_workloads",
    "DEFAULT_MICRO_BATCH",
]
