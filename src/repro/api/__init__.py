"""``repro.api`` — the unified inference surface.

Façade over model compilation, execution, and metrics:

* :class:`Engine` / :class:`EngineBuilder` — build an inference engine
  from a trained model (or compiled network) + hardware config.
* :class:`Session` — owns RNG state, accepts batched requests with
  automatic micro-batching.
* :class:`InferenceResult` / :class:`LayerTelemetry` — structured
  outputs: logits, per-layer window counts, workloads, wall time.
* backend registry — string-keyed pluggable execution strategies
  (``"ideal"``, ``"stochastic"``, ``"stochastic-dense"``,
  ``"stochastic-packed"``, ``"stochastic-fused-batched"``,
  ``"stochastic-parallel"``); extend via :func:`register_backend`.
* :class:`~repro.api.parallel.StochasticParallelBackend` — process-pool
  execution of micro-batch shards, bit-identical to serial for the
  same session seed.
* :class:`Serving` — concurrent thread-pool front-end over
  ``Session.run_many`` with bounded workers and a
  :class:`ServingReport` of throughput telemetry.
* :class:`ServingDaemon` (from :mod:`repro.runtime`) — long-lived
  queued serving with deadline-based batch coalescing; coalesced waves
  are bit-identical to uncoalesced serial execution for seeded
  daemons. A second consumer overlaps wave assembly with wave
  execution, and the live ``queue_depth`` / ``in_flight`` gauges plus
  non-blocking ``try_submit`` feed the network tier's load shedding.
* network serving tier (:mod:`repro.net`) — the framed wire protocol,
  the asyncio :class:`~repro.net.server.NetworkServer` ingestion
  front-end with per-client quotas and rate limiting, sync/async
  clients, and the multi-client load generator behind
  ``repro serve-bench --connect``.
* runtime subsystem (:mod:`repro.runtime`) — explicit
  :class:`ExecutionPlan` task DAGs (:func:`compile_plan`), pluggable
  schedulers (``"serial"`` / ``"shard-parallel"`` / ``"tile-parallel"``
  / ``"adaptive"``, the cost-model chooser), the calibratable
  :class:`CostModel` (:func:`calibrate`), and shared-memory activation
  transport.
* fault tolerance (:mod:`repro.runtime.faults` /
  :mod:`repro.runtime.recovery`) — deterministic fault injection
  (:class:`FaultPlan`), retry/backoff with pool rebuild
  (:class:`RetryPolicy`), per-request deadlines, and bit-identical
  serial fallback; outcomes surface in
  :attr:`InferenceResult.recovery` and :class:`DaemonStats`.
* experiment registry — every paper artifact, runnable by name
  (:func:`run_experiment`, CLI ``repro run``).

Quickstart::

    from repro.api import Engine

    engine = Engine.from_model(trained_model)
    result = engine.run(test.images, labels=test.labels,
                        backend="stochastic-fused-batched")
    print(result.accuracy, result.wall_time_s, result.total_windows)
"""

from repro.api.backends import (
    ExecutionBackend,
    available_backends,
    backend_aliases,
    get_backend,
    register_backend,
)
from repro.api.engine import (
    DEFAULT_MICRO_BATCH,
    Engine,
    EngineBuilder,
    ExecutionPlan,
    Session,
    Shard,
    ShardPlan,
    compile_plan,
    plan_shards,
)
from repro.api.experiments import (
    ExperimentSpec,
    available_experiments,
    experiment_registry,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.api.parallel import StochasticParallelBackend
from repro.api.results import (
    InferenceResult,
    LayerTelemetry,
    ServingReport,
    network_workloads,
)
from repro.api.serving import Serving
from repro.runtime import (
    AdaptiveScheduler,
    CostCoefficients,
    CostModel,
    DaemonStats,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    PoisonedPayload,
    QueueFull,
    RecoveryLog,
    RequestError,
    RetryPolicy,
    ServingDaemon,
    StageDecision,
    available_schedulers,
    calibrate,
    fault_injection,
    register_scheduler,
)

__all__ = [
    "Engine",
    "EngineBuilder",
    "Session",
    "Shard",
    "ShardPlan",
    "ExecutionPlan",
    "plan_shards",
    "compile_plan",
    "Serving",
    "ServingDaemon",
    "DaemonStats",
    "ServingReport",
    "available_schedulers",
    "register_scheduler",
    "AdaptiveScheduler",
    "CostModel",
    "CostCoefficients",
    "StageDecision",
    "calibrate",
    "StochasticParallelBackend",
    "InferenceResult",
    "LayerTelemetry",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_aliases",
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "available_experiments",
    "experiment_registry",
    "run_experiment",
    "network_workloads",
    "DEFAULT_MICRO_BATCH",
    "FaultPlan",
    "FaultSpec",
    "fault_injection",
    "RetryPolicy",
    "RecoveryLog",
    "RequestError",
    "DeadlineExceeded",
    "PoisonedPayload",
    "QueueFull",
]
